"""Prompt objects: the (text, graph) pairs users submit (paper Fig. 1)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..graphs.graph import Graph


@dataclass
class Prompt:
    """One user prompt: natural-language text plus an optional graph.

    ``attachments`` carries extra uploads (a SMILES string under
    ``"molecule"``, a molecule database under ``"database"``...).
    """

    text: str
    graph: Graph | None = None
    attachments: dict[str, Any] = field(default_factory=dict)

    def has_graph(self) -> bool:
        return self.graph is not None

    def __repr__(self) -> str:
        graph_part = f" + {self.graph!r}" if self.graph is not None else ""
        return f"<Prompt {self.text!r}{graph_part}>"
