"""The graph-aware language-model module (paper Sec. II, Fig. 1).

SUBSTITUTION NOTE (see DESIGN.md): the paper finetunes downloaded LLMs
(ChatGLM, MOSS, Vicuna).  Offline, we substitute a trainable conditional
chain generator with the same interface: it consumes the prompt text,
the retrieved candidate APIs and the sequentialized graph, and emits an
API chain token by token.  Everything the paper contributes — retrieval
conditioning, graph sequences, the node matching-based loss and the
search-based (rollout) decoding — runs unchanged on top of it.
"""

from .prompts import Prompt
from .intent import GraphTypePredictor, IntentClassifier, predict_graph_type
from .chain_model import BatchScorer, ChainLanguageModel, TrainingExample
from .decoding import (
    beam_decode,
    greedy_decode,
    greedy_decode_batch,
    sample_decode,
)
from .simulated import PRESETS, build_model
from .persistence import load_model, save_model

__all__ = [
    "load_model",
    "save_model",
    "Prompt",
    "GraphTypePredictor",
    "IntentClassifier",
    "predict_graph_type",
    "BatchScorer",
    "ChainLanguageModel",
    "TrainingExample",
    "beam_decode",
    "greedy_decode",
    "greedy_decode_batch",
    "sample_decode",
    "PRESETS",
    "build_model",
]
