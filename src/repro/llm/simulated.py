"""Model presets mirroring the paper's three integrated LLMs.

The paper downloads ChatGLM, MOSS and Vicuna from HuggingFace; offline
we expose three presets of the simulated backbone that differ in
learning dynamics and decoding temperature, so the configuration screen
(Fig. 3) keeps its model selector.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..errors import ModelError
from .chain_model import ChainLanguageModel


@dataclass(frozen=True)
class ModelPreset:
    """Hyper-parameters of one named backbone."""

    name: str
    learning_rate: float
    l2: float
    temperature: float


PRESETS: dict[str, ModelPreset] = {
    "chatglm-sim": ModelPreset("chatglm-sim", learning_rate=0.5,
                               l2=1e-3, temperature=1.0),
    "moss-sim": ModelPreset("moss-sim", learning_rate=0.3,
                            l2=3e-3, temperature=0.8),
    "vicuna-sim": ModelPreset("vicuna-sim", learning_rate=0.7,
                              l2=1e-3, temperature=1.2),
}


def build_model(preset_name: str, api_names: Sequence[str],
                seed: int = 0) -> ChainLanguageModel:
    """Instantiate the chain model for a named preset."""
    try:
        preset = PRESETS[preset_name]
    except KeyError:
        raise ModelError(
            f"unknown model preset {preset_name!r}; "
            f"choose from {sorted(PRESETS)}") from None
    return ChainLanguageModel(api_names=api_names,
                              learning_rate=preset.learning_rate,
                              l2=preset.l2, seed=seed)
