"""Graph-type and intent classification.

Scenario 1 (Fig. 4) begins with "ChatGraph first predicts the type of
G": social networks route to community/connectivity APIs, molecule
graphs to chemistry APIs, knowledge graphs to inference APIs.  The
:class:`GraphTypePredictor` is a transparent structural classifier —
attribute signals when present, degree/clustering heuristics otherwise.

:class:`IntentClassifier` maps prompt *text* to a coarse task intent
(understand / compare / clean / compute) used for suggested questions
and chain post-checks.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..algorithms.clustering import average_clustering
from ..apis.registry import Category
from ..graphs.graph import DiGraph, Graph
from ..chem.elements import ELEMENTS
from ..embedding.tokenizer import tokenize

GRAPH_TYPES = ("social", "molecule", "knowledge", "generic")
INTENTS = ("understand", "compare", "clean", "compute")

#: graph type -> API categories retrieval may return (scenario-1 routing).
CATEGORY_ROUTING: dict[str, tuple[Category, ...]] = {
    "social": (Category.SOCIAL, Category.GENERIC, Category.REPORT,
               Category.EDIT),
    "molecule": (Category.MOLECULE, Category.GENERIC, Category.REPORT),
    "knowledge": (Category.KNOWLEDGE, Category.GENERIC, Category.REPORT,
                  Category.EDIT),
    "generic": tuple(Category),
}


@dataclass(frozen=True)
class TypePrediction:
    """Predicted graph type with score breakdown (for the report)."""

    graph_type: str
    scores: dict[str, float]
    evidence: tuple[str, ...]


class GraphTypePredictor:
    """Structural + attribute graph-type classifier."""

    def predict(self, graph: Graph) -> TypePrediction:
        scores = {t: 0.0 for t in GRAPH_TYPES}
        evidence: list[str] = []

        kinds = {graph.get_node_attr(node, "kind") for node in graph.nodes()}
        # attribute signals are near-decisive when present
        if "atom" in kinds:
            scores["molecule"] += 3.0
            evidence.append("nodes carry kind='atom'")
        if "person" in kinds:
            scores["social"] += 3.0
            evidence.append("nodes carry kind='person'")
        if "entity" in kinds:
            scores["knowledge"] += 3.0
            evidence.append("nodes carry kind='entity'")
        elements = {graph.get_node_attr(node, "element")
                    for node in graph.nodes()} - {None}
        if elements and all(e in ELEMENTS for e in elements):
            scores["molecule"] += 2.0
            evidence.append(f"element labels {sorted(elements)[:4]}")
        has_relations = any("relation" in graph.edge_attrs(u, v)
                            for u, v in graph.edges())
        if has_relations:
            scores["knowledge"] += 2.0
            evidence.append("edges carry relation labels")

        # structural signals
        if isinstance(graph, DiGraph):
            scores["knowledge"] += 1.0
            evidence.append("directed")
        else:
            n = graph.number_of_nodes()
            if n and graph.number_of_edges() > 0:
                degrees = [graph.degree(node) for node in graph.nodes()]
                max_degree = max(degrees)
                if 0 < max_degree <= 4:
                    scores["molecule"] += 1.0
                    evidence.append("max degree <= 4 (valence-like)")
                clustering = average_clustering(graph)
                if clustering > 0.1 and n >= 10:
                    scores["social"] += 1.0
                    evidence.append(f"clustered ({clustering:.2f})")
        best = max(scores.items(), key=lambda kv: kv[1])
        graph_type = best[0] if best[1] > 0 else "generic"
        return TypePrediction(graph_type=graph_type, scores=scores,
                              evidence=tuple(evidence))


def predict_graph_type(graph: Graph) -> str:
    """Convenience wrapper returning just the type string."""
    return GraphTypePredictor().predict(graph).graph_type


#: keyword -> intent vote tables for the text-intent classifier.
_INTENT_KEYWORDS: dict[str, tuple[str, ...]] = {
    "understand": ("report", "describe", "summarize", "summary", "overview",
                   "understand", "profile", "analyze", "tell", "about",
                   "brief"),
    "compare": ("similar", "similarity", "compare", "comparison", "closest",
                "alike", "resemble", "match", "nearest"),
    "clean": ("clean", "cleaning", "noise", "noisy", "fix", "repair",
              "incorrect", "wrong", "missing", "mislabel", "errors",
              "denoise", "correct"),
    "compute": ("count", "compute", "calculate", "find", "rank", "top",
                "shortest", "path", "diameter", "density", "degree",
                "communities", "influencers", "triangles", "toxicity",
                "solubility", "formula", "weight"),
}


#: Inverted vote table (keyword -> intents it votes for), shared by the
#: scalar and batched classifier paths: scoring walks the prompt's
#: distinct tokens once instead of probing every keyword list per call.
#: Counting is identical to the keyword-major loop because tokens are
#: deduplicated and no keyword repeats within one intent's tuple.
_KEYWORD_INTENTS: dict[str, tuple[str, ...]] = {}
for _intent, _keywords in _INTENT_KEYWORDS.items():
    for _kw in _keywords:
        _KEYWORD_INTENTS[_kw] = _KEYWORD_INTENTS.get(_kw, ()) + (_intent,)


class IntentClassifier:
    """Keyword-vote intent classifier over prompt text."""

    def predict(self, text: str) -> str:
        tokens = set(tokenize(text, drop_stop_words=False))
        votes = dict.fromkeys(_INTENT_KEYWORDS, 0)
        for token in tokens:
            for intent in _KEYWORD_INTENTS.get(token, ()):
                votes[intent] += 1
        # "clean"/"compare" keywords outrank the broad "compute" bucket
        for intent in ("clean", "compare", "understand"):
            if votes[intent] > 0 and votes[intent] >= max(
                    v for i, v in votes.items() if i != intent):
                return intent
        best = max(votes.items(), key=lambda kv: kv[1])
        return best[0] if best[1] > 0 else "understand"

    def predict_batch(self, texts: list[str]) -> list[str]:
        """Classify many prompts through one shared scoring pass.

        Result-identical to ``[self.predict(t) for t in texts]``; each
        *distinct* text is tokenized and scored once and the verdict is
        shared across its duplicates (served micro-batches routinely
        repeat prompt texts, and the scoring table above is shared
        across the whole call).
        """
        verdicts: dict[str, str] = {}
        out: list[str] = []
        for text in texts:
            verdict = verdicts.get(text)
            if verdict is None:
                verdict = verdicts[text] = self.predict(text)
            out.append(verdict)
        return out
