"""Save/load the chain model (so finetuned models can be reused).

The format is a single ``.npz`` file holding the weight matrix plus a
JSON-encoded header with the vocabulary and hyper-parameters; loading
reconstructs an identical :class:`ChainLanguageModel` (bit-for-bit same
distributions).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..errors import ModelError
from .chain_model import EOS, ChainLanguageModel

_FORMAT_VERSION = 1


def save_model(model: ChainLanguageModel, path: str | Path) -> None:
    """Serialize ``model`` to ``path`` (``.npz``)."""
    names = [model.token_name(i) for i in range(model.vocab_size)]
    if names[-1] != EOS:
        raise ModelError("corrupt vocabulary: EOS not last")
    header = {
        "version": _FORMAT_VERSION,
        "api_names": names[:-1],
        "learning_rate": model.learning_rate,
        "l2": model.l2,
        "seed": model.seed,
        "restrict_to_retrieved": model.restrict_to_retrieved,
    }
    np.savez(
        Path(path),
        header=np.frombuffer(json.dumps(header).encode("utf-8"),
                             dtype=np.uint8),
        weights=model._weights,
    )


def load_model(path: str | Path) -> ChainLanguageModel:
    """Reconstruct a model saved by :func:`save_model`."""
    path = Path(path)
    if not path.exists():
        raise ModelError(f"no model file at {path}")
    with np.load(path) as archive:
        try:
            header = json.loads(bytes(archive["header"]).decode("utf-8"))
            weights = archive["weights"]
        except KeyError as exc:
            raise ModelError(f"malformed model file {path}: {exc}") from exc
    if header.get("version") != _FORMAT_VERSION:
        raise ModelError(
            f"unsupported model format version {header.get('version')}")
    model = ChainLanguageModel(
        api_names=header["api_names"],
        learning_rate=header["learning_rate"],
        l2=header["l2"],
        seed=header["seed"],
        restrict_to_retrieved=header["restrict_to_retrieved"],
    )
    if weights.shape != model._weights.shape:
        raise ModelError(
            f"weight shape {weights.shape} does not match vocabulary")
    model._weights = weights.astype(np.float64)
    return model
