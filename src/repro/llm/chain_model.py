"""The trainable conditional chain generator (the "LLM" substrate).

This is the offline stand-in for the paper's finetuned LLM backbone
(see the substitution note in DESIGN.md).  It is an autoregressive
log-linear model over the API vocabulary:

    P(next api | prompt, graph, retrieved APIs, prefix)
        = softmax(W @ phi(state))

where ``phi`` hashes prompt-text tokens, sequentialized-graph tokens,
retrieved-API indicators, the previous API and the position into one
sparse feature vector.  Training is SGD; the plain cross-entropy updates
here are the *baseline* objective — the paper's node matching-based loss
and search-based prediction live in :mod:`repro.finetune` and drive this
same model through :meth:`train_weighted_step`.
"""

from __future__ import annotations

import hashlib
import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from ..errors import ModelError
from ..embedding.tokenizer import tokenize

#: End-of-chain token (always the last vocabulary entry).
EOS = "<eos>"

_TEXT_BUCKETS = 256
_GRAPH_BUCKETS = 64


def _bucket(feature: str, buckets: int) -> int:
    digest = hashlib.md5(feature.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "little") % buckets


@dataclass(frozen=True)
class GenerationState:
    """Everything the model conditions on at one decoding step."""

    prompt_text: str
    #: Bag of sequentializer tokens of the prompt graph (may be empty).
    graph_tokens: tuple[tuple[str, int], ...] = ()
    #: Names of the retrieved candidate APIs (order = retrieval rank).
    retrieved: tuple[str, ...] = ()
    #: APIs generated so far.
    prefix: tuple[str, ...] = ()
    #: Decodable API names (e.g. the graph type's category-routed set);
    #: empty means "fall back to the retrieved set / full vocabulary".
    allowed: tuple[str, ...] = ()

    def advance(self, api_name: str) -> "GenerationState":
        return GenerationState(
            prompt_text=self.prompt_text,
            graph_tokens=self.graph_tokens,
            retrieved=self.retrieved,
            prefix=self.prefix + (api_name,),
            allowed=self.allowed,
        )

    @staticmethod
    def graph_tokens_from_counter(counts: Counter) -> tuple[
            tuple[str, int], ...]:
        return tuple(sorted(counts.items()))


@dataclass(frozen=True)
class TrainingExample:
    """One finetuning pair: a question and its ground-truth chain(s).

    ``target_chains`` may hold several equivalent chains (the paper's
    second chain property); losses take the minimum over them.
    """

    question: str
    target_chains: tuple[tuple[str, ...], ...]
    graph_tokens: tuple[tuple[str, int], ...] = ()
    retrieved: tuple[str, ...] = ()
    allowed: tuple[str, ...] = ()

    def state(self) -> GenerationState:
        return GenerationState(prompt_text=self.question,
                               graph_tokens=self.graph_tokens,
                               retrieved=self.retrieved,
                               allowed=self.allowed)


@dataclass
class ChainLanguageModel:
    """Log-linear autoregressive model over an API vocabulary.

    Example::

        model = ChainLanguageModel(api_names=registry.names())
        dist = model.next_distribution(state)   # ndarray over vocab
        model.train_step(state, "count_nodes")  # one SGD update
    """

    api_names: Sequence[str]
    learning_rate: float = 0.5
    l2: float = 1e-3
    seed: int = 0
    #: Restrict candidates to the retrieved APIs (+EOS) when retrieval
    #: supplied any — the paper's "reduce the space of prediction".
    restrict_to_retrieved: bool = True
    _vocab: dict[str, int] = field(init=False, default_factory=dict)
    _weights: np.ndarray = field(init=False, default=None)  # type: ignore

    def __post_init__(self) -> None:
        if not self.api_names:
            raise ModelError("api vocabulary is empty")
        names = list(dict.fromkeys(self.api_names))  # dedupe, keep order
        self._vocab = {name: i for i, name in enumerate(names)}
        self._vocab[EOS] = len(names)
        rng = np.random.default_rng(self.seed)
        self._weights = rng.normal(
            scale=0.01, size=(len(self._vocab), self.n_features))

    # ------------------------------------------------------------------
    # vocabulary
    # ------------------------------------------------------------------
    @property
    def vocab_size(self) -> int:
        return len(self._vocab)

    @property
    def eos_id(self) -> int:
        return self._vocab[EOS]

    def token_id(self, name: str) -> int:
        try:
            return self._vocab[name]
        except KeyError:
            raise ModelError(f"API {name!r} not in model vocabulary") \
                from None

    def token_name(self, token_id: int) -> str:
        for name, tid in self._vocab.items():
            if tid == token_id:
                return name
        raise ModelError(f"no token with id {token_id}")

    # ------------------------------------------------------------------
    # features
    # ------------------------------------------------------------------
    @property
    def n_features(self) -> int:
        # text + graph + retrieved-indicator + prev-token + position + bias
        return (_TEXT_BUCKETS + _GRAPH_BUCKETS + len(self._vocab)
                + len(self._vocab) + 8 + 1)

    def featurize(self, state: GenerationState) -> dict[int, float]:
        """Sparse feature vector of a decoding state."""
        features: dict[int, float] = {}
        base = 0
        tokens = tokenize(state.prompt_text)
        if tokens:
            weight = 1.0 / math.sqrt(len(tokens))
            for token in tokens:
                idx = base + _bucket("t:" + token, _TEXT_BUCKETS)
                features[idx] = features.get(idx, 0.0) + weight
        base += _TEXT_BUCKETS
        total_graph = sum(count for __, count in state.graph_tokens)
        if total_graph:
            for token, count in state.graph_tokens:
                idx = base + _bucket("g:" + token, _GRAPH_BUCKETS)
                features[idx] = features.get(idx, 0.0) + count / total_graph
        base += _GRAPH_BUCKETS
        for rank, name in enumerate(state.retrieved):
            if name in self._vocab:
                features[base + self._vocab[name]] = 1.0 / (1.0 + rank)
        base += len(self._vocab)
        prev = state.prefix[-1] if state.prefix else None
        if prev is not None and prev in self._vocab:
            features[base + self._vocab[prev]] = 1.0
        base += len(self._vocab)
        position = min(len(state.prefix), 7)
        features[base + position] = 1.0
        base += 8
        features[base] = 1.0  # bias
        return features

    # ------------------------------------------------------------------
    # inference
    # ------------------------------------------------------------------
    def _logits(self, features: dict[int, float]) -> np.ndarray:
        idx = np.fromiter(features.keys(), dtype=np.int64)
        vals = np.fromiter(features.values(), dtype=np.float64)
        return self._weights[:, idx] @ vals

    def candidate_ids(self, state: GenerationState) -> list[int]:
        """Token ids decodable from ``state``.

        The prediction space is reduced (paper Sec. II-A) to the state's
        ``allowed`` set when given (the graph type's category-routed
        APIs), else to the retrieved APIs, else the full vocabulary.
        APIs already in the prefix are masked — chains never invoke the
        same API twice, so this prevents degenerate loops.  The
        *retrieved* set additionally biases scores through rank features.
        """
        if state.allowed:
            ids = {self._vocab[name] for name in state.allowed
                   if name in self._vocab}
        elif self.restrict_to_retrieved and state.retrieved:
            ids = {self._vocab[name] for name in state.retrieved
                   if name in self._vocab}
        else:
            ids = set(range(self.vocab_size))
        ids -= {self._vocab[name] for name in state.prefix
                if name in self._vocab}
        ids.add(self.eos_id)
        return sorted(ids)

    def next_distribution(self, state: GenerationState,
                          temperature: float = 1.0) -> np.ndarray:
        """Distribution over the full vocabulary (masked to candidates)."""
        if temperature <= 0:
            raise ModelError("temperature must be > 0")
        logits = self._logits(self.featurize(state)) / temperature
        mask = np.full(self.vocab_size, -np.inf)
        mask[self.candidate_ids(state)] = 0.0
        logits = logits + mask
        logits -= logits.max()
        probs = np.exp(logits)
        probs /= probs.sum()
        return probs

    def log_prob(self, state: GenerationState, api_name: str) -> float:
        """log P(api_name | state)."""
        probs = self.next_distribution(state)
        return float(np.log(max(probs[self.token_id(api_name)], 1e-300)))

    def chain_log_prob(self, state: GenerationState,
                       chain: Iterable[str]) -> float:
        """log P(chain, EOS | initial state)."""
        total = 0.0
        current = state
        for name in chain:
            total += self.log_prob(current, name)
            current = current.advance(name)
        total += self.log_prob(current, EOS)
        return total

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def train_step(self, state: GenerationState, target: str,
                   learning_rate: float | None = None) -> float:
        """One cross-entropy SGD step; returns the step's loss."""
        return self.train_weighted_step(state, {target: 1.0}, learning_rate)

    def train_weighted_step(self, state: GenerationState,
                            target_weights: dict[str, float],
                            learning_rate: float | None = None) -> float:
        """SGD toward a *distribution* over targets.

        The finetuning module converts its chain-level matching loss into
        per-step target weights and calls this; plain training passes a
        single target with weight 1.
        """
        lr = self.learning_rate if learning_rate is None else learning_rate
        total = sum(target_weights.values())
        if total <= 0:
            raise ModelError("target weights must sum to > 0")
        features = self.featurize(state)
        probs = self.next_distribution(state)
        target_vec = np.zeros(self.vocab_size)
        for name, weight in target_weights.items():
            target_vec[self.token_id(name)] = weight / total
        error = probs - target_vec  # gradient of CE wrt logits
        idx = np.fromiter(features.keys(), dtype=np.int64)
        vals = np.fromiter(features.values(), dtype=np.float64)
        self._weights[:, idx] -= lr * np.outer(error, vals)
        if self.l2 > 0:
            self._weights[:, idx] *= (1.0 - lr * self.l2)
        loss = -float(np.sum(target_vec * np.log(np.maximum(probs, 1e-300))))
        return loss

    def train_chain(self, example: TrainingExample,
                    learning_rate: float | None = None) -> float:
        """Teacher-forced CE training on the first target chain (baseline)."""
        chain = example.target_chains[0]
        state = example.state()
        loss = 0.0
        for name in chain:
            loss += self.train_step(state, name, learning_rate)
            state = state.advance(name)
        loss += self.train_step(state, EOS, learning_rate)
        return loss / (len(chain) + 1)
