"""The trainable conditional chain generator (the "LLM" substrate).

This is the offline stand-in for the paper's finetuned LLM backbone
(see the substitution note in DESIGN.md).  It is an autoregressive
log-linear model over the API vocabulary:

    P(next api | prompt, graph, retrieved APIs, prefix)
        = softmax(W @ phi(state))

where ``phi`` hashes prompt-text tokens, sequentialized-graph tokens,
retrieved-API indicators, the previous API and the position into one
sparse feature vector.  Training is SGD; the plain cross-entropy updates
here are the *baseline* objective — the paper's node matching-based loss
and search-based prediction live in :mod:`repro.finetune` and drive this
same model through :meth:`train_weighted_step`.
"""

from __future__ import annotations

import hashlib
import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from ..errors import ModelError
from ..embedding.tokenizer import tokenize

#: End-of-chain token (always the last vocabulary entry).
EOS = "<eos>"

_TEXT_BUCKETS = 256
_GRAPH_BUCKETS = 64


def _bucket(feature: str, buckets: int) -> int:
    digest = hashlib.md5(feature.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "little") % buckets


@dataclass(frozen=True)
class GenerationState:
    """Everything the model conditions on at one decoding step."""

    prompt_text: str
    #: Bag of sequentializer tokens of the prompt graph (may be empty).
    graph_tokens: tuple[tuple[str, int], ...] = ()
    #: Names of the retrieved candidate APIs (order = retrieval rank).
    retrieved: tuple[str, ...] = ()
    #: APIs generated so far.
    prefix: tuple[str, ...] = ()
    #: Decodable API names (e.g. the graph type's category-routed set);
    #: empty means "fall back to the retrieved set / full vocabulary".
    allowed: tuple[str, ...] = ()

    def advance(self, api_name: str) -> "GenerationState":
        return GenerationState(
            prompt_text=self.prompt_text,
            graph_tokens=self.graph_tokens,
            retrieved=self.retrieved,
            prefix=self.prefix + (api_name,),
            allowed=self.allowed,
        )

    @staticmethod
    def graph_tokens_from_counter(counts: Counter) -> tuple[
            tuple[str, int], ...]:
        return tuple(sorted(counts.items()))


@dataclass(frozen=True)
class TrainingExample:
    """One finetuning pair: a question and its ground-truth chain(s).

    ``target_chains`` may hold several equivalent chains (the paper's
    second chain property); losses take the minimum over them.
    """

    question: str
    target_chains: tuple[tuple[str, ...], ...]
    graph_tokens: tuple[tuple[str, int], ...] = ()
    retrieved: tuple[str, ...] = ()
    allowed: tuple[str, ...] = ()

    def state(self) -> GenerationState:
        return GenerationState(prompt_text=self.question,
                               graph_tokens=self.graph_tokens,
                               retrieved=self.retrieved,
                               allowed=self.allowed)


@dataclass
class ChainLanguageModel:
    """Log-linear autoregressive model over an API vocabulary.

    Example::

        model = ChainLanguageModel(api_names=registry.names())
        dist = model.next_distribution(state)   # ndarray over vocab
        model.train_step(state, "count_nodes")  # one SGD update
    """

    api_names: Sequence[str]
    learning_rate: float = 0.5
    l2: float = 1e-3
    seed: int = 0
    #: Restrict candidates to the retrieved APIs (+EOS) when retrieval
    #: supplied any — the paper's "reduce the space of prediction".
    restrict_to_retrieved: bool = True
    _vocab: dict[str, int] = field(init=False, default_factory=dict)
    _names_by_id: list[str] = field(init=False, default_factory=list)
    _weights: np.ndarray = field(init=False, default=None)  # type: ignore

    def __post_init__(self) -> None:
        if not self.api_names:
            raise ModelError("api vocabulary is empty")
        names = list(dict.fromkeys(self.api_names))  # dedupe, keep order
        self._vocab = {name: i for i, name in enumerate(names)}
        self._vocab[EOS] = len(names)
        self._names_by_id = names + [EOS]
        rng = np.random.default_rng(self.seed)
        self._weights = rng.normal(
            scale=0.01, size=(len(self._vocab), self.n_features))

    # ------------------------------------------------------------------
    # vocabulary
    # ------------------------------------------------------------------
    @property
    def vocab_size(self) -> int:
        return len(self._vocab)

    @property
    def eos_id(self) -> int:
        return self._vocab[EOS]

    def token_id(self, name: str) -> int:
        try:
            return self._vocab[name]
        except KeyError:
            raise ModelError(f"API {name!r} not in model vocabulary") \
                from None

    def token_name(self, token_id: int) -> str:
        if 0 <= token_id < len(self._names_by_id):
            return self._names_by_id[token_id]
        raise ModelError(f"no token with id {token_id}")

    # ------------------------------------------------------------------
    # features
    # ------------------------------------------------------------------
    @property
    def n_features(self) -> int:
        # text + graph + retrieved-indicator + prev-token + position + bias
        return (_TEXT_BUCKETS + _GRAPH_BUCKETS + len(self._vocab)
                + len(self._vocab) + 8 + 1)

    def featurize(self, state: GenerationState) -> dict[int, float]:
        """Sparse feature vector of a decoding state."""
        features = self._static_features(state)
        bias = features.pop(self.n_features - 1)
        for idx in self._dynamic_feature_ids(state):
            features[idx] = 1.0
        features[self.n_features - 1] = bias  # keep insertion order stable
        return features

    def _static_features(self, state: GenerationState) -> dict[int, float]:
        """The feature components invariant under :meth:`advance`.

        Text, graph, retrieved-API and bias features depend only on the
        conditioning context, not on the prefix; batched decoding caches
        them per decode lane and re-adds only the dynamic part each step.
        """
        features: dict[int, float] = {}
        base = 0
        tokens = tokenize(state.prompt_text)
        if tokens:
            weight = 1.0 / math.sqrt(len(tokens))
            for token in tokens:
                idx = base + _bucket("t:" + token, _TEXT_BUCKETS)
                features[idx] = features.get(idx, 0.0) + weight
        base += _TEXT_BUCKETS
        total_graph = sum(count for __, count in state.graph_tokens)
        if total_graph:
            for token, count in state.graph_tokens:
                idx = base + _bucket("g:" + token, _GRAPH_BUCKETS)
                features[idx] = features.get(idx, 0.0) + count / total_graph
        base += _GRAPH_BUCKETS
        for rank, name in enumerate(state.retrieved):
            if name in self._vocab:
                features[base + self._vocab[name]] = 1.0 / (1.0 + rank)
        features[self.n_features - 1] = 1.0  # bias
        return features

    def _dynamic_feature_ids(self, state: GenerationState) -> list[int]:
        """Indices of the prefix-dependent indicator features (value 1)."""
        base = _TEXT_BUCKETS + _GRAPH_BUCKETS + len(self._vocab)
        ids: list[int] = []
        prev = state.prefix[-1] if state.prefix else None
        if prev is not None and prev in self._vocab:
            ids.append(base + self._vocab[prev])
        base += len(self._vocab)
        ids.append(base + min(len(state.prefix), 7))
        return ids

    # ------------------------------------------------------------------
    # inference
    # ------------------------------------------------------------------
    def _logits(self, features: dict[int, float]) -> np.ndarray:
        idx = np.fromiter(features.keys(), dtype=np.int64)
        vals = np.fromiter(features.values(), dtype=np.float64)
        return self._weights[:, idx] @ vals

    def candidate_ids(self, state: GenerationState) -> list[int]:
        """Token ids decodable from ``state``.

        The prediction space is reduced (paper Sec. II-A) to the state's
        ``allowed`` set when given (the graph type's category-routed
        APIs), else to the retrieved APIs, else the full vocabulary.
        APIs already in the prefix are masked — chains never invoke the
        same API twice, so this prevents degenerate loops.  The
        *retrieved* set additionally biases scores through rank features.
        """
        ids = set(self._base_candidate_ids(state))
        ids -= {self._vocab[name] for name in state.prefix
                if name in self._vocab}
        ids.add(self.eos_id)
        return sorted(ids)

    def _base_candidate_ids(self, state: GenerationState) -> frozenset[int]:
        """Prefix-independent part of :meth:`candidate_ids`.

        Constant across :meth:`GenerationState.advance`, so batched
        decoding resolves it once per lane and only re-applies the
        prefix mask each step.
        """
        if state.allowed:
            ids = {self._vocab[name] for name in state.allowed
                   if name in self._vocab}
        elif self.restrict_to_retrieved and state.retrieved:
            ids = {self._vocab[name] for name in state.retrieved
                   if name in self._vocab}
        else:
            ids = set(range(self.vocab_size))
        ids.add(self.eos_id)
        return frozenset(ids)

    def next_distribution(self, state: GenerationState,
                          temperature: float = 1.0) -> np.ndarray:
        """Distribution over the full vocabulary (masked to candidates)."""
        if temperature <= 0:
            raise ModelError("temperature must be > 0")
        logits = self._logits(self.featurize(state)) / temperature
        mask = np.full(self.vocab_size, -np.inf)
        mask[self.candidate_ids(state)] = 0.0
        logits = logits + mask
        logits -= logits.max()
        probs = np.exp(logits)
        probs /= probs.sum()
        return probs

    def next_distribution_batch(self, states: Sequence[GenerationState],
                                temperature: float = 1.0) -> np.ndarray:
        """Batched :meth:`next_distribution`: one ``(N, vocab)`` matrix.

        The N sparse ``phi(state)`` vectors are assembled CSR-style into
        one dense design matrix and scored with a single
        ``Phi @ W.T`` matmul, so per-call numpy overhead is paid once
        per *batch* instead of once per state.  Row ``i`` equals
        ``next_distribution(states[i])`` up to floating-point summation
        order (BLAS matmul vs. per-state dot), which leaves argmax /
        top-k decoding decisions identical on non-degenerate inputs.
        """
        if temperature <= 0:
            raise ModelError("temperature must be > 0")
        states = list(states)
        if not states:
            return np.zeros((0, self.vocab_size))
        indptr, indices, values = self.featurize_csr(states)
        phi = np.zeros((len(states), self.n_features))
        for row in range(len(states)):
            sl = slice(indptr[row], indptr[row + 1])
            phi[row, indices[sl]] = values[sl]
        logits = (phi @ self._weights.T) / temperature
        mask = np.full((len(states), self.vocab_size), -np.inf)
        for row, state in enumerate(states):
            mask[row, self.candidate_ids(state)] = 0.0
        logits += mask
        logits -= logits.max(axis=1, keepdims=True)
        probs = np.exp(logits)
        probs /= probs.sum(axis=1, keepdims=True)
        return probs

    def featurize_csr(self, states: Sequence[GenerationState]
                      ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """CSR-style batch featurization: ``(indptr, indices, values)``.

        ``indices[indptr[i]:indptr[i+1]]`` / ``values[...]`` hold the
        sparse feature vector of ``states[i]`` (the same entries as
        :meth:`featurize`, as flat arrays ready for scatter/gather).
        """
        indptr = np.zeros(len(states) + 1, dtype=np.int64)
        all_indices: list[np.ndarray] = []
        all_values: list[np.ndarray] = []
        for row, state in enumerate(states):
            features = self.featurize(state)
            all_indices.append(np.fromiter(features.keys(), dtype=np.int64,
                                           count=len(features)))
            all_values.append(np.fromiter(features.values(),
                                          dtype=np.float64,
                                          count=len(features)))
            indptr[row + 1] = indptr[row] + len(features)
        if not states:
            return indptr, np.empty(0, np.int64), np.empty(0, np.float64)
        return indptr, np.concatenate(all_indices), \
            np.concatenate(all_values)

    def log_prob(self, state: GenerationState, api_name: str) -> float:
        """log P(api_name | state)."""
        probs = self.next_distribution(state)
        return float(np.log(max(probs[self.token_id(api_name)], 1e-300)))

    def chain_log_prob(self, state: GenerationState,
                       chain: Iterable[str]) -> float:
        """log P(chain, EOS | initial state)."""
        total = 0.0
        current = state
        for name in chain:
            total += self.log_prob(current, name)
            current = current.advance(name)
        total += self.log_prob(current, EOS)
        return total

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def train_step(self, state: GenerationState, target: str,
                   learning_rate: float | None = None) -> float:
        """One cross-entropy SGD step; returns the step's loss."""
        return self.train_weighted_step(state, {target: 1.0}, learning_rate)

    def train_weighted_step(self, state: GenerationState,
                            target_weights: dict[str, float],
                            learning_rate: float | None = None) -> float:
        """SGD toward a *distribution* over targets.

        The finetuning module converts its chain-level matching loss into
        per-step target weights and calls this; plain training passes a
        single target with weight 1.
        """
        lr = self.learning_rate if learning_rate is None else learning_rate
        total = sum(target_weights.values())
        if total <= 0:
            raise ModelError("target weights must sum to > 0")
        features = self.featurize(state)
        probs = self.next_distribution(state)
        target_vec = np.zeros(self.vocab_size)
        for name, weight in target_weights.items():
            target_vec[self.token_id(name)] = weight / total
        error = probs - target_vec  # gradient of CE wrt logits
        idx = np.fromiter(features.keys(), dtype=np.int64)
        vals = np.fromiter(features.values(), dtype=np.float64)
        self._weights[:, idx] -= lr * np.outer(error, vals)
        if self.l2 > 0:
            self._weights[:, idx] *= (1.0 - lr * self.l2)
        loss = -float(np.sum(target_vec * np.log(np.maximum(probs, 1e-300))))
        return loss

    def train_chain(self, example: TrainingExample,
                    learning_rate: float | None = None) -> float:
        """Teacher-forced CE training on the first target chain (baseline)."""
        chain = example.target_chains[0]
        state = example.state()
        loss = 0.0
        for name in chain:
            loss += self.train_step(state, name, learning_rate)
            state = state.advance(name)
        loss += self.train_step(state, EOS, learning_rate)
        return loss / (len(chain) + 1)


class BatchScorer:
    """Batched next-token scoring over a fleet of decode lanes.

    Decoding only ever advances a :class:`GenerationState` by appending
    APIs, so the text/graph/retrieved/bias features and the pre-prefix
    candidate set of each lane are fixed for the whole decode.  The
    scorer resolves those once per lane at construction; each step then
    costs one dense ``Phi @ W.T`` matmul plus the tiny dynamic
    (previous-API + position + prefix-mask) updates.

    Used by :func:`repro.llm.decoding.greedy_decode_batch` (one lane per
    input state) and :func:`repro.llm.decoding.beam_decode` (every live
    beam shares lane 0's static features).
    """

    def __init__(self, model: ChainLanguageModel,
                 states: Sequence[GenerationState]) -> None:
        self.model = model
        n_lanes = len(states)
        #: Dense static design rows (lane -> phi without prev/position).
        self._phi_static = np.zeros((n_lanes, model.n_features))
        #: Base candidate masks (lane -> 0.0 on candidates, -inf off).
        self._mask_static = np.full((n_lanes, model.vocab_size), -np.inf)
        for lane, state in enumerate(states):
            features = model._static_features(state)
            self._phi_static[lane, list(features.keys())] = \
                list(features.values())
            self._mask_static[
                lane, sorted(model._base_candidate_ids(state))] = 0.0
        #: Contiguous transposed weight snapshot for the per-step dgemm.
        #: A scorer is built per decode and must not outlive training
        #: steps (training mutates the model's weights in place).
        self._wt = np.ascontiguousarray(model._weights.T)

    @property
    def n_lanes(self) -> int:
        return self._phi_static.shape[0]

    def distributions(self, states: Sequence[GenerationState],
                      lanes: Sequence[int],
                      temperature: float = 1.0) -> np.ndarray:
        """``(len(states), vocab)`` next-token distributions.

        ``states[i]`` must be a (possibly advanced) descendant of the
        construction-time state of lane ``lanes[i]``.
        """
        logits = self._masked_logits(states, lanes, temperature)
        logits -= logits.max(axis=1, keepdims=True)
        probs = np.exp(logits)
        probs /= probs.sum(axis=1, keepdims=True)
        return probs

    def argmax_tokens(self, states: Sequence[GenerationState],
                      lanes: Sequence[int]) -> np.ndarray:
        """Greedy next-token ids per state (no softmax needed).

        ``argmax(softmax(x)) == argmax(x)``, so the greedy fleet
        decoder skips the exp/normalize work entirely.
        """
        logits = self._masked_logits(states, lanes, 1.0)
        return np.argmax(logits, axis=1)

    def _masked_logits(self, states: Sequence[GenerationState],
                       lanes: Sequence[int],
                       temperature: float) -> np.ndarray:
        if temperature <= 0:
            raise ModelError("temperature must be > 0")
        model = self.model
        vocab = model._vocab
        n = len(states)
        if n == 0:
            return np.zeros((0, model.vocab_size))
        lane_index = np.asarray(lanes, dtype=np.int64)
        phi = self._phi_static[lane_index]       # fancy index == copy
        logits_mask = self._mask_static[lane_index]
        dyn_rows: list[int] = []
        dyn_cols: list[int] = []
        masked_rows: list[int] = []
        masked_cols: list[int] = []
        for row, state in enumerate(states):
            for idx in model._dynamic_feature_ids(state):
                dyn_rows.append(row)
                dyn_cols.append(idx)
            for name in state.prefix:
                token_id = vocab.get(name)
                if token_id is not None:
                    masked_rows.append(row)
                    masked_cols.append(token_id)
        phi[dyn_rows, dyn_cols] = 1.0
        if masked_rows:
            logits_mask[masked_rows, masked_cols] = -np.inf
        logits = phi @ self._wt
        if temperature != 1.0:
            logits /= temperature
        logits += logits_mask
        return logits
