"""Chain decoding strategies: greedy, beam and temperature sampling.

The paper's search-based prediction (random rollouts scored by the node
matching-based loss) is the *training-time* decoder and lives in
:mod:`repro.finetune.rollout`; the strategies here are the inference-
time decoders the chat pipeline uses.
"""

from __future__ import annotations

import heapq
import random

import numpy as np

from ..errors import ModelError
from .chain_model import EOS, ChainLanguageModel, GenerationState


def greedy_decode(model: ChainLanguageModel, state: GenerationState,
                  max_length: int = 8) -> list[str]:
    """Always take the argmax next API; stop at EOS or ``max_length``."""
    if max_length < 1:
        raise ModelError("max_length must be >= 1")
    chain: list[str] = []
    current = state
    for __ in range(max_length):
        probs = model.next_distribution(current)
        token_id = int(np.argmax(probs))
        if token_id == model.eos_id:
            break
        name = model.token_name(token_id)
        chain.append(name)
        current = current.advance(name)
    return chain


def beam_decode(model: ChainLanguageModel, state: GenerationState,
                beam_width: int = 4, max_length: int = 8) -> list[str]:
    """Length-normalized beam search; returns the best finished chain."""
    if beam_width < 1:
        raise ModelError("beam_width must be >= 1")
    # beams: (neg mean log prob, tiebreak, chain, state, finished)
    beams: list[tuple[float, int, tuple[str, ...], GenerationState, bool]]
    beams = [(0.0, 0, (), state, False)]
    tie = 0
    for __ in range(max_length + 1):
        if all(finished for *_, finished in beams):
            break
        expanded: list[tuple[float, int, tuple[str, ...], GenerationState,
                             bool]] = []
        for score, __tie, chain, current, finished in beams:
            if finished:
                expanded.append((score, __tie, chain, current, True))
                continue
            total_logp = -score * (len(chain) + 1)
            probs = model.next_distribution(current)
            candidate_ids = np.argsort(probs)[::-1][:beam_width]
            for token_id in candidate_ids:
                logp = float(np.log(max(probs[token_id], 1e-300)))
                tie += 1
                if int(token_id) == model.eos_id:
                    new_score = -(total_logp + logp) / (len(chain) + 2)
                    expanded.append((new_score, tie, chain, current, True))
                else:
                    name = model.token_name(int(token_id))
                    new_chain = chain + (name,)
                    new_score = -(total_logp + logp) / (len(new_chain) + 1)
                    expanded.append((new_score, tie, new_chain,
                                     current.advance(name), False))
        beams = heapq.nsmallest(beam_width, expanded)
    finished_beams = [b for b in beams if b[4]] or beams
    best = min(finished_beams)
    return list(best[2])


def sample_decode(model: ChainLanguageModel, state: GenerationState,
                  temperature: float = 1.0, max_length: int = 8,
                  rng: random.Random | None = None) -> list[str]:
    """Sample a chain token by token (used for random rollouts)."""
    rng = rng or random.Random(0)
    chain: list[str] = []
    current = state
    for __ in range(max_length):
        probs = model.next_distribution(current, temperature=temperature)
        threshold = rng.random()
        cumulative = 0.0
        token_id = model.eos_id
        for tid, p in enumerate(probs):
            cumulative += float(p)
            if threshold <= cumulative:
                token_id = tid
                break
        if token_id == model.eos_id:
            break
        name = model.token_name(token_id)
        chain.append(name)
        current = current.advance(name)
    return chain
