"""Chain decoding strategies: greedy, beam and temperature sampling.

The paper's search-based prediction (random rollouts scored by the node
matching-based loss) is the *training-time* decoder and lives in
:mod:`repro.finetune.rollout`; the strategies here are the inference-
time decoders the chat pipeline uses.

Two execution paths share one model:

* the scalar path (:func:`greedy_decode`, :func:`sample_decode`) calls
  :meth:`~repro.llm.chain_model.ChainLanguageModel.next_distribution`
  once per state per step — simple, and the perf-gate baseline;
* the batched path (:func:`greedy_decode_batch`, and
  :func:`beam_decode`, which expands all live beams per step through
  one call) scores whole fleets of states with a single matmul via
  :class:`~repro.llm.chain_model.BatchScorer`.
"""

from __future__ import annotations

import heapq
import random
from typing import Sequence

import numpy as np

from ..errors import ModelError
from .chain_model import BatchScorer, ChainLanguageModel, GenerationState


def greedy_decode(model: ChainLanguageModel, state: GenerationState,
                  max_length: int = 8) -> list[str]:
    """Always take the argmax next API; stop at EOS or ``max_length``."""
    if max_length < 1:
        raise ModelError("max_length must be >= 1")
    chain: list[str] = []
    current = state
    for __ in range(max_length):
        probs = model.next_distribution(current)
        token_id = int(np.argmax(probs))
        if token_id == model.eos_id:
            break
        name = model.token_name(token_id)
        chain.append(name)
        current = current.advance(name)
    return chain


#: One beam hypothesis: (neg mean log-prob, tiebreak, raw total
#: log-prob, chain, state, finished).  The *raw* cumulative log-prob is
#: carried alongside the length-normalized ranking score instead of
#: being re-derived from it (``-score * length`` reconstruction drifts
#: one rounding per step and compounds over long beams).
_Beam = tuple[float, int, float, tuple[str, ...], GenerationState, bool]


def beam_decode(model: ChainLanguageModel, state: GenerationState,
                beam_width: int = 4, max_length: int = 8) -> list[str]:
    """Length-normalized beam search; returns the best finished chain.

    All live beams of a step are scored through one batched model call
    (they share ``state``'s static features, so the per-step cost is a
    single ``(n_live, vocab)`` matmul).  Candidates whose probability
    is exactly ``0.0`` are disallowed (masked) tokens and are never
    expanded.
    """
    if beam_width < 1:
        raise ModelError("beam_width must be >= 1")
    scorer = BatchScorer(model, [state])
    beams: list[_Beam] = [(0.0, 0, 0.0, (), state, False)]
    tie = 0
    for __ in range(max_length + 1):
        live = [beam for beam in beams if not beam[5]]
        if not live:
            break
        probs = scorer.distributions([beam[4] for beam in live],
                                     [0] * len(live))
        expanded: list[_Beam] = [beam for beam in beams if beam[5]]
        for row, (__score, __tie, total_logp, chain, current,
                  __fin) in enumerate(live):
            row_probs = probs[row]
            candidate_ids = np.argsort(row_probs)[::-1][:beam_width]
            for token_id in candidate_ids:
                p = float(row_probs[token_id])
                if p == 0.0:
                    continue  # masked (disallowed) token
                logp = float(np.log(p))
                tie += 1
                new_logp = total_logp + logp
                if int(token_id) == model.eos_id:
                    new_score = -new_logp / (len(chain) + 2)
                    expanded.append((new_score, tie, new_logp, chain,
                                     current, True))
                else:
                    name = model.token_name(int(token_id))
                    new_chain = chain + (name,)
                    new_score = -new_logp / (len(new_chain) + 1)
                    expanded.append((new_score, tie, new_logp, new_chain,
                                     current.advance(name), False))
        beams = heapq.nsmallest(beam_width, expanded)
    finished_beams = [beam for beam in beams if beam[5]] or beams
    best = min(finished_beams)
    return list(best[3])


def greedy_decode_batch(model: ChainLanguageModel,
                        states: Sequence[GenerationState],
                        max_length: int = 8) -> list[list[str]]:
    """Greedy-decode a fleet of states in lockstep.

    Equivalent to ``[greedy_decode(model, s, max_length) for s in
    states]`` but each step scores every still-decoding state with one
    batched model call.  Lanes that emit EOS drop out of the batch.
    """
    if max_length < 1:
        raise ModelError("max_length must be >= 1")
    states = list(states)
    scorer = BatchScorer(model, states)
    chains: list[list[str]] = [[] for __ in states]
    current = list(states)
    active = list(range(len(states)))
    for __ in range(max_length):
        if not active:
            break
        token_ids = scorer.argmax_tokens(
            [current[lane] for lane in active], active)
        still_active: list[int] = []
        for row, lane in enumerate(active):
            token_id = int(token_ids[row])
            if token_id == model.eos_id:
                continue
            name = model.token_name(token_id)
            chains[lane].append(name)
            current[lane] = current[lane].advance(name)
            still_active.append(lane)
        active = still_active
    return chains


def sample_decode(model: ChainLanguageModel, state: GenerationState,
                  temperature: float = 1.0, max_length: int = 8,
                  rng: random.Random | None = None) -> list[str]:
    """Sample a chain token by token (used for random rollouts)."""
    rng = rng or random.Random(0)
    chain: list[str] = []
    current = state
    for __ in range(max_length):
        probs = model.next_distribution(current, temperature=temperature)
        threshold = rng.random()
        cumulative = 0.0
        token_id = model.eos_id
        for tid, p in enumerate(probs):
            cumulative += float(p)
            if threshold <= cumulative:
                token_id = tid
                break
        if token_id == model.eos_id:
            break
        name = model.token_name(token_id)
        chain.append(name)
        current = current.advance(name)
    return chain
