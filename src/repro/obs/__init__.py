"""repro.obs — end-to-end tracing, metrics, and profiling.

The observability layer of the reproduction:

* :mod:`trace` — :class:`Tracer`: hierarchical spans (request ->
  pipeline stage -> API step -> retry attempt) with monotonic-clock
  timings and deterministic seed-derived span IDs; thread-local
  propagation plus explicit cross-thread handoff for the
  :mod:`repro.serve` worker pool;
* :mod:`metrics` — :class:`MetricsRegistry`: counters, gauges, and
  fixed-bucket :class:`Histogram` quantiles (p50/p95/p99), fed by the
  executor's listener events;
* :mod:`export` — JSON-lines span logs (full and canonical
  byte-stable forms), flame-style trace rendering, markdown metrics
  snapshots;
* :mod:`profile` — :class:`StageProfiler`: cumulative per-stage
  wall/CPU time and opt-in :mod:`tracemalloc` allocation deltas.

Wire into a server with ``ServeConfig(obs=ObsConfig(
enable_tracing=True))``, or directly::

    from repro.obs import Tracer
    tracer = Tracer(seed=0)
    chatgraph.set_tracer(tracer)
    chatgraph.ask("write a brief report for G", graph=g)
    print(render_flame(tracer.finished_spans()))
"""

from .export import (
    check_trace,
    load_trace,
    merge_traces,
    read_trace,
    render_flame,
    render_metrics_markdown,
    spans_to_jsonl,
    structural_order,
    write_trace,
)
from .metrics import (
    CounterMetric,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_metrics_dumps,
)
from .profile import StageProfile, StageProfiler
from .trace import NULL_SPAN, TIMING_FIELDS, NullSpan, Span, Tracer

__all__ = [
    "CounterMetric",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "NullSpan",
    "Span",
    "StageProfile",
    "StageProfiler",
    "TIMING_FIELDS",
    "Tracer",
    "check_trace",
    "load_trace",
    "merge_metrics_dumps",
    "merge_traces",
    "read_trace",
    "render_flame",
    "render_metrics_markdown",
    "spans_to_jsonl",
    "structural_order",
    "write_trace",
]
