"""Exporters: JSON-lines span logs, flame summaries, metrics snapshots.

Two serializations of a trace:

* **full** — every span with its timings, ordered by start time; the
  operational log format;
* **canonical** — timings stripped, spans emitted in *structural* order
  (roots sorted by ``(name, span_id)``, children by their structural
  ``index``), keys sorted.  Two seeded runs of the same workload
  produce byte-identical canonical exports, which is what the golden
  regression tests and CI smoke job diff against.

:func:`render_flame` replays a span log as an indented flame-style
summary; :func:`render_metrics_markdown` renders a
``ChatGraphServer.metrics_snapshot()`` (or any dict of the same shape)
as a plain-markdown report.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable, Sequence

from .trace import Span, TIMING_FIELDS


def _as_dicts(spans: Iterable[Span | dict[str, Any]],
              canonical: bool = False) -> list[dict[str, Any]]:
    out = []
    for span in spans:
        if isinstance(span, Span):
            out.append(span.to_dict(canonical=canonical))
        else:
            data = dict(span)
            if canonical:
                for fld in TIMING_FIELDS:
                    data.pop(fld, None)
            out.append(data)
    return out


def structural_order(spans: Iterable[Span | dict[str, Any]]
                     ) -> list[dict[str, Any]]:
    """Depth-first structural order, independent of wall-clock times.

    Roots (spans whose parent is absent from the set) sort by
    ``(name, span_id)``; children sort by their structural ``index``
    (ties broken by span_id, which cannot happen for a well-formed
    tree but keeps the order total).
    """
    dicts = _as_dicts(spans)
    by_id = {d["span_id"]: d for d in dicts}
    children: dict[str | None, list[dict[str, Any]]] = {}
    roots: list[dict[str, Any]] = []
    for d in dicts:
        parent = d.get("parent_id")
        if parent is None or parent not in by_id:
            roots.append(d)
        else:
            children.setdefault(parent, []).append(d)
    roots.sort(key=lambda d: (d.get("name", ""), d["span_id"]))
    ordered: list[dict[str, Any]] = []

    def visit(node: dict[str, Any]) -> None:
        ordered.append(node)
        for child in sorted(children.get(node["span_id"], ()),
                            key=lambda d: (d.get("index", 0),
                                           d["span_id"])):
            visit(child)

    for root in roots:
        visit(root)
    return ordered


def spans_to_jsonl(spans: Iterable[Span | dict[str, Any]],
                   canonical: bool = False) -> str:
    """One JSON object per line; see the module docstring for modes."""
    if canonical:
        ordered = [
            {k: v for k, v in d.items() if k not in TIMING_FIELDS}
            for d in structural_order(spans)
        ]
    else:
        ordered = sorted(_as_dicts(spans),
                         key=lambda d: (d.get("start", 0.0), d["span_id"]))
    lines = [json.dumps(d, sort_keys=True, default=str) for d in ordered]
    return "\n".join(lines) + ("\n" if lines else "")


def write_trace(path: str | Path, spans: Iterable[Span | dict[str, Any]],
                canonical: bool = False) -> Path:
    path = Path(path)
    path.write_text(spans_to_jsonl(spans, canonical=canonical),
                    encoding="utf-8")
    return path


def load_trace(text: str) -> list[dict[str, Any]]:
    """Parse a JSON-lines span log back into span dicts."""
    spans = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            spans.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise ValueError(f"bad span log line {lineno}: {exc}") from exc
    return spans


def read_trace(path: str | Path) -> list[dict[str, Any]]:
    return load_trace(Path(path).read_text(encoding="utf-8"))


def merge_traces(*span_lists: Iterable[Span | dict[str, Any]]
                 ) -> list[dict[str, Any]]:
    """Merge span logs from many processes into one structural view.

    Cross-process spans share one id space (span ids are content-keyed,
    and the coordinator's span id travels to the shard as the parent of
    the shard-side request span), so merging is a union: duplicates by
    ``span_id`` collapse (first occurrence wins — canonical exports of
    the same span are identical anyway) and the union is re-ordered
    structurally, exactly as if one tracer had recorded every span.
    Feed the result to :func:`spans_to_jsonl`, :func:`render_flame`, or
    :func:`check_trace`.
    """
    merged: dict[str, dict[str, Any]] = {}
    for spans in span_lists:
        for d in _as_dicts(spans):
            merged.setdefault(d["span_id"], d)
    return structural_order(merged.values())


def check_trace(spans: Sequence[dict[str, Any]]) -> list[str]:
    """Structural integrity problems of a span log (empty = sound)."""
    problems: list[str] = []
    seen: dict[str, dict[str, Any]] = {}
    for d in spans:
        span_id = d.get("span_id")
        if not span_id:
            problems.append(f"span without span_id: {d!r}")
            continue
        if span_id in seen:
            problems.append(f"duplicate span_id {span_id}")
        seen[span_id] = d
    for d in spans:
        parent = d.get("parent_id")
        if parent is not None and parent not in seen:
            problems.append(
                f"span {d.get('span_id')} ({d.get('name')}) has unknown "
                f"parent {parent}")
        if d.get("parent_id") == d.get("span_id"):
            problems.append(f"span {d.get('span_id')} is its own parent")
    return problems


# ----------------------------------------------------------------------
# flame-style rendering
# ----------------------------------------------------------------------
def render_flame(spans: Iterable[Span | dict[str, Any]],
                 bar_width: int = 24) -> str:
    """Indented flame-style summary of a span log.

    Each line shows the span name, its wall time, its share of the
    root's wall time as a bar, and status/attempt annotations.  Works
    on canonical traces too (timings render as ``-``).
    """
    ordered = structural_order(spans)
    if not ordered:
        return "(empty trace)"
    by_id = {d["span_id"]: d for d in ordered}
    depth: dict[str, int] = {}
    root_wall: dict[str, float] = {}

    def root_of(d: dict[str, Any]) -> dict[str, Any]:
        while d.get("parent_id") in by_id:
            d = by_id[d["parent_id"]]
        return d

    lines = []
    for d in ordered:
        parent = d.get("parent_id")
        depth[d["span_id"]] = depth.get(parent, -1) + 1 \
            if parent in by_id else 0
        root = root_of(d)
        total = root_wall.setdefault(root["span_id"],
                                     float(root.get("wall_seconds", 0.0)))
        wall = d.get("wall_seconds")
        if wall is None:
            timing, bar = "      -", " " * bar_width
        else:
            timing = f"{float(wall) * 1000:9.3f}ms"
            share = float(wall) / total if total > 0 else 0.0
            filled = min(bar_width, int(round(share * bar_width)))
            bar = "#" * filled + "." * (bar_width - filled)
        indent = "  " * depth[d["span_id"]]
        suffix = ""
        if d.get("status") == "error":
            suffix += f"  !error {d.get('error', '')}".rstrip()
        cpu = d.get("cpu_seconds")
        if cpu is not None:
            suffix += f"  cpu={float(cpu) * 1000:.3f}ms"
        alloc = d.get("alloc_bytes")
        if alloc is not None:
            suffix += f"  alloc={int(alloc):+d}B"
        lines.append(f"[{bar}] {timing}  {indent}{d.get('name')}{suffix}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# metrics snapshot rendering
# ----------------------------------------------------------------------
def _fmt_seconds(value: float) -> str:
    return f"{value * 1000:.3f}ms"


def render_metrics_markdown(snapshot: dict[str, Any],
                            title: str = "Metrics snapshot") -> str:
    """Render a metrics snapshot as a plain-markdown report.

    Understands the shape produced by
    ``ChatGraphServer.metrics_snapshot()`` — ``counters``, ``gauges``,
    ``latency`` (per-stage quantile summaries), ``histograms``,
    ``caches``, ``breakers``, ``trace`` — and skips absent sections.
    """
    out = [f"# {title}", ""]
    counters = snapshot.get("counters") or {}
    if counters:
        out += ["## Counters", "", "| counter | value |", "| --- | --- |"]
        out += [f"| {name} | {value} |"
                for name, value in sorted(counters.items())]
        out.append("")
    gauges = snapshot.get("gauges") or {}
    if gauges:
        out += ["## Gauges", "", "| gauge | value |", "| --- | --- |"]
        out += [f"| {name} | {value:g} |"
                for name, value in sorted(gauges.items())]
        out.append("")
    for section, heading in (("latency", "Latency (per stage)"),
                             ("histograms", "Histograms")):
        summaries = snapshot.get(section) or {}
        if not summaries:
            continue
        out += [f"## {heading}", "",
                "| stage | count | mean | p50 | p95 | p99 | max |",
                "| --- | --- | --- | --- | --- | --- | --- |"]
        for name, summary in sorted(summaries.items()):
            out.append(
                "| {name} | {count} | {mean} | {p50} | {p95} | {p99} "
                "| {max} |".format(
                    name=name, count=int(summary.get("count", 0)),
                    mean=_fmt_seconds(summary.get("mean", 0.0)),
                    p50=_fmt_seconds(summary.get("p50", 0.0)),
                    p95=_fmt_seconds(summary.get("p95", 0.0)),
                    p99=_fmt_seconds(summary.get("p99", 0.0)),
                    max=_fmt_seconds(summary.get("max", 0.0))))
        out.append("")
    caches = snapshot.get("caches") or {}
    if caches:
        out += ["## Caches", "",
                "| cache | hits | misses | hit rate | size |",
                "| --- | --- | --- | --- | --- |"]
        for name, stats in sorted(caches.items()):
            out.append(f"| {name} | {stats.get('hits', 0)} "
                       f"| {stats.get('misses', 0)} "
                       f"| {stats.get('hit_rate', 0.0):.2%} "
                       f"| {stats.get('size', 0)} |")
        out.append("")
    breakers = snapshot.get("breakers") or {}
    if breakers:
        out += ["## Circuit breakers", "",
                "| api | state | failures | times opened |",
                "| --- | --- | --- | --- |"]
        for name, state in sorted(breakers.items()):
            out.append(f"| {name} | {state.get('state')} "
                       f"| {state.get('failures', 0)} "
                       f"| {state.get('times_opened', 0)} |")
        out.append("")
    trace = snapshot.get("trace") or {}
    if trace:
        out += ["## Trace", ""]
        out += [f"- spans: {trace.get('spans', 0)} "
                f"(dropped {trace.get('dropped', 0)} of cap "
                f"{trace.get('max_spans', 0)})"]
        by_kind = trace.get("by_kind") or {}
        if by_kind:
            out.append("- by kind: " + ", ".join(
                f"{kind}={count}"
                for kind, count in sorted(by_kind.items())))
        out.append("")
    return "\n".join(out).rstrip() + "\n"
