"""Counters, gauges, and fixed-bucket histograms for the pipeline.

:class:`Histogram` is the latency histogram the serve runtime has used
since PR 1 (moved here so observability owns the primitive;
``repro.serve.stats.LatencyHistogram`` is now an alias).  On top of it
:class:`MetricsRegistry` holds named counters/gauges/histograms behind
one lock-per-metric facade, and speaks the executor's listener protocol
— attach :meth:`MetricsRegistry.on_execution_event` to a
:class:`~repro.apis.executor.ChainExecutor` and every retry, timeout,
breaker trip, and step outcome lands in a counter.
"""

from __future__ import annotations

import bisect
import threading
from typing import Any

#: Geometric bucket upper bounds (seconds): 50us .. ~52s, then +inf.
_BUCKET_BOUNDS: tuple[float, ...] = tuple(
    5e-05 * (2.0 ** i) for i in range(21))


class Histogram:
    """Fixed-bucket histogram with quantile estimates.

    Quantiles are read from bucket upper bounds, so they are estimates
    with bounded relative error (each bucket spans a factor of two);
    ``min``/``max``/``mean`` are exact.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts = [0] * (len(_BUCKET_BOUNDS) + 1)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0

    def observe(self, seconds: float) -> None:
        index = bisect.bisect_left(_BUCKET_BOUNDS, seconds)
        with self._lock:
            self._counts[index] += 1
            self.count += 1
            self.total += seconds
            if seconds < self.min:
                self.min = seconds
            if seconds > self.max:
                self.max = seconds

    @staticmethod
    def _quantile_from(counts: list[int], count: int, maximum: float,
                       q: float) -> float:
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if count == 0:
            return 0.0
        target = q * count
        cumulative = 0
        for index, bucket_count in enumerate(counts):
            cumulative += bucket_count
            if cumulative >= target and bucket_count:
                if index >= len(_BUCKET_BOUNDS):
                    return maximum
                return min(_BUCKET_BOUNDS[index], maximum)
        return maximum

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile in seconds (0 when empty)."""
        with self._lock:
            return self._quantile_from(self._counts, self.count,
                                       self.max, q)

    @property
    def mean(self) -> float:
        with self._lock:
            return self.total / self.count if self.count else 0.0

    def summary(self) -> dict[str, float]:
        """One self-consistent snapshot of every statistic.

        All state is copied under a single lock acquisition and the
        quantiles are computed from the copy, so a summary taken while
        workers observe concurrently can never mix statistics from two
        different points in time (the old per-field reads could report
        e.g. a ``count`` newer than the ``p99`` beside it — and read
        ``count``/``min``/``max`` with no lock at all).  Quantile math
        runs outside the lock: observers are never blocked on it.
        """
        with self._lock:
            counts = list(self._counts)
            count = self.count
            total = self.total
            minimum = self.min
            maximum = self.max
        return {
            "count": count,
            "mean": total / count if count else 0.0,
            "p50": self._quantile_from(counts, count, maximum, 0.50),
            "p95": self._quantile_from(counts, count, maximum, 0.95),
            "p99": self._quantile_from(counts, count, maximum, 0.99),
            "min": 0.0 if count == 0 else minimum,
            "max": maximum,
        }


    def dump(self) -> dict[str, Any]:
        """Raw, lossless state for cross-process merging.

        Unlike :meth:`summary` (which collapses buckets into quantile
        estimates), a dump carries the bucket counts themselves, so
        dumps from many processes can be summed and the merged quantile
        estimate equals what one histogram observing everything would
        have reported.  JSON-safe: ``min`` is ``None`` when empty.
        """
        with self._lock:
            return {
                "counts": list(self._counts),
                "count": self.count,
                "total": self.total,
                "min": None if self.count == 0 else self.min,
                "max": self.max,
            }

    @staticmethod
    def merged_summary(dumps: list[dict[str, Any]]) -> dict[str, float]:
        """The :meth:`summary` of the union of the dumped histograms."""
        counts = [0] * (len(_BUCKET_BOUNDS) + 1)
        count = 0
        total = 0.0
        minimum = float("inf")
        maximum = 0.0
        for dump in dumps:
            for index, bucket in enumerate(dump["counts"]):
                counts[index] += bucket
            count += dump["count"]
            total += dump["total"]
            if dump["min"] is not None and dump["min"] < minimum:
                minimum = dump["min"]
            if dump["max"] > maximum:
                maximum = dump["max"]
        return {
            "count": count,
            "mean": total / count if count else 0.0,
            "p50": Histogram._quantile_from(counts, count, maximum, 0.50),
            "p95": Histogram._quantile_from(counts, count, maximum, 0.95),
            "p99": Histogram._quantile_from(counts, count, maximum, 0.99),
            "min": 0.0 if count == 0 else minimum,
            "max": maximum,
        }


class CounterMetric:
    """A monotonically increasing counter."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def incr(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """A point-in-time value that may move in either direction."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += delta

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


#: Executor event kinds surfaced as ``events_<kind>`` counters.
OBSERVED_EVENT_KINDS = (
    "chain_started", "chain_finished", "chain_failed",
    "step_started", "step_finished", "step_failed",
    "step_retried", "step_timed_out", "breaker_opened",
)


class MetricsRegistry:
    """Named counters/gauges/histograms created lazily on first use."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, CounterMetric] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # handles
    # ------------------------------------------------------------------
    def counter(self, name: str) -> CounterMetric:
        with self._lock:
            metric = self._counters.get(name)
            if metric is None:
                metric = self._counters[name] = CounterMetric()
            return metric

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            metric = self._gauges.get(name)
            if metric is None:
                metric = self._gauges[name] = Gauge()
            return metric

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            metric = self._histograms.get(name)
            if metric is None:
                metric = self._histograms[name] = Histogram()
            return metric

    # ------------------------------------------------------------------
    # shorthands
    # ------------------------------------------------------------------
    def incr(self, name: str, amount: int = 1) -> None:
        self.counter(name).incr(amount)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, seconds: float) -> None:
        self.histogram(name).observe(seconds)

    # ------------------------------------------------------------------
    # executor listener protocol
    # ------------------------------------------------------------------
    def on_execution_event(self, event: Any) -> None:
        """Count one executor event (attach as a listener)."""
        kind = getattr(event, "kind", "")
        if kind in OBSERVED_EVENT_KINDS:
            self.incr(f"events_{kind}")

    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {name: metric.value
                         for name, metric in sorted(counters.items())},
            "gauges": {name: metric.value
                       for name, metric in sorted(gauges.items())},
            "histograms": {name: metric.summary()
                           for name, metric in sorted(histograms.items())},
        }

    def dump(self) -> dict[str, Any]:
        """Raw (lossless, JSON-safe) state for cross-process merging.

        Counters and gauges dump their values; histograms dump bucket
        counts (see :meth:`Histogram.dump`).  Feed a list of dumps —
        e.g. one per shard worker — to :func:`merge_metrics_dumps` for
        one fleet-wide snapshot.
        """
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {name: metric.value
                         for name, metric in sorted(counters.items())},
            "gauges": {name: metric.value
                       for name, metric in sorted(gauges.items())},
            "histograms": {name: metric.dump()
                           for name, metric in sorted(histograms.items())},
        }


def merge_metrics_dumps(dumps: list[dict[str, Any]]) -> dict[str, Any]:
    """Merge :meth:`MetricsRegistry.dump` outputs into one snapshot.

    Counters and gauges sum (every gauge in use — queue sizes, live
    sessions, open breakers — is a quantity that adds across shards);
    histograms merge at the bucket level, so the returned quantile
    estimates match a single registry that observed every event.  The
    output has :meth:`MetricsRegistry.snapshot` shape.
    """
    counters: dict[str, int] = {}
    gauges: dict[str, float] = {}
    histogram_dumps: dict[str, list[dict[str, Any]]] = {}
    for dump in dumps:
        for name, value in dump.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + value
        for name, value in dump.get("gauges", {}).items():
            gauges[name] = gauges.get(name, 0.0) + value
        for name, hist in dump.get("histograms", {}).items():
            histogram_dumps.setdefault(name, []).append(hist)
    return {
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauges.items())),
        "histograms": {name: Histogram.merged_summary(hists)
                       for name, hists in sorted(histogram_dumps.items())},
    }
