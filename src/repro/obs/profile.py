"""Lightweight per-stage profiling hooks.

The tracer already stamps wall/CPU/allocation figures on every span;
:class:`StageProfiler` is the standalone aggregation for callers who
want cumulative per-stage totals without keeping a full span log — the
pipeline accepts one via ``ChatGraph.set_profiler`` (a
:class:`~repro.core.stages.ProfilingMiddleware` then wraps each
observed stage of the stage graph in :meth:`StageProfiler.profile`).

Wall time uses :func:`time.perf_counter`, CPU time
:func:`time.process_time`; allocation deltas (``track_alloc=True``)
come from :mod:`tracemalloc` and are opt-in because tracing
allocations slows the interpreter noticeably.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator


@dataclass
class StageProfile:
    """Cumulative cost of one named stage."""

    name: str
    calls: int = 0
    wall_seconds: float = 0.0
    cpu_seconds: float = 0.0
    alloc_bytes: int = 0

    def to_dict(self) -> dict[str, float | int | str]:
        return {"name": self.name, "calls": self.calls,
                "wall_seconds": self.wall_seconds,
                "cpu_seconds": self.cpu_seconds,
                "alloc_bytes": self.alloc_bytes}


class StageProfiler:
    """Accumulates per-stage wall/CPU time (and optional allocations).

    Example::

        profiler = StageProfiler()
        with profiler.profile("retrieval"):
            ...
        print(profiler.render())
    """

    def __init__(self, track_alloc: bool = False) -> None:
        self.track_alloc = track_alloc
        self._lock = threading.Lock()
        self._stages: dict[str, StageProfile] = {}
        self._started_tracemalloc = False
        if track_alloc:
            import tracemalloc
            if not tracemalloc.is_tracing():
                tracemalloc.start()
                self._started_tracemalloc = True

    @contextmanager
    def profile(self, name: str) -> Iterator[None]:
        wall_start = time.perf_counter()
        cpu_start = time.process_time()
        alloc_start = self._traced_bytes() if self.track_alloc else 0
        try:
            yield
        finally:
            wall = time.perf_counter() - wall_start
            cpu = time.process_time() - cpu_start
            alloc = (self._traced_bytes() - alloc_start
                     if self.track_alloc else 0)
            with self._lock:
                stage = self._stages.get(name)
                if stage is None:
                    stage = self._stages[name] = StageProfile(name)
                stage.calls += 1
                stage.wall_seconds += wall
                stage.cpu_seconds += cpu
                stage.alloc_bytes += alloc

    @staticmethod
    def _traced_bytes() -> int:
        import tracemalloc
        return tracemalloc.get_traced_memory()[0]

    # ------------------------------------------------------------------
    def report(self) -> dict[str, dict[str, float | int | str]]:
        with self._lock:
            return {name: stage.to_dict()
                    for name, stage in sorted(self._stages.items())}

    def render(self) -> str:
        """Plain-text table, widest stage first by wall time."""
        with self._lock:
            stages = sorted(self._stages.values(),
                            key=lambda s: -s.wall_seconds)
        if not stages:
            return "(no stages profiled)"
        lines = [f"{'stage':<16} {'calls':>6} {'wall':>12} {'cpu':>12}"
                 + (f" {'alloc':>12}" if self.track_alloc else "")]
        for stage in stages:
            line = (f"{stage.name:<16} {stage.calls:>6} "
                    f"{stage.wall_seconds * 1000:>10.3f}ms "
                    f"{stage.cpu_seconds * 1000:>10.3f}ms")
            if self.track_alloc:
                line += f" {stage.alloc_bytes:>+11d}B"
            lines.append(line)
        return "\n".join(lines)

    def reset(self) -> None:
        with self._lock:
            self._stages.clear()

    def shutdown(self) -> None:
        """Stop tracemalloc if this profiler started it."""
        if self._started_tracemalloc:
            import tracemalloc
            tracemalloc.stop()
            self._started_tracemalloc = False
