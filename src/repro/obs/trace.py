"""Hierarchical tracing with deterministic span identity.

A :class:`Tracer` produces :class:`Span` trees — request -> pipeline
stage -> API step -> retry attempt — with monotonic-clock timings and
*deterministic* span IDs: every ID is a digest of ``(seed, parent_id,
name, child_index[, key])``, so a seeded workload produces the same
tree, span for span, run after run.  Wall-clock time never enters the
identity, which is what makes golden-trace regression tests possible.

Propagation is thread-local: ``tracer.span(...)`` nests under the
innermost span open *on the current thread*.  Crossing a thread
boundary (the :mod:`repro.serve` worker pool) is explicit — either pass
``parent=`` (a span or a span ID captured on the submitting thread) or
adopt a foreign span with :meth:`Tracer.activate`.  Spans from
different requests therefore can never interleave: each worker thread
owns its own stack.

Timings use :func:`time.perf_counter` (wall) and
:func:`time.process_time` (CPU); allocation deltas via
:mod:`tracemalloc` are opt-in (``profile_alloc=True``) because tracing
allocations costs real overhead.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import Counter
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

Clock = Callable[[], float]

#: Fields carrying run-dependent timing data; canonical exports drop
#: them (see :mod:`repro.obs.export`).
TIMING_FIELDS = ("start", "wall_seconds", "cpu_seconds", "alloc_bytes")


@dataclass
class Span:
    """One timed node of a trace tree."""

    span_id: str
    parent_id: str | None
    name: str
    #: Coarse role: ``request`` | ``op`` | ``pipeline`` | ``stage`` |
    #: ``chain`` | ``step`` | ``attempt`` | ``span`` (free-form).
    kind: str
    #: Structural position under the parent (0-based); roots use their
    #: occurrence index.  Identity and canonical ordering derive from
    #: this, never from timestamps.
    index: int
    start: float
    wall_seconds: float = 0.0
    cpu_seconds: float | None = None
    alloc_bytes: int | None = None
    status: str = "ok"
    error: str = ""
    attrs: dict[str, Any] = field(default_factory=dict)
    _children: int = field(default=0, repr=False, compare=False)

    def set(self, **attrs: Any) -> None:
        """Attach (deterministic!) attributes to the span."""
        self.attrs.update(attrs)

    def mark_error(self, message: str) -> None:
        self.status = "error"
        self.error = message

    def to_dict(self, canonical: bool = False) -> dict[str, Any]:
        """Plain-dict view; ``canonical`` drops run-dependent timings."""
        data: dict[str, Any] = {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "kind": self.kind,
            "index": self.index,
            "status": self.status,
            "attrs": dict(self.attrs),
        }
        if self.error:
            data["error"] = self.error
        if not canonical:
            data["start"] = self.start
            data["wall_seconds"] = self.wall_seconds
            if self.cpu_seconds is not None:
                data["cpu_seconds"] = self.cpu_seconds
            if self.alloc_bytes is not None:
                data["alloc_bytes"] = self.alloc_bytes
        return data


class NullSpan:
    """No-op stand-in so instrumented code needs no ``if tracer`` forks."""

    __slots__ = ()

    def set(self, **attrs: Any) -> None:
        pass

    def mark_error(self, message: str) -> None:
        pass


NULL_SPAN = NullSpan()

#: Sentinel distinguishing "no parent given, use the thread-local
#: current span" from an explicit ``parent=None`` (force a root span).
_CURRENT = object()


class Tracer:
    """Produces deterministic span trees; thread-safe.

    Example::

        tracer = Tracer(seed=0)
        with tracer.span("request:ask", kind="request", key="a1b2"):
            with tracer.span("stage:intent", kind="stage"):
                ...
        print(len(tracer.finished_spans()))
    """

    def __init__(self, seed: int = 0, max_spans: int = 100_000,
                 profile_cpu: bool = True, profile_alloc: bool = False,
                 clock: Clock = time.perf_counter,
                 cpu_clock: Clock = time.process_time) -> None:
        if max_spans < 1:
            raise ValueError("max_spans must be >= 1")
        self.seed = seed
        self.max_spans = max_spans
        self.profile_cpu = profile_cpu
        self.profile_alloc = profile_alloc
        self._clock = clock
        self._cpu_clock = cpu_clock
        self._lock = threading.Lock()
        self._local = threading.local()
        self._finished: list[Span] = []
        self._dropped = 0
        self._root_occurrences: Counter = Counter()
        self._started_tracemalloc = False
        if profile_alloc:
            import tracemalloc
            if not tracemalloc.is_tracing():
                tracemalloc.start()
                self._started_tracemalloc = True

    # ------------------------------------------------------------------
    # thread-local span stack
    # ------------------------------------------------------------------
    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current(self) -> Span | None:
        """Innermost span open on the calling thread (None outside)."""
        stack = self._stack()
        return stack[-1] if stack else None

    def current_id(self) -> str | None:
        span = self.current()
        return span.span_id if span is not None else None

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    def _next_index(self, parent: Span | None, key: str | None) -> int:
        with self._lock:
            if parent is not None:
                parent._children += 1
                return parent._children - 1
            occurrence_key = key if key is not None else ""
            self._root_occurrences[occurrence_key] += 1
            return self._root_occurrences[occurrence_key] - 1

    def _span_id(self, parent_id: str | None, name: str, index: int,
                 key: str | None) -> str:
        material = "\x1f".join((str(self.seed), parent_id or "", name,
                                str(index), key or ""))
        return hashlib.sha256(material.encode("utf-8")).hexdigest()[:16]

    # ------------------------------------------------------------------
    # span lifecycle
    # ------------------------------------------------------------------
    @contextmanager
    def span(self, name: str, kind: str = "span", key: str | None = None,
             parent: Any = _CURRENT, **attrs: Any) -> Iterator[Span]:
        """Open a child of the current (or given) span for the block.

        ``key`` feeds the identity of *root* spans so their IDs derive
        from request content instead of arrival order; ``parent``
        accepts a :class:`Span`, a span-ID string captured on another
        thread, or ``None`` to force a new root.
        """
        if parent is _CURRENT:
            parent = self.current()
        parent_span = parent if isinstance(parent, Span) else None
        parent_id = (parent_span.span_id if parent_span is not None
                     else parent if isinstance(parent, str) else None)
        index = self._next_index(parent_span, key)
        span = Span(
            span_id=self._span_id(parent_id, name, index, key),
            parent_id=parent_id,
            name=name,
            kind=kind,
            index=index,
            start=self._clock(),
            attrs=dict(attrs),
        )
        cpu_start = self._cpu_clock() if self.profile_cpu else 0.0
        alloc_start = self._traced_bytes() if self.profile_alloc else 0
        stack = self._stack()
        stack.append(span)
        try:
            yield span
        except BaseException as exc:
            if span.status == "ok":
                span.mark_error(f"{type(exc).__name__}: {exc}")
            raise
        finally:
            stack.pop()
            span.wall_seconds = self._clock() - span.start
            if self.profile_cpu:
                span.cpu_seconds = self._cpu_clock() - cpu_start
            if self.profile_alloc:
                span.alloc_bytes = self._traced_bytes() - alloc_start
            self._record(span)

    @contextmanager
    def activate(self, span: Span) -> Iterator[Span]:
        """Adopt an open span on this thread without owning its end.

        Lets a worker thread nest new spans under a span started
        elsewhere; the span is *not* finished when the block exits.
        """
        stack = self._stack()
        stack.append(span)
        try:
            yield span
        finally:
            stack.pop()

    def _record(self, span: Span) -> None:
        with self._lock:
            if len(self._finished) >= self.max_spans:
                self._dropped += 1
                return
            self._finished.append(span)

    @staticmethod
    def _traced_bytes() -> int:
        import tracemalloc
        return tracemalloc.get_traced_memory()[0]

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def finished_spans(self) -> tuple[Span, ...]:
        """Snapshot of completed spans (in completion order)."""
        with self._lock:
            return tuple(self._finished)

    def request_spans(self, root_id: str) -> tuple[Span, ...]:
        """All finished spans of the tree rooted at ``root_id``."""
        spans = self.finished_spans()
        members = {root_id}
        grew = True
        while grew:
            grew = False
            for span in spans:
                if span.span_id not in members and \
                        span.parent_id in members:
                    members.add(span.span_id)
                    grew = True
        return tuple(s for s in spans if s.span_id in members)

    def clear(self) -> None:
        with self._lock:
            self._finished.clear()
            self._dropped = 0
            self._root_occurrences.clear()

    def stats(self) -> dict[str, Any]:
        with self._lock:
            kinds = Counter(span.kind for span in self._finished)
            return {
                "spans": len(self._finished),
                "dropped": self._dropped,
                "max_spans": self.max_spans,
                "by_kind": dict(sorted(kinds.items())),
            }

    def shutdown(self) -> None:
        """Release opt-in profiling state (stops owned tracemalloc)."""
        if self._started_tracemalloc:
            import tracemalloc
            tracemalloc.stop()
            self._started_tracemalloc = False
