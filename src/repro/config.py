"""Configuration objects for ChatGraph (the parameters of paper Fig. 3).

The paper's configuration screen exposes two groups of parameters:

* framework parameters — for the ANN search (``tau``, ``ef_search``,
  ``top_k_apis``, ``epsilon``), the graph sequentializer (``path_length``,
  ``multi_level``), and the finetuning module (``alpha``, ``rollouts``,
  ``epochs``, ``learning_rate``);
* LLM parameters — model preset name, ``temperature``, ``max_chain_length``,
  ``beam_width``, and the random ``seed``.

:class:`ChatGraphConfig` groups both, validates every field, and is the
single object threaded through :class:`repro.core.chatgraph.ChatGraph`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any

from .errors import ConfigError

#: Model presets accepted by :attr:`LLMConfig.model`.  They mirror the three
#: LLMs the paper integrates (ChatGLM, MOSS, Vicuna); each preset selects a
#: different capacity/temperature for the simulated backbone.
MODEL_PRESETS = ("chatglm-sim", "moss-sim", "vicuna-sim")


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigError(message)


@dataclass(frozen=True)
class RetrievalConfig:
    """Parameters of the API retrieval module (embedding + ANN search)."""

    #: Occlusion parameter of the tau-MG index (Def. 3).  ``0.0`` degenerates
    #: to an MRNG.
    tau: float = 0.05
    #: Beam width used during greedy routing at query time.
    ef_search: int = 32
    #: Number of candidate APIs returned to the LLM.
    top_k_apis: int = 8
    #: Approximation slack of Def. 2 used by the evaluation harness.
    epsilon: float = 0.1
    #: Dimensionality of the hashed text-embedding space.
    embedding_dim: int = 128

    def __post_init__(self) -> None:
        _require(self.tau >= 0.0, "tau must be >= 0")
        _require(self.ef_search >= 1, "ef_search must be >= 1")
        _require(self.top_k_apis >= 1, "top_k_apis must be >= 1")
        _require(self.epsilon >= 0.0, "epsilon must be >= 0")
        _require(self.embedding_dim >= 8, "embedding_dim must be >= 8")


@dataclass(frozen=True)
class SequencerConfig:
    """Parameters of the graph sequentializer."""

    #: Maximum path length ``l`` of the length-constrained path cover.
    path_length: int = 2
    #: Whether to also feed motif super-graph sequences to the model.
    multi_level: bool = True
    #: Cap on the number of paths emitted per graph (guards the 2^l blowup).
    max_paths: int = 4096
    #: Minimum motif size considered when building the super-graph.
    min_motif_size: int = 3

    def __post_init__(self) -> None:
        _require(self.path_length >= 1, "path_length must be >= 1")
        _require(self.max_paths >= 1, "max_paths must be >= 1")
        _require(self.min_motif_size >= 2, "min_motif_size must be >= 2")


@dataclass(frozen=True)
class FinetuneConfig:
    """Parameters of the API chain-oriented finetuning module."""

    #: Weight ``alpha`` balancing the GED term and the one-to-one matching
    #: regularizer in the node matching-based loss (Def. 1).
    alpha: float = 1.0
    #: Number of random rollouts ``r`` in search-based prediction.
    rollouts: int = 4
    #: Training epochs.
    epochs: int = 5
    #: Learning rate of the chain model.
    learning_rate: float = 0.5
    #: L2 regularization strength of the chain model.
    l2: float = 1e-3

    def __post_init__(self) -> None:
        _require(self.alpha >= 0.0, "alpha must be >= 0")
        _require(self.rollouts >= 0, "rollouts must be >= 0")
        _require(self.epochs >= 1, "epochs must be >= 1")
        _require(self.learning_rate > 0.0, "learning_rate must be > 0")
        _require(self.l2 >= 0.0, "l2 must be >= 0")


@dataclass(frozen=True)
class LLMConfig:
    """Parameters of the (simulated) LLM backbone."""

    #: Which preset backbone to use; see :data:`MODEL_PRESETS`.
    model: str = "chatglm-sim"
    #: Softmax temperature applied during sampling-based decoding.
    temperature: float = 1.0
    #: Hard cap on generated API-chain length.
    max_chain_length: int = 8
    #: Beam width for beam-search decoding (1 = greedy).
    beam_width: int = 1
    #: Seed for every stochastic component (rollouts, sampling, init).
    seed: int = 0

    def __post_init__(self) -> None:
        _require(self.model in MODEL_PRESETS,
                 f"model must be one of {MODEL_PRESETS}, got {self.model!r}")
        _require(self.temperature > 0.0, "temperature must be > 0")
        _require(self.max_chain_length >= 1, "max_chain_length must be >= 1")
        _require(self.beam_width >= 1, "beam_width must be >= 1")


@dataclass(frozen=True)
class ObsConfig:
    """Parameters of the :mod:`repro.obs` observability layer.

    Tracing is off by default (span bookkeeping is cheap but not free);
    the serve runtime always keeps a :class:`repro.obs.MetricsRegistry`
    because counters cost next to nothing.
    """

    #: Master switch for hierarchical request tracing.
    enable_tracing: bool = False
    #: Cap on retained finished spans; further spans are counted as
    #: dropped instead of growing memory without bound.
    max_spans: int = 100_000
    #: Record per-span CPU time (:func:`time.process_time`).
    profile_cpu: bool = True
    #: Record per-span allocation deltas via :mod:`tracemalloc`
    #: (opt-in: tracing allocations slows the interpreter).
    profile_alloc: bool = False

    def __post_init__(self) -> None:
        _require(self.max_spans >= 1, "max_spans must be >= 1")


@dataclass(frozen=True)
class ServeConfig:
    """Parameters of the :mod:`repro.serve` service runtime.

    Standalone on purpose: serving wraps a finished
    :class:`ChatGraphConfig`-driven system, so the two configs compose
    (``ChatGraphServer(chatgraph, ServeConfig(...))``) instead of nesting.
    """

    #: Worker threads consuming the admission queue.
    workers: int = 4
    #: Bounded admission-queue depth; a full queue rejects with
    #: :class:`~repro.errors.BackpressureError` instead of blocking.
    queue_depth: int = 64
    #: Seconds a session may stay idle before TTL eviction.
    session_ttl_seconds: float = 600.0
    #: Hard cap on live sessions (least-recently-used wins eviction).
    max_sessions: int = 256
    #: Master switch for the content-addressed pipeline caches.
    enable_caches: bool = True
    #: LRU capacity for prompt-embedding vectors.
    embedding_cache_size: int = 2048
    #: LRU capacity for retrieval results (text + routing keyed).
    retrieval_cache_size: int = 1024
    #: LRU capacity for graph sequentializations (fingerprint keyed).
    sequence_cache_size: int = 256
    #: Token-bucket burst capacity per client; ``0`` disables limiting.
    rate_limit_capacity: int = 0
    #: Token-bucket refill rate (tokens per second per client).
    rate_limit_refill_per_second: float = 0.0
    #: Seconds an untouched, fully-refilled client bucket may idle
    #: before the rate limiter evicts it (bounds per-client state).
    rate_limit_idle_seconds: float = 600.0
    #: Wall-clock limit per chain-step attempt; ``0`` disables step
    #: timeouts.
    step_timeout_seconds: float = 0.0
    #: Extra attempts after a failed/timed-out chain step.
    step_max_retries: int = 0
    #: Base backoff before the first retry (doubles per retry, with
    #: deterministic seeded jitter).
    retry_backoff_seconds: float = 0.02
    #: Master switch for the shared per-API circuit breakers.
    enable_breakers: bool = True
    #: Failures in the sliding window needed to trip a breaker.
    breaker_failure_threshold: int = 5
    #: Windowed failure rate (0..1] needed to trip a breaker.
    breaker_failure_rate: float = 0.5
    #: Sliding-window length (recent calls) per API breaker.
    breaker_window: int = 20
    #: Seconds an open breaker waits before a half-open probe.
    breaker_cooldown_seconds: float = 30.0
    #: Emulated LLM-backend round-trip added to each generate call.  The
    #: offline backbone is CPU-only; real deployments call a remote LLM,
    #: so benchmarks use this knob to model the I/O-bound regime where
    #: worker concurrency pays off.
    backend_latency_seconds: float = 0.0
    #: Maximum requests coalesced into one micro-batch; ``0`` disables
    #: micro-batching (every request is served individually).  Only
    #: stateless ``propose``/``ask`` requests batch; session-bound and
    #: ``execute`` requests always bypass the batcher.
    microbatch_size: int = 0
    #: How long a worker holding a partial batch waits for more
    #: requests before flushing it.  The knob trades tail latency
    #: (first request waits up to this long) against batching
    #: efficiency; ``0`` flushes immediately with whatever is queued.
    microbatch_deadline_seconds: float = 0.005
    #: Overlap the per-request tail of a micro-batch (chain execution
    #: for ``ask``, stats, resolution) with decode for the *next*
    #: micro-batch: the worker hands finished pipeline results to a
    #: dedicated finisher thread and immediately returns to collecting.
    #: Off by default — it adds a thread and reorders nothing but is
    #: only worth it for execution-heavy batched workloads.
    microbatch_overlap_execute: bool = False
    #: Root directory of a durable :class:`repro.store.GraphCatalog`;
    #: empty disables the store (requests then must carry inline
    #: graphs).  When set, requests may name catalog graphs via
    #: ``ServeRequest.graph_name``.
    store_root: str = ""
    #: Auto-snapshot threshold forwarded to the catalog: roll the epoch
    #: once an edit log holds this many records (``0`` = only explicit
    #: snapshots/compactions).
    store_snapshot_every: int = 0
    #: Pre-populate the pipeline caches at :meth:`start` from the
    #: catalog's named graphs (each graph's suggested questions run
    #: through ``propose`` once, off the serving path).  The number of
    #: cache entries created lands in the ``cache_warmed_entries``
    #: counter.
    warm_caches: bool = False
    #: Shard worker *processes* behind a
    #: :class:`repro.shard.ShardedChatGraphServer`; ``0`` means the
    #: config describes a plain in-process server.  In sharded mode
    #: ``workers`` is the thread count *per shard*.
    shards: int = 0
    #: Catalog graph names replicated read-only across
    #: ``shard_replicas`` shards with least-loaded routing (hot-graph
    #: replicas); other keys route to their single ring owner.
    shard_hot_graphs: tuple[str, ...] = ()
    #: Number of replica shards serving each hot graph.
    shard_replicas: int = 2
    #: Interval between shard-worker heartbeat frames.
    shard_heartbeat_seconds: float = 0.5
    #: Silence longer than this marks a shard dead (its breaker trips,
    #: in-flight work fails over, and the shard is restarted).
    shard_heartbeat_timeout_seconds: float = 10.0
    #: Restart dead shard processes in the background (the breaker
    #: resets once the replacement says hello).
    shard_restart: bool = True
    #: Scatter batches a coordinator may keep in flight per shard.
    shard_inflight: int = 2
    #: Requests coalesced into one scatter frame (transport batching;
    #: the shard's own ``microbatch_size`` governs *execution*
    #: batching).  ``0`` sends one request per frame.
    shard_scatter_batch: int = 8
    #: How long a per-shard dispatcher holds a partial scatter batch
    #: waiting for company before flushing it.
    shard_scatter_deadline_seconds: float = 0.002
    #: Ceiling on one live ring change (add/remove shard): the quiesce
    #: of outstanding work plus the session adopt/evict/warm round
    #: trips must finish within this budget or the migration aborts
    #: with the old ring intact.
    shard_migration_timeout_seconds: float = 30.0
    #: Base seed folded into every request's deterministic per-request
    #: seed (content-keyed, so results are order-independent).
    seed: int = 0
    #: Observability settings (tracing, span caps, profiling hooks).
    obs: ObsConfig = field(default_factory=ObsConfig)

    def __post_init__(self) -> None:
        _require(self.workers >= 1, "workers must be >= 1")
        _require(self.queue_depth >= 1, "queue_depth must be >= 1")
        _require(self.session_ttl_seconds > 0.0,
                 "session_ttl_seconds must be > 0")
        _require(self.max_sessions >= 1, "max_sessions must be >= 1")
        _require(self.embedding_cache_size >= 1,
                 "embedding_cache_size must be >= 1")
        _require(self.retrieval_cache_size >= 1,
                 "retrieval_cache_size must be >= 1")
        _require(self.sequence_cache_size >= 1,
                 "sequence_cache_size must be >= 1")
        _require(self.rate_limit_capacity >= 0,
                 "rate_limit_capacity must be >= 0")
        _require(self.rate_limit_refill_per_second >= 0.0,
                 "rate_limit_refill_per_second must be >= 0")
        _require(self.rate_limit_idle_seconds > 0.0,
                 "rate_limit_idle_seconds must be > 0")
        _require(self.step_timeout_seconds >= 0.0,
                 "step_timeout_seconds must be >= 0")
        _require(self.step_max_retries >= 0,
                 "step_max_retries must be >= 0")
        _require(self.retry_backoff_seconds >= 0.0,
                 "retry_backoff_seconds must be >= 0")
        _require(self.breaker_failure_threshold >= 1,
                 "breaker_failure_threshold must be >= 1")
        _require(0.0 < self.breaker_failure_rate <= 1.0,
                 "breaker_failure_rate must be in (0, 1]")
        _require(self.breaker_window >= self.breaker_failure_threshold,
                 "breaker_window must be >= breaker_failure_threshold")
        _require(self.breaker_cooldown_seconds > 0.0,
                 "breaker_cooldown_seconds must be > 0")
        _require(self.backend_latency_seconds >= 0.0,
                 "backend_latency_seconds must be >= 0")
        _require(self.microbatch_size >= 0,
                 "microbatch_size must be >= 0")
        _require(self.microbatch_deadline_seconds >= 0.0,
                 "microbatch_deadline_seconds must be >= 0")
        _require(self.store_snapshot_every >= 0,
                 "store_snapshot_every must be >= 0")
        _require(self.shards >= 0, "shards must be >= 0")
        _require(self.shard_replicas >= 1, "shard_replicas must be >= 1")
        _require(self.shard_heartbeat_seconds > 0.0,
                 "shard_heartbeat_seconds must be > 0")
        _require(self.shard_heartbeat_timeout_seconds
                 > self.shard_heartbeat_seconds,
                 "shard_heartbeat_timeout_seconds must exceed "
                 "shard_heartbeat_seconds")
        _require(self.shard_inflight >= 1, "shard_inflight must be >= 1")
        _require(self.shard_scatter_batch >= 0,
                 "shard_scatter_batch must be >= 0")
        _require(self.shard_scatter_deadline_seconds >= 0.0,
                 "shard_scatter_deadline_seconds must be >= 0")
        _require(self.shard_migration_timeout_seconds > 0.0,
                 "shard_migration_timeout_seconds must be > 0")


@dataclass(frozen=True)
class ChatGraphConfig:
    """Top-level configuration for a :class:`~repro.core.chatgraph.ChatGraph`.

    Example::

        config = ChatGraphConfig.default().with_updates(
            retrieval=RetrievalConfig(top_k_apis=4),
        )
    """

    retrieval: RetrievalConfig = field(default_factory=RetrievalConfig)
    sequencer: SequencerConfig = field(default_factory=SequencerConfig)
    finetune: FinetuneConfig = field(default_factory=FinetuneConfig)
    llm: LLMConfig = field(default_factory=LLMConfig)

    @classmethod
    def default(cls) -> "ChatGraphConfig":
        """Return the configuration with all paper-default parameters."""
        return cls()

    def with_updates(self, **sections: Any) -> "ChatGraphConfig":
        """Return a copy with whole sections replaced.

        ``sections`` maps section names (``retrieval``, ``sequencer``,
        ``finetune``, ``llm``) to replacement config objects.
        """
        known = {f.name for f in dataclasses.fields(self)}
        unknown = set(sections) - known
        if unknown:
            raise ConfigError(f"unknown config sections: {sorted(unknown)}")
        return dataclasses.replace(self, **sections)

    def to_dict(self) -> dict[str, dict[str, Any]]:
        """Serialize to a plain nested dictionary (for display / logging)."""
        return {
            name: dataclasses.asdict(getattr(self, name))
            for name in ("retrieval", "sequencer", "finetune", "llm")
        }

    @classmethod
    def from_dict(cls, data: dict[str, dict[str, Any]]) -> "ChatGraphConfig":
        """Build a config from :meth:`to_dict` output, validating each field."""
        kwargs: dict[str, Any] = {}
        section_types = {
            "retrieval": RetrievalConfig,
            "sequencer": SequencerConfig,
            "finetune": FinetuneConfig,
            "llm": LLMConfig,
        }
        unknown = set(data) - set(section_types)
        if unknown:
            raise ConfigError(f"unknown config sections: {sorted(unknown)}")
        for name, section_cls in section_types.items():
            if name in data:
                try:
                    kwargs[name] = section_cls(**data[name])
                except TypeError as exc:
                    raise ConfigError(f"bad fields for {name}: {exc}") from exc
        return cls(**kwargs)
