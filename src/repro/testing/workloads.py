"""Canonical seeded workloads shared by tests, benches, and loadgen.

One module defines every fixed prompt pool and demo graph the harnesses
replay, so they cannot drift apart:

* the golden-trace regression tests (``tests/test_golden_traces.py``),
  the ``python -m repro.cli trace --demo`` smoke run, and the CI
  ``trace-smoke`` job replay :data:`CANONICAL_PROMPTS` over
  :func:`canonical_graph`;
* the serving benchmark (:mod:`repro.serve.bench`) and the traffic
  simulator (:mod:`repro.loadgen`) draw their request text from
  :data:`PROMPTS` and their graphs from :func:`bench_graphs` /
  :func:`demo_graph_pool` — one seeded source for bench and soak
  traffic.
"""

from __future__ import annotations

from typing import Any

from ..graphs.generators import knowledge_graph, social_network
from ..graphs.graph import Graph

#: The two canonical prompts of the golden-trace suite.  Each entry is
#: ``(slug, prompt text, graph builder kwargs-free thunk)``.
CANONICAL_PROMPTS: tuple[tuple[str, str, str], ...] = (
    ("social-report", "write a brief report for G", "social"),
    ("kg-clean", "clean up the knowledge graph", "kg"),
)

#: The shared prompt mix of the serving benchmark and every loadgen
#: persona (cycled / sampled over the workload).
PROMPTS: tuple[str, ...] = (
    "write a brief report for G",
    "find the communities of this network",
    "who are the influencers in G",
    "summarize the uploaded graph",
    "how dense is this graph",
    "clean the knowledge graph",
)


def canonical_graph(kind: str) -> Any:
    """The fixed seeded graph behind one canonical prompt."""
    if kind == "social":
        return social_network(30, 3, seed=7)
    if kind == "kg":
        return knowledge_graph(25, 80, seed=7)
    raise ValueError(f"unknown canonical graph kind {kind!r}")


def canonical_workload() -> list[tuple[str, str, Any]]:
    """``(slug, text, graph)`` triples of the canonical trace workload."""
    return [(slug, text, canonical_graph(kind))
            for slug, text, kind in CANONICAL_PROMPTS]


def bench_graphs(n_graphs: int = 4) -> list[Graph]:
    """The serving benchmark's fixed demo graphs (half social, half KG).

    Byte-for-byte the graphs ``repro.serve.bench.build_workload`` has
    cycled since PR 1, so benchmark numbers stay comparable across the
    move onto :mod:`repro.loadgen`.
    """
    graphs: list[Graph] = []
    for index in range(max(1, n_graphs // 2)):
        graphs.append(social_network(30 + 4 * index, 3, seed=index))
    for index in range(max(1, n_graphs - len(graphs))):
        graphs.append(knowledge_graph(24 + 4 * index, 80, seed=index))
    return graphs


def demo_graph_pool() -> dict[str, Graph]:
    """Named, seeded demo graphs the loadgen personas draw from.

    Keys are stable identifiers (they appear verbatim in serialized
    request schedules); values are freshly built each call.  Execution
    never mutates an uploaded graph (edit APIs copy-then-replace), so
    sharing one pool across a soak run is safe.
    """
    return {
        "social-s": social_network(24, 3, seed=11),
        "social-m": social_network(40, 4, seed=12),
        "social-l": social_network(72, 6, seed=13),
        "kg-s": knowledge_graph(20, 60, seed=11),
        "kg-m": knowledge_graph(32, 110, seed=12),
        "kg-l": knowledge_graph(56, 200, seed=13),
    }
