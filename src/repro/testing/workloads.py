"""Canonical seeded workloads shared by tests, golden traces, and CLI.

The golden-trace regression tests (``tests/test_golden_traces.py``),
the ``python -m repro.cli trace --demo`` smoke run, and the CI
``trace-smoke`` job all replay the same two prompts over the same
seeded graphs — one definition here keeps them from drifting apart.
"""

from __future__ import annotations

from typing import Any

from ..graphs.generators import knowledge_graph, social_network

#: The two canonical prompts of the golden-trace suite.  Each entry is
#: ``(slug, prompt text, graph builder kwargs-free thunk)``.
CANONICAL_PROMPTS: tuple[tuple[str, str, str], ...] = (
    ("social-report", "write a brief report for G", "social"),
    ("kg-clean", "clean up the knowledge graph", "kg"),
)


def canonical_graph(kind: str) -> Any:
    """The fixed seeded graph behind one canonical prompt."""
    if kind == "social":
        return social_network(30, 3, seed=7)
    if kind == "kg":
        return knowledge_graph(25, 80, seed=7)
    raise ValueError(f"unknown canonical graph kind {kind!r}")


def canonical_workload() -> list[tuple[str, str, Any]]:
    """``(slug, text, graph)`` triples of the canonical trace workload."""
    return [(slug, text, canonical_graph(kind))
            for slug, text, kind in CANONICAL_PROMPTS]
