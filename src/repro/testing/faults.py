"""Deterministic fault injection for API registries.

The harness wraps :class:`~repro.apis.registry.APISpec` callables with
a proxy that injects failures and delays *before* delegating to the
real API:

* ``fail_times=N`` — the first N calls of the API raise
  :class:`~repro.errors.FaultInjectionError` (count-based, so the
  total number of injected failures is deterministic even under a
  multi-worker server);
* ``failure_rate=p`` — subsequent calls fail with probability ``p``
  drawn from a per-API seeded RNG (deterministic for single-threaded
  workloads; under concurrency the *sequence* of draws is fixed but
  their assignment to calls follows arrival order);
* ``delay_seconds`` — injected latency per affected call (``hang=True``
  makes the delay apply *before* the failure check, which is how a
  "hung" step that must be cut off by its timeout is modelled).

Example::

    injector = FaultInjector(seed=7)
    shaky = injector.wrap_registry(default_registry(), {
        "count_nodes": FaultSpec(fail_times=2),
        "detect_communities": FaultSpec(delay_seconds=0.5, hang=True),
    })
    executor = ChainExecutor(shaky, policy=policy)
"""

from __future__ import annotations

import dataclasses
import random
import threading
import time
from collections import Counter
from dataclasses import dataclass
from typing import Any, Callable

from ..apis.registry import APIRegistry, APISpec
from ..errors import ChatGraphError, FaultInjectionError

Sleep = Callable[[float], None]


@dataclass(frozen=True)
class FaultSpec:
    """Fault profile for one API."""

    #: Deterministically fail the first N calls.
    fail_times: int = 0
    #: After ``fail_times``, fail each call with this probability.
    failure_rate: float = 0.0
    #: Injected latency added to each affected call.
    delay_seconds: float = 0.0
    #: Apply the delay to the first N calls only (None = every call).
    delay_times: int | None = None
    #: With ``hang=True`` the delay runs before the failure check and
    #: before the real API — modelling a stalled backend that a step
    #: timeout must cut off.
    hang: bool = False
    #: Message carried by the injected error.
    message: str = "injected fault"

    def __post_init__(self) -> None:
        if self.fail_times < 0:
            raise ChatGraphError("fail_times must be >= 0")
        if not 0.0 <= self.failure_rate <= 1.0:
            raise ChatGraphError("failure_rate must be in [0, 1]")
        if self.delay_seconds < 0:
            raise ChatGraphError("delay_seconds must be >= 0")
        if self.delay_times is not None and self.delay_times < 0:
            raise ChatGraphError("delay_times must be >= 0 or None")


class FaultInjector:
    """Wraps API specs to inject seeded faults; tracks what it did."""

    def __init__(self, seed: int = 0, sleep: Sleep = time.sleep) -> None:
        self.seed = seed
        self._sleep = sleep
        self._lock = threading.Lock()
        self._calls: Counter = Counter()
        self._injected_failures: Counter = Counter()
        self._injected_delays: Counter = Counter()
        self._rngs: dict[str, random.Random] = {}

    # ------------------------------------------------------------------
    def _rng(self, api_name: str) -> random.Random:
        # caller holds the lock
        rng = self._rngs.get(api_name)
        if rng is None:
            rng = random.Random(f"{self.seed}\x1f{api_name}")
            self._rngs[api_name] = rng
        return rng

    def _tick(self, api_name: str, fault: FaultSpec
              ) -> tuple[int, bool, bool]:
        """Account one call: (call_index, inject_failure, inject_delay)."""
        with self._lock:
            call_index = self._calls[api_name]
            self._calls[api_name] += 1
            draw = self._rng(api_name).random()
            fail = call_index < fault.fail_times or (
                fault.failure_rate > 0.0 and draw < fault.failure_rate)
            delay = fault.delay_seconds > 0.0 and (
                fault.delay_times is None or call_index < fault.delay_times)
            if fail:
                self._injected_failures[api_name] += 1
            if delay:
                self._injected_delays[api_name] += 1
            return call_index, fail, delay

    # ------------------------------------------------------------------
    def wrap_spec(self, spec: APISpec, fault: FaultSpec) -> APISpec:
        """A copy of ``spec`` whose callable injects ``fault`` first."""
        inner = spec.func
        api_name = spec.name

        def faulty(context: Any, **kwargs: Any) -> Any:
            call_index, fail, delay = self._tick(api_name, fault)
            if delay and fault.hang:
                self._sleep(fault.delay_seconds)
            if fail:
                raise FaultInjectionError(api_name, call_index,
                                          fault.message)
            if delay and not fault.hang:
                self._sleep(fault.delay_seconds)
            return inner(context, **kwargs)

        return dataclasses.replace(spec, func=faulty)

    def wrap_registry(self, registry: APIRegistry,
                      faults: dict[str, FaultSpec]) -> APIRegistry:
        """A new registry with the named specs wrapped.

        Unlisted APIs are registered untouched, so retrieval (which
        embeds names and descriptions) behaves identically.
        """
        unknown = set(faults) - set(registry.names())
        if unknown:
            raise ChatGraphError(
                f"cannot inject faults into unknown APIs {sorted(unknown)}")
        wrapped = APIRegistry()
        for spec in registry:
            if spec.name in faults:
                wrapped.register(self.wrap_spec(spec, faults[spec.name]))
            else:
                wrapped.register(spec)
        return wrapped

    # ------------------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """What the injector actually did, per API."""
        with self._lock:
            return {
                "calls": dict(self._calls),
                "injected_failures": dict(self._injected_failures),
                "injected_delays": dict(self._injected_delays),
            }

    def reset(self) -> None:
        with self._lock:
            self._calls.clear()
            self._injected_failures.clear()
            self._injected_delays.clear()
            self._rngs.clear()


def chaos_registry(registry: APIRegistry, seed: int = 0,
                   n_faulty: int = 5, fail_times: int = 2,
                   injector: FaultInjector | None = None
                   ) -> tuple[APIRegistry, FaultInjector, dict[str, FaultSpec]]:
    """Seeded chaos profile: fault a deterministic sample of APIs.

    Each sampled API fails its first ``fail_times`` calls and then
    recovers — the shape the retry layer must absorb.  Returns the
    wrapped registry, the injector (for its stats) and the fault map.
    """
    injector = injector or FaultInjector(seed=seed)
    rng = random.Random(f"chaos\x1f{seed}")
    names = sorted(registry.names())
    sample = rng.sample(names, min(n_faulty, len(names)))
    faults = {name: FaultSpec(fail_times=fail_times,
                              message="chaos fault")
              for name in sorted(sample)}
    return injector.wrap_registry(registry, faults), injector, faults
