"""repro.testing — offline test harnesses for the robustness layer.

* :mod:`faults` — deterministic fault injection: wrap registry API
  specs so they raise seeded exceptions or sleep injected delays,
  making timeouts, retries, breakers and degradation testable without
  a flaky backend.
"""

from .faults import FaultInjector, FaultSpec, chaos_registry

__all__ = ["FaultInjector", "FaultSpec", "chaos_registry"]
