"""repro.testing — offline test harnesses for robustness and tracing.

* :mod:`faults` — deterministic fault injection: wrap registry API
  specs so they raise seeded exceptions or sleep injected delays,
  making timeouts, retries, breakers and degradation testable without
  a flaky backend.
* :mod:`workloads` — the canonical seeded prompts/graphs shared by the
  golden-trace regression tests and the ``trace --demo`` CLI.
"""

from .faults import FaultInjector, FaultSpec, chaos_registry
from .workloads import CANONICAL_PROMPTS, canonical_graph, canonical_workload

__all__ = [
    "CANONICAL_PROMPTS",
    "FaultInjector",
    "FaultSpec",
    "canonical_graph",
    "canonical_workload",
    "chaos_registry",
]
