"""Graph sequentializer (paper Sec. II-B).

LLMs consume sequences, so a prompt graph must be linearized.  This
package implements the paper's two-level scheme:

* :mod:`path_cover` — the length-constrained path cover: for each node
  ``u``, paths starting at ``u`` of length <= ``l`` that cover the
  subgraph within ``l`` hops of ``u`` (at most O(|G| * 2^l) paths).
* :mod:`supergraph` — motif-based coarsening: motifs (cliques, triangles)
  contract to super-nodes, and the coarse graph is sequentialized too,
  exposing multi-level structure (communities, protein-like tertiary
  structure) to the model.
* :mod:`serializer` — turns paths into token sequences and aggregate
  features consumable by :mod:`repro.llm`.
"""

from .path_cover import CoverStats, length_constrained_path_cover
from .supergraph import SuperGraph, build_supergraph
from .serializer import GraphSequences, GraphSequentializer

__all__ = [
    "CoverStats",
    "length_constrained_path_cover",
    "SuperGraph",
    "build_supergraph",
    "GraphSequences",
    "GraphSequentializer",
]
