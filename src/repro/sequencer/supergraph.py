"""Motif-based super-graph coarsening (paper Sec. II-B, RUM-style).

Graphs often have multi-level structure (protein tertiary structure,
social communities).  Following the paper, we compute a super-graph
whose super-nodes are motifs of ``G``: maximal cliques of size >=
``min_motif_size`` are contracted first (greedily, largest first,
non-overlapping), then small *rings* (the motif family of molecules,
which contain no triangles), and remaining nodes become singleton
super-nodes.  Two super-nodes are adjacent iff some original edge
crosses between their member sets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SequencerError
from ..graphs.graph import DiGraph, Graph, Node
from ..algorithms.motifs import find_cliques
from .motifs import find_rings


@dataclass
class SuperGraph:
    """Result of coarsening: the coarse graph plus the member map."""

    #: The coarse graph; nodes are integer super-node ids with attributes
    #: ``motif`` ("clique", "triangle" or "singleton") and ``size``.
    graph: Graph
    #: Map super-node id -> frozenset of original nodes.
    members: dict[int, frozenset[Node]] = field(default_factory=dict)

    def supernode_of(self, node: Node) -> int:
        """Super-node id containing the original ``node``."""
        for sid, member_set in self.members.items():
            if node in member_set:
                return sid
        raise SequencerError(f"node {node!r} not in any super-node")

    @property
    def compression_ratio(self) -> float:
        """Original node count divided by super-node count (>= 1.0)."""
        n_super = self.graph.number_of_nodes()
        if n_super == 0:
            return 1.0
        n_original = sum(len(m) for m in self.members.values())
        return n_original / n_super


def build_supergraph(graph: Graph, min_motif_size: int = 3) -> SuperGraph:
    """Coarsen ``graph`` into a motif super-graph.

    Directed graphs are coarsened on their undirected skeleton (motifs
    ignore direction) but the super-graph keeps the original arcs.
    """
    if min_motif_size < 2:
        raise SequencerError("min_motif_size must be >= 2")
    skeleton = graph.to_undirected() if isinstance(graph, DiGraph) else graph

    assigned: set[Node] = set()
    groups: list[tuple[str, frozenset[Node]]] = []
    # full deterministic order: Bron-Kerbosch enumerates over hash-ordered
    # sets, so a len-only sort would leave same-size ties in hash order
    # and the greedy contraction below would differ run to run
    cliques = sorted(find_cliques(skeleton),
                     key=lambda c: (-len(c), sorted(map(repr, c))))
    for clique in cliques:
        if len(clique) < max(min_motif_size, 3):
            continue
        free = clique - assigned
        if len(free) >= max(min_motif_size, 3):
            label = "triangle" if len(free) == 3 else "clique"
            groups.append((label, frozenset(free)))
            assigned |= free
    # rings (molecule-style motifs): contract cycles of 4+ nodes whose
    # members are still free; triangles were handled as cliques above
    for ring in find_rings(skeleton, max_size=8):
        if len(ring) < max(min_motif_size, 4):
            continue
        if ring & assigned:
            continue
        groups.append(("ring", ring))
        assigned |= ring
    for node in skeleton.nodes():
        if node not in assigned:
            groups.append(("singleton", frozenset((node,))))
            assigned.add(node)

    members = {sid: member_set for sid, (__, member_set)
               in enumerate(groups)}
    node_to_super: dict[Node, int] = {}
    for sid, member_set in members.items():
        for node in member_set:
            node_to_super[node] = sid

    coarse = Graph(name=f"super({graph.name})")
    for sid, (motif, member_set) in enumerate(groups):
        coarse.add_node(sid, motif=motif, size=len(member_set))
    for u, v in graph.edges():
        su, sv = node_to_super[u], node_to_super[v]
        if su != sv:
            coarse.add_edge(su, sv)
    return SuperGraph(graph=coarse, members=members)
