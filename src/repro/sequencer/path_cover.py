"""Length-constrained path cover (paper Sec. II-B).

For each node ``u`` of ``G`` we emit paths starting at ``u`` of length at
most ``l`` that cover the subgraph of ``G`` within ``l`` hops of ``u``:

* *node coverage* comes from the truncated-BFS tree of ``u`` — every
  root-to-node tree path is emitted;
* *edge coverage* adds, for every non-tree edge ``(a, b)`` inside the
  ball, the tree path to ``a`` extended by ``(a, b)`` when that stays a
  simple path of length <= ``l``, else the bare edge path ``(a, b)``.

Each per-node ball of radius ``l`` holds at most O(2^l) paths for
bounded-degree graphs, matching the paper's O(|G| * 2^l) total bound.
The cover is deduplicated globally (a path kept once even if several
start nodes generate it).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from ..errors import SequencerError
from ..graphs.graph import DiGraph, Graph, Node


@dataclass(frozen=True)
class CoverStats:
    """Bookkeeping of one path-cover run (benchmarked in E7)."""

    n_paths: int
    max_path_length: int
    covered_nodes: int
    covered_edges: int
    total_nodes: int
    total_edges: int

    @property
    def node_coverage(self) -> float:
        if self.total_nodes == 0:
            return 1.0
        return self.covered_nodes / self.total_nodes

    @property
    def edge_coverage(self) -> float:
        if self.total_edges == 0:
            return 1.0
        return self.covered_edges / self.total_edges


def _ball_tree(graph: Graph, source: Node,
               radius: int) -> tuple[dict[Node, Node], dict[Node, int]]:
    """Truncated BFS: parent pointers and depths within ``radius`` hops."""
    step = (graph.successors if isinstance(graph, DiGraph)
            else graph.neighbors)
    parents: dict[Node, Node] = {}
    depth: dict[Node, int] = {source: 0}
    queue = deque([source])
    while queue:
        node = queue.popleft()
        if depth[node] == radius:
            continue
        for neighbor in step(node):
            if neighbor not in depth:
                depth[neighbor] = depth[node] + 1
                parents[neighbor] = node
                queue.append(neighbor)
    return parents, depth


def _tree_path(parents: dict[Node, Node], source: Node,
               target: Node) -> tuple[Node, ...]:
    path = [target]
    while path[-1] != source:
        path.append(parents[path[-1]])
    path.reverse()
    return tuple(path)


def length_constrained_path_cover(
        graph: Graph, max_length: int,
        max_paths: int | None = None) -> tuple[list[tuple[Node, ...]],
                                               CoverStats]:
    """Compute the length-constrained path cover of ``graph``.

    Returns ``(paths, stats)``; each path is a node tuple with at most
    ``max_length`` edges.  ``max_paths`` truncates the output (stats then
    reflect the truncated cover).
    """
    if max_length < 1:
        raise SequencerError("max_length must be >= 1")
    paths: list[tuple[Node, ...]] = []
    seen_paths: set[tuple[Node, ...]] = set()
    covered_nodes: set[Node] = set()
    covered_edges: set[frozenset[Node] | tuple[Node, Node]] = set()
    directed = isinstance(graph, DiGraph)

    def edge_key(a: Node, b: Node):
        return (a, b) if directed else frozenset((a, b))

    def emit(path: tuple[Node, ...]) -> bool:
        """Record ``path``; returns False when the cap is hit."""
        if path in seen_paths:
            return True
        seen_paths.add(path)
        paths.append(path)
        covered_nodes.update(path)
        for a, b in zip(path, path[1:]):
            covered_edges.add(edge_key(a, b))
        return max_paths is None or len(paths) < max_paths

    capped = False
    for source in graph.nodes():
        if capped:
            break
        parents, depth = _ball_tree(graph, source, max_length)
        # node coverage: root-to-node tree paths (leaves suffice, but
        # emitting all keeps short contexts for interior nodes too)
        for node in depth:
            if node == source:
                if graph.degree(source) == 0 and not emit((source,)):
                    capped = True
                    break
                continue
            if not emit(_tree_path(parents, source, node)):
                capped = True
                break
        if capped:
            break
        # edge coverage: non-tree edges inside the ball
        step = (graph.successors if directed else graph.neighbors)
        for a in depth:
            for b in step(a):
                if b not in depth:
                    continue
                if parents.get(b) == a or parents.get(a) == b:
                    continue  # tree edge, already covered
                if edge_key(a, b) in covered_edges:
                    continue
                tree = _tree_path(parents, source, a)
                if b not in tree and len(tree) <= max_length:
                    candidate = tree + (b,)
                else:
                    candidate = (a, b)
                if not emit(candidate):
                    capped = True
                    break
            if capped:
                break

    stats = CoverStats(
        n_paths=len(paths),
        max_path_length=max((len(p) - 1 for p in paths), default=0),
        covered_nodes=len(covered_nodes),
        covered_edges=len(covered_edges),
        total_nodes=graph.number_of_nodes(),
        total_edges=graph.number_of_edges(),
    )
    return paths, stats
