"""Serialize a graph into token sequences for the language model.

The :class:`GraphSequentializer` wires the path cover and the super-graph
together (multi-level mode) and renders each path as a token sequence:

    ``["<n:C>", "<e>", "<n:C>", "<e>", "<n:O>"]``

where node tokens carry the node's label (``label``/``element``/
``entity_type``/``kind`` attribute, first one present) and ``<e>``
separates hops.  The aggregate bag-of-tokens (``feature_counts``) is
what the simulated LLM conditions on.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any

from ..config import SequencerConfig
from ..graphs.graph import Graph, Node
from .path_cover import CoverStats, length_constrained_path_cover
from .supergraph import SuperGraph, build_supergraph

#: Node attributes consulted (in order) for a node's token label.
LABEL_KEYS = ("label", "element", "entity_type", "kind")

EDGE_TOKEN = "<e>"
LEVEL_BASE = "<level:0>"
LEVEL_SUPER = "<level:1>"


def node_token(graph: Graph, node: Node) -> str:
    """Token for one node: ``<n:LABEL>`` or ``<n:*>`` when unlabeled."""
    for key in LABEL_KEYS:
        value = graph.get_node_attr(node, key)
        if value is not None:
            return f"<n:{value}>"
    return "<n:*>"


@dataclass(frozen=True)
class GraphSequences:
    """Everything the sequentializer hands to the LLM for one graph."""

    #: Base-level token sequences, one per cover path.
    sequences: tuple[tuple[str, ...], ...]
    #: Super-graph-level token sequences (empty unless multi-level).
    super_sequences: tuple[tuple[str, ...], ...]
    #: Path-cover bookkeeping of the base level.
    cover_stats: CoverStats
    #: The super-graph (None unless multi-level).
    supergraph: SuperGraph | None
    #: Bag of all tokens across both levels.
    feature_counts: Counter = field(default_factory=Counter)

    @property
    def n_sequences(self) -> int:
        return len(self.sequences) + len(self.super_sequences)

    def flat_tokens(self) -> list[str]:
        """All tokens in order (level markers included), for the LLM."""
        tokens: list[str] = []
        for seq in self.sequences:
            tokens.append(LEVEL_BASE)
            tokens.extend(seq)
        for seq in self.super_sequences:
            tokens.append(LEVEL_SUPER)
            tokens.extend(seq)
        return tokens


class GraphSequentializer:
    """Transform graphs into sequences per a :class:`SequencerConfig`.

    Example::

        seqr = GraphSequentializer(SequencerConfig(path_length=2))
        out = seqr.sequentialize(graph)
        out.sequences[0]   # ('<n:C>', '<e>', '<n:C>', ...)
    """

    def __init__(self, config: SequencerConfig | None = None,
                 cache: "Any | None" = None) -> None:
        self.config = config or SequencerConfig()
        #: Optional content-addressed cache (``get(key)``/``put(key, v)``
        #: duck type, e.g. :class:`repro.serve.cache.LRUCache`).  Cached
        #: :class:`GraphSequences` are shared — treat them as immutable.
        self.cache = cache

    def sequentialize(self, graph: Graph) -> GraphSequences:
        """Produce the (possibly multi-level) sequences of ``graph``."""
        if self.cache is None:
            return self._sequentialize(graph)
        from ..graphs.io import fingerprint
        key = (fingerprint(graph), self.config)
        cached = self.cache.get(key)
        if cached is not None:
            return cached
        out = self._sequentialize(graph)
        self.cache.put(key, out)
        return out

    def _sequentialize(self, graph: Graph) -> GraphSequences:
        config = self.config
        paths, stats = length_constrained_path_cover(
            graph, config.path_length, max_paths=config.max_paths)
        sequences = tuple(self._render(graph, path) for path in paths)

        super_sequences: tuple[tuple[str, ...], ...] = ()
        supergraph: SuperGraph | None = None
        if config.multi_level and graph.number_of_nodes() > 0:
            supergraph = build_supergraph(
                graph, min_motif_size=config.min_motif_size)
            coarse_budget = max(1, config.max_paths // 4)
            coarse_paths, __ = length_constrained_path_cover(
                supergraph.graph, config.path_length,
                max_paths=coarse_budget)
            super_sequences = tuple(
                self._render_super(supergraph.graph, path)
                for path in coarse_paths)

        features: Counter = Counter()
        for seq in sequences:
            features.update(seq)
        for seq in super_sequences:
            features.update(seq)
        return GraphSequences(
            sequences=sequences,
            super_sequences=super_sequences,
            cover_stats=stats,
            supergraph=supergraph,
            feature_counts=features,
        )

    @staticmethod
    def _render(graph: Graph, path: tuple[Node, ...]) -> tuple[str, ...]:
        tokens: list[str] = []
        for i, node in enumerate(path):
            if i:
                tokens.append(EDGE_TOKEN)
            tokens.append(node_token(graph, node))
        return tuple(tokens)

    @staticmethod
    def _render_super(coarse: Graph,
                      path: tuple[Node, ...]) -> tuple[str, ...]:
        tokens: list[str] = []
        for i, node in enumerate(path):
            if i:
                tokens.append(EDGE_TOKEN)
            motif = coarse.get_node_attr(node, "motif", "singleton")
            size = coarse.get_node_attr(node, "size", 1)
            tokens.append(f"<m:{motif}:{size}>")
        return tuple(tokens)
