"""Ring detection for the super-graph (molecule-style motifs).

Cliques cover social-style motifs but molecules are built from *rings*
(benzene, fused systems), which contain no triangles at all.  This
module finds small rings via the fundamental cycle basis of a BFS
spanning forest: each non-tree edge closes exactly one cycle with the
tree; cycles up to ``max_size`` become candidate motifs.
"""

from __future__ import annotations

from collections import deque

from ..graphs.graph import DiGraph, Graph, Node


def find_rings(graph: Graph, max_size: int = 8) -> list[frozenset[Node]]:
    """Small rings from the fundamental cycle basis, deduplicated.

    Returns node sets of cycles with 3..``max_size`` nodes, largest
    first.  The basis has exactly ``m - n + c`` cycles, so this is
    linear-ish and safe on large graphs (unlike full cycle enumeration).
    """
    if isinstance(graph, DiGraph):
        graph = graph.to_undirected()
    parent: dict[Node, Node | None] = {}
    depth: dict[Node, int] = {}
    rings: set[frozenset[Node]] = set()

    for root in graph.nodes():
        if root in parent:
            continue
        parent[root] = None
        depth[root] = 0
        queue = deque([root])
        while queue:
            node = queue.popleft()
            for neighbor in graph.neighbors(node):
                if neighbor not in parent:
                    parent[neighbor] = node
                    depth[neighbor] = depth[node] + 1
                    queue.append(neighbor)

    def tree_cycle(u: Node, v: Node) -> frozenset[Node] | None:
        """Nodes of the cycle closed by non-tree edge (u, v)."""
        path_u, path_v = [u], [v]
        a, b = u, v
        while depth[a] > depth[b]:
            a = parent[a]  # type: ignore[assignment]
            path_u.append(a)
        while depth[b] > depth[a]:
            b = parent[b]  # type: ignore[assignment]
            path_v.append(b)
        while a != b:
            a = parent[a]  # type: ignore[assignment]
            b = parent[b]  # type: ignore[assignment]
            path_u.append(a)
            path_v.append(b)
        cycle = set(path_u) | set(path_v)
        if len(cycle) > max_size:
            return None
        return frozenset(cycle)

    tree_edges = {frozenset((child, par))
                  for child, par in parent.items() if par is not None}
    for u, v in graph.edges():
        if u == v or frozenset((u, v)) in tree_edges:
            continue
        ring = tree_cycle(u, v)
        if ring is not None and len(ring) >= 3:
            rings.add(ring)
    return sorted(rings, key=lambda ring: (-len(ring), sorted(map(repr,
                                                                  ring))))
