"""Shared plumbing for the ``BENCH_*`` gate benchmarks.

Every benchmark family (``bench-perf``, ``serve-bench``,
``bench-shard``, ``bench-slo``) grew its own copy of the same four
pieces: best-of-repeats timing, latency quantiles, the
``{"gate", "passed", ...}`` report row, and the "write the JSON and
stamp provenance" step.  They live here once, so a fix to the timing
statistic or the report format lands everywhere at once.

The report writer stamps :func:`host_info` into every ``BENCH_*.json``
— hardware-sensitive gates (the 8-shard scaling gate arms only on a
>= 8-core runner, see :func:`eight_shard_gate_decision`) record the
machine they measured on, so a report read later answers "was that
gate even armable here?" by itself.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from pathlib import Path
from typing import Any, Callable, Sequence

import numpy as np

__all__ = [
    "chunked",
    "drive",
    "eight_shard_gate_decision",
    "gate",
    "host_info",
    "min_per_unit",
    "quantiles_ms",
    "say",
    "write_report",
]


# ----------------------------------------------------------------------
# timing
# ----------------------------------------------------------------------
def chunked(items: Sequence[Any], size: int) -> list[list[Any]]:
    """``items`` split into consecutive chunks of at most ``size``."""
    return [list(items[start:start + size])
            for start in range(0, len(items), size)]


def min_per_unit(repeats: int,
                 fns: Sequence[Callable[[], Any]]
                 ) -> tuple[list[float], list[Any]]:
    """Time each unit of work ``repeats`` times; keep per-unit minima.

    Best-of timing (a la ``timeit``) reports the intrinsic cost of a
    code path: slower passes only ever measure interference from the
    rest of the machine.  Taking the minimum *per unit* (per request /
    per chunk) rather than per whole pass makes the statistic robust
    even on noisy shared hosts, where a several-ms steal event would
    otherwise poison every full pass.  Returns the per-unit minimum
    seconds plus the outputs of the first pass.
    """
    mins = [float("inf")] * len(fns)
    first: list[Any] = []
    for rep in range(repeats):
        for i, fn in enumerate(fns):
            t0 = time.perf_counter()
            out = fn()
            elapsed = time.perf_counter() - t0
            if elapsed < mins[i]:
                mins[i] = elapsed
            if rep == 0:
                first.append(out)
    return mins, first


def quantiles_ms(seconds: list[float]) -> dict[str, float]:
    """``{"p50_ms", "p95_ms"}`` of a latency sample, in milliseconds."""
    values = np.asarray(seconds, dtype=np.float64) * 1000.0
    return {
        "p50_ms": float(np.percentile(values, 50)),
        "p95_ms": float(np.percentile(values, 95)),
    }


def drive(server: Any, requests: Sequence[Any],
          timeout: float = 300.0) -> tuple[float, list[Any]]:
    """Submit every request, await every reply; ``(seconds, responses)``.

    The submit-all-then-gather shape keeps the server's admission queue
    full for the whole measurement, so the wall time divides into a
    throughput number — the pattern every serving benchmark here uses.
    Works with any server exposing the ``submit`` surface (in-process
    or sharded facade alike).
    """
    start = time.perf_counter()
    pending = [server.submit(request) for request in requests]
    responses = [item.result(timeout=timeout) for item in pending]
    return time.perf_counter() - start, responses


# ----------------------------------------------------------------------
# gate reports
# ----------------------------------------------------------------------
def gate(name: str, passed: bool, **detail: Any) -> dict[str, Any]:
    """One gate row of a ``BENCH_*.json`` report."""
    return {"gate": name, "passed": bool(passed), **detail}


def say(message: str) -> None:
    """Progress line on stderr (stdout belongs to rendered results)."""
    print(message, file=sys.stderr)


def host_info() -> dict[str, Any]:
    """Provenance of the machine a report was measured on."""
    return {
        "cpu_count": os.cpu_count() or 1,
        "platform": platform.platform(),
        "python": platform.python_version(),
    }


def eight_shard_gate_decision(cpu_count: int | None = None,
                              quick: bool = False) -> dict[str, Any]:
    """Arm or disarm the 8-shard >= 5x scaling gate for this host.

    The gate is the ISSUE's stretch contract; it can only demonstrate
    anything on a runner with at least 8 cores (shards must overlap on
    real parallel capacity) and only in a full (non ``--quick``) run.
    The decision — armed or not, and why — is recorded in the report so
    CI landing on a big runner arms the gate automatically and a laptop
    run documents exactly why it did not.
    """
    cores = (os.cpu_count() or 1) if cpu_count is None else cpu_count
    if quick:
        return {"armed": False, "cpu_count": cores,
                "reason": "quick run: scaling curve stops at 2 shards"}
    if cores < 8:
        return {"armed": False, "cpu_count": cores,
                "reason": f"host has {cores} core(s) < 8; an "
                          "oversubscribed curve cannot demonstrate "
                          "8-way scaling"}
    return {"armed": True, "cpu_count": cores,
            "reason": f"host has {cores} cores >= 8"}


def write_report(path: str | Path, report: dict[str, Any],
                 sort_keys: bool = False) -> Path:
    """Stamp host provenance into ``report`` and write it as JSON.

    Mutates ``report`` (adds ``"host"`` unless the caller already set
    one) so the in-memory dict matches the bytes on disk.
    """
    report.setdefault("host", host_info())
    out = Path(path)
    out.write_text(
        json.dumps(report, indent=1, sort_keys=sort_keys) + "\n",
        encoding="utf-8")
    return out
