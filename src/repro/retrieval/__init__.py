"""API retrieval module (paper Sec. II-A).

Embeds every API description, indexes the vectors with the tau-MG
proximity graph, and answers "which APIs match this prompt text" —
the candidate set the LLM's prediction space is restricted to.
"""

from .api_retriever import APIRetriever, RetrievedAPI

__all__ = ["APIRetriever", "RetrievedAPI"]
