"""Embedding + ANN retrieval over API descriptions."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..ann.base import AnnIndex
from ..ann.brute_force import BruteForceIndex
from ..ann.tau_mg import TauMGIndex
from ..apis.registry import APIRegistry, Category
from ..config import RetrievalConfig
from ..embedding.hashing import HashingEmbedder
from ..errors import EmbeddingError, IndexError_


@dataclass(frozen=True)
class RetrievedAPI:
    """One retrieval hit."""

    name: str
    distance: float
    rank: int


class APIRetriever:
    """Find the APIs most relevant to a prompt text.

    The retriever embeds each registered API's description (name tokens
    folded in) once at construction, builds a tau-MG index over the
    vectors, and serves top-k queries.  A category filter supports the
    graph-type routing of scenario 1 (e.g. only social + generic +
    report APIs for a social network).

    Example::

        retriever = APIRetriever(registry, RetrievalConfig())
        hits = retriever.retrieve("find communities in my network", k=4)
    """

    def __init__(self, registry: APIRegistry,
                 config: RetrievalConfig | None = None,
                 index: AnnIndex | None = None,
                 use_idf: bool = False,
                 embed_cache: "object | None" = None) -> None:
        self.registry = registry
        #: Optional query-embedding cache (``get``/``put`` duck type,
        #: e.g. :class:`repro.serve.cache.LRUCache`); cached vectors are
        #: shared and must not be mutated.
        self.embed_cache = embed_cache
        self.config = config or RetrievalConfig()
        self._names = registry.names()
        if not self._names:
            raise IndexError_("registry is empty; nothing to retrieve")
        #: Category per vector id, snapshotted once so ranking avoids a
        #: registry lookup per ANN hit.
        self._hit_categories = [registry.get(name).category
                                for name in self._names]
        descriptions = [self._document(name) for name in self._names]
        tfidf = None
        if use_idf:
            # weight rare description terms higher (fit on the catalog)
            from ..embedding.tfidf import TfidfModel
            tfidf = TfidfModel.fit(descriptions)
        self.embedder = HashingEmbedder(dim=self.config.embedding_dim,
                                        tfidf=tfidf)
        self._vectors = self.embedder.embed_batch(descriptions)
        if index is None:
            if len(self._names) >= 8:
                index = TauMGIndex(tau=self.config.tau,
                                   ef_search=self.config.ef_search)
            else:
                index = BruteForceIndex()
        self.index = index.build(self._vectors)

    def _document(self, name: str) -> str:
        spec = self.registry.get(name)
        return f"{name.replace('_', ' ')}. {spec.description}"

    def _embed_query(self, text: str):
        """Embed ``text``, consulting the optional query cache."""
        if self.embed_cache is None:
            return self.embedder.embed(text)
        vector = self.embed_cache.get(text)
        if vector is None:
            vector = self.embedder.embed(text)
            self.embed_cache.put(text, vector)
        return vector

    def _embed_queries(self, texts: list[str]
                       ) -> dict[str, "np.ndarray | None"]:
        """Embed many query texts, batching cache misses together.

        Returns a mapping from each distinct text to its vector, or
        ``None`` where the text cannot be embedded (the per-text
        equivalent of :meth:`_embed_query` raising
        :class:`~repro.errors.EmbeddingError`).  Vectors that came from
        the cache are shared references and must not be mutated.
        """
        vectors: dict[str, np.ndarray | None] = {}
        misses: list[str] = []
        for text in dict.fromkeys(texts):
            cached = (self.embed_cache.get(text)
                      if self.embed_cache is not None else None)
            if cached is not None:
                vectors[text] = cached
            else:
                misses.append(text)
        if not misses:
            return vectors
        try:
            pairs = list(zip(misses, self.embedder.embed_batch(misses)))
        except EmbeddingError:
            # rare path: isolate the unembeddable text(s) one by one
            pairs = []
            for text in misses:
                try:
                    pairs.append((text, self.embedder.embed(text)))
                except EmbeddingError:
                    vectors[text] = None
        for text, vector in pairs:
            if self.embed_cache is not None:
                self.embed_cache.put(text, vector)
            vectors[text] = vector
        return vectors

    # ------------------------------------------------------------------
    def retrieve(self, text: str, k: int | None = None,
                 categories: tuple[Category, ...] | None = None
                 ) -> list[RetrievedAPI]:
        """Top-k APIs for ``text``, optionally filtered by category.

        The category filter is applied *after* ANN search with an
        enlarged candidate pool, so filtered queries still return k
        results whenever k are available.
        """
        k = k or self.config.top_k_apis
        query = self._embed_query(text)
        pool = self._pool_size(k, categories)
        hits = self.index.search(query, k=pool)
        return self._rank(hits, k, categories)

    def _pool_size(self, k: int,
                   categories: tuple[Category, ...] | None) -> int:
        return k if categories is None else min(len(self._names), 4 * k)

    def _rank(self, hits, k: int,
              categories: tuple[Category, ...] | None
              ) -> list[RetrievedAPI]:
        """Apply the category filter and re-rank the surviving hits."""
        results: list[RetrievedAPI] = []
        names, hit_categories = self._names, self._hit_categories
        for hit in hits:
            vector_id = hit.vector_id
            if (categories is not None
                    and hit_categories[vector_id] not in categories):
                continue
            results.append(RetrievedAPI(name=names[vector_id],
                                        distance=hit.distance,
                                        rank=len(results)))
            if len(results) == k:
                break
        return results

    def retrieve_batch(self, texts: list[str], k: int | None = None,
                       categories_per: "list[tuple[Category, ...] | None] "
                       "| None" = None
                       ) -> list[list[RetrievedAPI] | None]:
        """Batched :meth:`retrieve`: one result list per input text.

        Query embeddings are computed through one ``embed_batch`` call
        (cache misses only) and the ANN index is queried with
        ``search_batch``, so the per-query Python overhead is amortized
        across the whole batch.  Results match the scalar path exactly;
        an entry is ``None`` where :meth:`retrieve` would have raised
        :class:`~repro.errors.EmbeddingError` for that text.
        """
        k = k or self.config.top_k_apis
        if categories_per is None:
            categories_per = [None] * len(texts)
        if len(categories_per) != len(texts):
            raise IndexError_("categories_per must match texts in length")
        vectors = self._embed_queries(list(texts))
        results: list[list[RetrievedAPI] | None] = [None] * len(texts)
        # group by candidate-pool size so each index query uses exactly
        # the k the scalar path would have used (keeps hit lists, and
        # thus truncation behavior, identical)
        by_pool: dict[int, list[int]] = {}
        for i, (text, categories) in enumerate(zip(texts, categories_per)):
            if vectors[text] is None:
                continue
            by_pool.setdefault(self._pool_size(k, categories),
                               []).append(i)
        for pool, rows in by_pool.items():
            queries = np.stack([vectors[texts[i]] for i in rows])
            hit_lists = self.index.search_batch_pairs(queries, k=pool)
            for i, hits in zip(rows, hit_lists):
                results[i] = self._rank_pairs(hits, k, categories_per[i])
        return results

    def _rank_pairs(self, hits: "list[tuple[int, float]]", k: int,
                    categories: tuple[Category, ...] | None
                    ) -> list[RetrievedAPI]:
        """:meth:`_rank` over raw ``(vector_id, distance)`` pairs."""
        results: list[RetrievedAPI] = []
        names, hit_categories = self._names, self._hit_categories
        for vector_id, distance in hits:
            if (categories is not None
                    and hit_categories[vector_id] not in categories):
                continue
            results.append(RetrievedAPI(name=names[vector_id],
                                        distance=distance,
                                        rank=len(results)))
            if len(results) == k:
                break
        return results

    def retrieve_names(self, text: str, k: int | None = None,
                       categories: tuple[Category, ...] | None = None
                       ) -> tuple[str, ...]:
        """Like :meth:`retrieve` but returns just the ranked names."""
        return tuple(hit.name for hit in self.retrieve(text, k, categories))

    # ------------------------------------------------------------------
    def exact_retrieve(self, text: str, k: int | None = None
                       ) -> list[RetrievedAPI]:
        """Brute-force retrieval (ground truth for recall benchmarks)."""
        k = k or self.config.top_k_apis
        query = self._embed_query(text)
        distances = np.linalg.norm(self._vectors - query, axis=1)
        order = np.argsort(distances, kind="stable")[:k]
        return [RetrievedAPI(name=self._names[int(i)],
                             distance=float(distances[i]), rank=rank)
                for rank, i in enumerate(order)]
