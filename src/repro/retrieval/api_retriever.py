"""Embedding + ANN retrieval over API descriptions."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..ann.base import AnnIndex
from ..ann.brute_force import BruteForceIndex
from ..ann.tau_mg import TauMGIndex
from ..apis.registry import APIRegistry, Category
from ..config import RetrievalConfig
from ..embedding.hashing import HashingEmbedder
from ..errors import IndexError_


@dataclass(frozen=True)
class RetrievedAPI:
    """One retrieval hit."""

    name: str
    distance: float
    rank: int


class APIRetriever:
    """Find the APIs most relevant to a prompt text.

    The retriever embeds each registered API's description (name tokens
    folded in) once at construction, builds a tau-MG index over the
    vectors, and serves top-k queries.  A category filter supports the
    graph-type routing of scenario 1 (e.g. only social + generic +
    report APIs for a social network).

    Example::

        retriever = APIRetriever(registry, RetrievalConfig())
        hits = retriever.retrieve("find communities in my network", k=4)
    """

    def __init__(self, registry: APIRegistry,
                 config: RetrievalConfig | None = None,
                 index: AnnIndex | None = None,
                 use_idf: bool = False,
                 embed_cache: "object | None" = None) -> None:
        self.registry = registry
        #: Optional query-embedding cache (``get``/``put`` duck type,
        #: e.g. :class:`repro.serve.cache.LRUCache`); cached vectors are
        #: shared and must not be mutated.
        self.embed_cache = embed_cache
        self.config = config or RetrievalConfig()
        self._names = registry.names()
        if not self._names:
            raise IndexError_("registry is empty; nothing to retrieve")
        descriptions = [self._document(name) for name in self._names]
        tfidf = None
        if use_idf:
            # weight rare description terms higher (fit on the catalog)
            from ..embedding.tfidf import TfidfModel
            tfidf = TfidfModel.fit(descriptions)
        self.embedder = HashingEmbedder(dim=self.config.embedding_dim,
                                        tfidf=tfidf)
        self._vectors = self.embedder.embed_batch(descriptions)
        if index is None:
            if len(self._names) >= 8:
                index = TauMGIndex(tau=self.config.tau,
                                   ef_search=self.config.ef_search)
            else:
                index = BruteForceIndex()
        self.index = index.build(self._vectors)

    def _document(self, name: str) -> str:
        spec = self.registry.get(name)
        return f"{name.replace('_', ' ')}. {spec.description}"

    def _embed_query(self, text: str):
        """Embed ``text``, consulting the optional query cache."""
        if self.embed_cache is None:
            return self.embedder.embed(text)
        vector = self.embed_cache.get(text)
        if vector is None:
            vector = self.embedder.embed(text)
            self.embed_cache.put(text, vector)
        return vector

    # ------------------------------------------------------------------
    def retrieve(self, text: str, k: int | None = None,
                 categories: tuple[Category, ...] | None = None
                 ) -> list[RetrievedAPI]:
        """Top-k APIs for ``text``, optionally filtered by category.

        The category filter is applied *after* ANN search with an
        enlarged candidate pool, so filtered queries still return k
        results whenever k are available.
        """
        k = k or self.config.top_k_apis
        query = self._embed_query(text)
        pool = k if categories is None else min(len(self._names), 4 * k)
        hits = self.index.search(query, k=pool)
        results: list[RetrievedAPI] = []
        for hit in hits:
            name = self._names[hit.vector_id]
            if categories is not None:
                if self.registry.get(name).category not in categories:
                    continue
            results.append(RetrievedAPI(name=name, distance=hit.distance,
                                        rank=len(results)))
            if len(results) == k:
                break
        return results

    def retrieve_names(self, text: str, k: int | None = None,
                       categories: tuple[Category, ...] | None = None
                       ) -> tuple[str, ...]:
        """Like :meth:`retrieve` but returns just the ranked names."""
        return tuple(hit.name for hit in self.retrieve(text, k, categories))

    # ------------------------------------------------------------------
    def exact_retrieve(self, text: str, k: int | None = None
                       ) -> list[RetrievedAPI]:
        """Brute-force retrieval (ground truth for recall benchmarks)."""
        k = k or self.config.top_k_apis
        query = self._embed_query(text)
        distances = np.linalg.norm(self._vectors - query, axis=1)
        order = np.argsort(distances, kind="stable")[:k]
        return [RetrievedAPI(name=self._names[int(i)],
                             distance=float(distances[i]), rank=rank)
                for rank, i in enumerate(order)]
