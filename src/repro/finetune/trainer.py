"""Finetuning loops: token-level baseline vs matching + rollout objective.

``objective="token"`` is plain teacher forcing on the first ground-truth
chain (the baseline E8 compares against).  ``objective="matching"`` is
the paper's scheme: at each step the search-based prediction scores
every candidate by rollout + node matching-based loss, the scores become
a soft target distribution, and the model takes a weighted SGD step —
so supervision follows whichever *equivalent* chain the model is closest
to, instead of force-feeding one arbitrary ordering.
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass, field
from typing import Sequence

from ..config import FinetuneConfig
from ..errors import FinetuneError
from ..llm.chain_model import ChainLanguageModel, TrainingExample
from .losses import min_matching_loss
from .metrics import ChainMetrics, evaluate_model
from .rollout import score_candidates

OBJECTIVES = ("token", "matching")


@dataclass
class FinetuneReport:
    """Training curve + final evaluation of one finetuning run."""

    objective: str
    epochs: int
    train_losses: list[float] = field(default_factory=list)
    eval_history: list[ChainMetrics] = field(default_factory=list)
    seconds: float = 0.0

    @property
    def final_metrics(self) -> ChainMetrics | None:
        return self.eval_history[-1] if self.eval_history else None


class Finetuner:
    """Drives finetuning of a :class:`ChainLanguageModel`.

    Example::

        tuner = Finetuner(model, FinetuneConfig(rollouts=4))
        report = tuner.train(train_examples, eval_examples,
                             objective="matching")
    """

    def __init__(self, model: ChainLanguageModel,
                 config: FinetuneConfig | None = None,
                 seed: int = 0) -> None:
        self.model = model
        self.config = config or FinetuneConfig()
        self.seed = seed

    # ------------------------------------------------------------------
    def train(self, train_examples: Sequence[TrainingExample],
              eval_examples: Sequence[TrainingExample] = (),
              objective: str = "matching") -> FinetuneReport:
        """Run ``config.epochs`` passes over the corpus."""
        if objective not in OBJECTIVES:
            raise FinetuneError(
                f"objective must be one of {OBJECTIVES}, got {objective!r}")
        if not train_examples:
            raise FinetuneError("no training examples")
        rng = random.Random(self.seed)
        report = FinetuneReport(objective=objective,
                                epochs=self.config.epochs)
        start = time.perf_counter()
        order = list(train_examples)
        for epoch in range(self.config.epochs):
            rng.shuffle(order)
            epoch_loss = 0.0
            for example in order:
                if objective == "token":
                    epoch_loss += self.model.train_chain(
                        example, self.config.learning_rate)
                else:
                    epoch_loss += self._matching_step(example, rng)
            report.train_losses.append(epoch_loss / len(order))
            if eval_examples:
                report.eval_history.append(
                    evaluate_model(self.model, eval_examples,
                                   alpha=self.config.alpha))
        report.seconds = time.perf_counter() - start
        return report

    # ------------------------------------------------------------------
    def _matching_step(self, example: TrainingExample,
                       rng: random.Random) -> float:
        """One example under the matching + rollout objective."""
        config = self.config
        state = example.state()
        max_length = max(len(chain) for chain in example.target_chains) + 2
        total_loss = 0.0
        steps = 0
        for __ in range(max_length):
            scores = score_candidates(
                self.model, state, example.target_chains,
                rollouts=config.rollouts, alpha=config.alpha,
                max_length=max_length, rng=rng)
            weights = _scores_to_weights(scores)
            total_loss += self.model.train_weighted_step(
                state, weights, config.learning_rate)
            steps += 1
            best = min(scores, key=lambda name: (scores[name],
                                                 0 if name == "<eos>" else 1,
                                                 name))
            if best == "<eos>":
                break
            state = state.advance(best)
        # terminal check: the produced prefix should already be a chain
        __ = min_matching_loss(state.prefix, example.target_chains,
                               config.alpha)
        return total_loss / max(steps, 1)


def _scores_to_weights(scores: dict[str, float],
                       sharpness: float = 4.0) -> dict[str, float]:
    """Soft-min over rollout losses -> target distribution."""
    best = min(scores.values())
    weights = {name: math.exp(-sharpness * (loss - best))
               for name, loss in scores.items()}
    total = sum(weights.values())
    return {name: weight / total for name, weight in weights.items()}
