"""The node matching-based loss function (paper Def. 1).

Given a generated chain ``C`` and a ground-truth chain ``C'``, the loss
is ``min_M  X + alpha * Y`` where

* ``X`` is the graph edit distance between the chains under matching
  ``M`` (node substitutions by API-name mismatch, node deletions and
  insertions, and the edge mismatches ``M`` induces on the chain DAGs);
* ``Y = sum_i (1 - sum_k M_ik)^2 + sum_k (1 - sum_i M_ik)^2`` penalizes
  unmatched nodes, encoding the one-to-one matching property.

For binary matchings produced by the Hungarian algorithm, ``Y`` equals
the number of unmatched nodes on both sides.  The minimization over
``M`` is solved by the Hungarian algorithm on a substitution-cost matrix
(API-name mismatch + a small positional tie-breaker), which is the
classical bipartite relaxation of chain GED — exact for the linear
chains ChatGraph generates in practice.
"""

from __future__ import annotations

from typing import Sequence

from ..algorithms.matching import hungarian

Chain = Sequence[str]

#: Positional tie-break weight; small enough never to flip a label match.
_POSITION_WEIGHT = 0.01


def _matching(generated: Chain, truth: Chain) -> list[int | None]:
    """Min-cost one-to-one matching: index in truth per generated node."""
    n, m = len(generated), len(truth)
    if n == 0 or m == 0:
        return [None] * n
    cost = [[(0.0 if generated[i] == truth[j] else 1.0)
             + _POSITION_WEIGHT * abs(i - j)
             for j in range(m)] for i in range(n)]
    assignment, __ = hungarian(cost)
    return [j if j >= 0 else None for j in assignment]


def node_matching_loss(generated: Chain, truth: Chain,
                       alpha: float = 1.0) -> float:
    """Def. 1 loss between one generated chain and one ground truth.

    The minimization over matchings is solved by the Hungarian bipartite
    relaxation (node costs only); the edge term is charged on the chosen
    matching afterwards.  Because optimal node matchings can be
    non-unique, the relaxation is evaluated in both directions and the
    smaller value returned, which keeps the loss symmetric.
    """
    loss_forward = _one_sided_loss(generated, truth, alpha)
    loss_backward = _one_sided_loss(truth, generated, alpha)
    return min(loss_forward, loss_backward)


def _one_sided_loss(generated: Chain, truth: Chain, alpha: float) -> float:
    if alpha < 0:
        raise ValueError("alpha must be >= 0")
    generated = list(generated)
    truth = list(truth)
    assignment = _matching(generated, truth)

    # X: edit cost induced by the matching
    x = 0.0
    matched_truth: set[int] = set()
    for i, j in enumerate(assignment):
        if j is None:
            x += 1.0  # node deletion
        else:
            matched_truth.add(j)
            if generated[i] != truth[j]:
                x += 1.0  # substitution
    x += len(truth) - len(matched_truth)  # node insertions
    # edge term: chain edges (i, i+1); a generated edge survives iff the
    # matched truth indexes are also consecutive (in order)
    gen_edges = 0
    for i in range(len(generated) - 1):
        a, b = assignment[i], assignment[i + 1]
        if a is not None and b is not None and b == a + 1:
            gen_edges += 1
    x += (len(generated) - 1 if generated else 0) - gen_edges  # deletions
    x += (len(truth) - 1 if truth else 0) - gen_edges           # insertions

    # Y: one-to-one regularizer (binary M -> count of unmatched nodes)
    unmatched_generated = sum(1 for j in assignment if j is None)
    unmatched_truth = len(truth) - len(matched_truth)
    y = float(unmatched_generated + unmatched_truth)
    return x + alpha * y


def min_matching_loss(generated: Chain, truths: Sequence[Chain],
                      alpha: float = 1.0) -> float:
    """Minimum Def. 1 loss over several equivalent ground truths."""
    if not truths:
        raise ValueError("need at least one ground-truth chain")
    return min(node_matching_loss(generated, truth, alpha)
               for truth in truths)


def chain_ged(generated: Chain, truth: Chain) -> float:
    """Plain chain GED (the alpha = 0 special case of the loss)."""
    return node_matching_loss(generated, truth, alpha=0.0)
