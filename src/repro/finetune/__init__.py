"""API chain-oriented finetuning (paper Sec. II-C).

* :mod:`losses` — the node matching-based loss of Def. 1: chain GED
  plus the one-to-one matching regularizer, minimized over matchings via
  the Hungarian algorithm; multi-ground-truth variants take the minimum.
* :mod:`rollout` — search-based prediction: score each candidate next
  API by ``r`` random rollouts and the matching loss.
* :mod:`dataset` — the synthetic finetuning corpus generator (the
  substitution for the paper's logged student sessions; see DESIGN.md).
* :mod:`trainer` — finetuning loops for the token-level baseline and
  the paper's matching + rollout objective.
* :mod:`metrics` — chain exact-match / GED evaluation.
"""

from .losses import chain_ged, node_matching_loss, min_matching_loss
from .rollout import rollout_decode, score_candidates
from .dataset import CorpusSpec, build_corpus
from .trainer import FinetuneReport, Finetuner
from .metrics import ChainMetrics, evaluate_model

__all__ = [
    "chain_ged",
    "node_matching_loss",
    "min_matching_loss",
    "rollout_decode",
    "score_candidates",
    "CorpusSpec",
    "build_corpus",
    "FinetuneReport",
    "Finetuner",
    "ChainMetrics",
    "evaluate_model",
]
