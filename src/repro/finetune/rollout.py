"""Search-based prediction with random rollouts (paper Sec. II-C).

Chain generation extends a partial chain one API at a time.  For each
candidate next API ``a`` we run ``r`` random rollouts: complete
``C_p + {a}`` to a full chain by temperature sampling, take the minimum
node matching-based loss of each completion against the ground-truth
chains, and keep the best (the candidate's score).  The candidate with
the lowest best-loss is appended.  With ``r = 0`` the candidate is
scored by the loss of the greedy completion — the degenerate baseline
the E9 ablation compares against.
"""

from __future__ import annotations

import random
from typing import Sequence

from ..errors import ModelError
from ..llm.chain_model import ChainLanguageModel, GenerationState
from ..llm.decoding import greedy_decode, sample_decode
from .losses import min_matching_loss

Chain = Sequence[str]


def score_candidates(model: ChainLanguageModel, state: GenerationState,
                     truths: Sequence[Chain], rollouts: int = 4,
                     alpha: float = 1.0, max_length: int = 8,
                     temperature: float = 1.0,
                     rng: random.Random | None = None,
                     greedy_anchor: bool = True) -> dict[str, float]:
    """Best rollout loss per candidate next API (lower is better).

    EOS is scored too (as the loss of stopping here), under the key
    ``"<eos>"``.  Each candidate is scored by the minimum loss over its
    completions: the stop-now completion, optionally the model's greedy
    completion (``greedy_anchor``, a stabilizer the trainer keeps on),
    and ``rollouts`` random completions — the paper's pure scheme is
    ``greedy_anchor=False`` with random rollouts only.
    """
    rng = rng or random.Random(0)
    prefix = list(state.prefix)
    scores: dict[str, float] = {}
    for token_id in model.candidate_ids(state):
        name = model.token_name(token_id)
        if token_id == model.eos_id:
            scores[name] = min_matching_loss(prefix, truths, alpha)
            continue
        advanced = state.advance(name)
        remaining = max_length - len(prefix) - 1
        best = float("inf")
        completions: list[list[str]] = [[]]
        if remaining > 0:
            if greedy_anchor:
                completions.append(greedy_decode(model, advanced,
                                                 max_length=remaining))
            for __ in range(rollouts):
                completions.append(sample_decode(
                    model, advanced, temperature=temperature,
                    max_length=remaining, rng=rng))
        for completion in completions:
            full = prefix + [name] + completion
            best = min(best, min_matching_loss(full, truths, alpha))
            if best == 0.0:
                break
        scores[name] = best
    return scores


def rollout_decode(model: ChainLanguageModel, state: GenerationState,
                   truths: Sequence[Chain], rollouts: int = 4,
                   alpha: float = 1.0, max_length: int = 8,
                   temperature: float = 1.0,
                   rng: random.Random | None = None,
                   greedy_anchor: bool = True) -> list[str]:
    """Full search-based prediction: extend until EOS wins or the cap.

    Requires ground-truth chains, so this is the *training-time* decoder
    (and the evaluation oracle for the E9 ablation).
    """
    if max_length < 1:
        raise ModelError("max_length must be >= 1")
    rng = rng or random.Random(0)
    current = state
    chain: list[str] = []
    for __ in range(max_length):
        scores = score_candidates(model, current, truths, rollouts=rollouts,
                                  alpha=alpha, max_length=max_length,
                                  temperature=temperature, rng=rng,
                                  greedy_anchor=greedy_anchor)
        # lowest loss wins; EOS wins ties (prefer stopping when equal)
        best_name = min(
            scores,
            key=lambda name: (scores[name], 0 if name == "<eos>" else 1,
                              name))
        if best_name == "<eos>":
            break
        chain.append(best_name)
        current = current.advance(best_name)
    return chain
