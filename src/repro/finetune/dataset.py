"""Synthetic finetuning corpus (the substitution for logged user sessions).

The paper recruits chemistry students, logs their manual API calls, and
extracts (question, API chain) pairs.  Offline we template the same
artifact: each :class:`QuestionTemplate` couples natural phrasings of a
task with its ground-truth chain(s) — several *equivalent* chains where
step order is interchangeable, exactly the one-to-many structure the
search-based prediction is designed for.  Questions get filler noise and
per-kind graph context; the candidate-API set comes from a real
retriever when provided, else from gold APIs plus random distractors.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from ..apis.registry import APIRegistry
from ..config import SequencerConfig
from ..errors import FinetuneError
from ..graphs.generators import (
    knowledge_graph,
    molecule_like_graph,
    social_network,
)
from ..llm.chain_model import GenerationState, TrainingExample
from ..llm.intent import CATEGORY_ROUTING
from ..retrieval.api_retriever import APIRetriever
from ..sequencer.serializer import GraphSequentializer


@dataclass(frozen=True)
class QuestionTemplate:
    """Task phrasings + equivalent ground-truth chains + graph kind."""

    phrasings: tuple[str, ...]
    chains: tuple[tuple[str, ...], ...]
    graph_kind: str  # "social" | "molecule" | "knowledge" | "any"


TEMPLATES: tuple[QuestionTemplate, ...] = (
    # ---- understanding (scenario 1) -------------------------------
    QuestionTemplate(
        ("write a brief report for this graph",
         "summarize this social network",
         "give me an overview of the network",
         "describe the structure of this graph"),
        (("predict_graph_type", "graph_summary", "detect_communities",
          "find_influencers", "generate_report"),
         ("predict_graph_type", "graph_summary", "find_influencers",
          "detect_communities", "generate_report")),
        "social"),
    QuestionTemplate(
        ("write a report about this molecule",
         "describe the chemical properties of this molecule",
         "give me a profile of this compound"),
        (("predict_graph_type", "describe_molecule", "predict_toxicity",
          "predict_solubility", "generate_report"),
         ("predict_graph_type", "describe_molecule", "predict_solubility",
          "predict_toxicity", "generate_report")),
        "molecule"),
    QuestionTemplate(
        ("profile this knowledge graph",
         "summarize the entities and relations",
         "report on the knowledge base"),
        (("predict_graph_type", "knowledge_profile", "mine_rules",
          "generate_report"),),
        "knowledge"),
    # ---- comparison (scenario 2) -----------------------------------
    QuestionTemplate(
        ("what molecules are similar to this one",
         "find similar molecules in the database",
         "search for compounds that resemble this molecule",
         "which known molecules look like this structure"),
        (("similar_molecules",),),
        "molecule"),
    # ---- cleaning (scenario 3) --------------------------------------
    QuestionTemplate(
        ("clean this knowledge graph",
         "remove the noise from this graph",
         "fix the incorrect and missing facts",
         "denoise the knowledge base and save it"),
        (("detect_incorrect_edges", "remove_flagged_edges",
          "predict_missing_edges", "add_predicted_edges", "export_graph"),
         ("predict_missing_edges", "add_predicted_edges",
          "detect_incorrect_edges", "remove_flagged_edges",
          "export_graph")),
        "knowledge"),
    QuestionTemplate(
        ("which facts in this graph are wrong",
         "detect the incorrect edges",
         "find mislabeled facts"),
        (("detect_incorrect_edges",),),
        "knowledge"),
    QuestionTemplate(
        ("what facts are missing from this graph",
         "predict the missing edges",
         "infer absent links"),
        (("predict_missing_edges",),),
        "knowledge"),
    # ---- single-shot compute questions ------------------------------
    QuestionTemplate(
        ("how many nodes does the graph have",
         "count the vertices",
         "what is the size of the graph in nodes"),
        (("count_nodes",),), "any"),
    QuestionTemplate(
        ("how many edges are there",
         "count the links of this graph"),
        (("count_edges",),), "any"),
    QuestionTemplate(
        ("how dense is this graph",
         "compute the density"),
        (("graph_density",),), "any"),
    QuestionTemplate(
        ("what is the diameter of the graph",
         "compute the longest shortest path"),
        (("graph_diameter",),), "any"),
    QuestionTemplate(
        ("detect the communities of this network",
         "find groups or clusters in the social network",
         "partition the network into communities"),
        (("detect_communities",),), "social"),
    QuestionTemplate(
        ("who are the most influential members",
         "find the influencers of the network",
         "rank the important users"),
        (("find_influencers",),), "social"),
    QuestionTemplate(
        ("find the bridges and cut members of the network",
         "analyze the connectivity weak points"),
        (("social_connectivity",),), "social"),
    QuestionTemplate(
        ("how clustered is the graph",
         "compute the clustering coefficient"),
        (("clustering",),), "any"),
    QuestionTemplate(
        ("count the triangles",
         "how many triangles does the graph contain"),
        (("count_triangles",),), "any"),
    QuestionTemplate(
        ("what is the molecular formula",
         "compute the formula of this molecule"),
        (("molecular_formula",),), "molecule"),
    QuestionTemplate(
        ("is this molecule toxic",
         "predict the toxicity of the compound"),
        (("predict_toxicity",),), "molecule"),
    QuestionTemplate(
        ("how soluble is this molecule",
         "predict the aqueous solubility"),
        (("predict_solubility",),), "molecule"),
    QuestionTemplate(
        ("is this compound drug like",
         "check lipinski rule of five"),
        (("druglikeness",),), "molecule"),
    QuestionTemplate(
        ("rank the nodes by pagerank",
         "which nodes have the highest pagerank"),
        (("rank_pagerank",),), "any"),
    QuestionTemplate(
        ("find the densest core of the graph",
         "compute the k core decomposition"),
        (("kcore_decomposition",),), "any"),
    QuestionTemplate(
        ("what motifs appear in the graph",
         "count the motifs"),
        (("motif_profile",),), "any"),
    QuestionTemplate(
        ("do hubs connect to hubs",
         "measure the degree assortativity of the graph"),
        (("assortativity",),), "any"),
    QuestionTemplate(
        ("is the network homophilous",
         "do similar members connect to each other"),
        (("homophily",),), "social"),
    QuestionTemplate(
        ("what molecule is this",
         "identify this compound",
         "do you recognize this molecule"),
        (("identify_molecule",),), "molecule"),
    QuestionTemplate(
        ("how similar are these two graphs",
         "compare the two uploaded graphs",
         "measure the distance between the graphs"),
        (("compare_graphs",),), "any"),
)

#: Deliberately ambiguous templates: the *same phrasings* appear for all
#: three graph kinds with kind-specific gold chains, so only the
#: sequentialized graph can disambiguate — the corpus-level test of the
#: paper's "graph-aware LLM" claim (benchmark E12).
_AMBIGUOUS_PHRASINGS = (
    "write a brief report for G",
    "analyze this graph",
    "tell me about the uploaded graph",
    "what can you say about G",
)
AMBIGUOUS_TEMPLATES: tuple[QuestionTemplate, ...] = (
    QuestionTemplate(
        _AMBIGUOUS_PHRASINGS,
        (("predict_graph_type", "graph_summary", "detect_communities",
          "find_influencers", "generate_report"),),
        "social"),
    QuestionTemplate(
        _AMBIGUOUS_PHRASINGS,
        (("predict_graph_type", "describe_molecule", "predict_toxicity",
          "predict_solubility", "generate_report"),),
        "molecule"),
    QuestionTemplate(
        _AMBIGUOUS_PHRASINGS,
        (("predict_graph_type", "knowledge_profile", "mine_rules",
          "generate_report"),),
        "knowledge"),
)

_FILLERS_PREFIX = ("", "please ", "could you ", "hey, ", "i need you to ")
_FILLERS_SUFFIX = ("", " for G", " for my graph", " thanks", " quickly")


def _inject_typo(text: str, rng: random.Random) -> str:
    """One character-level typo: swap two adjacent letters or drop one."""
    letters = [i for i, ch in enumerate(text) if ch.isalpha()]
    if len(letters) < 4:
        return text
    position = rng.choice(letters[1:-1])
    if rng.random() < 0.5 and position + 1 < len(text):
        chars = list(text)
        chars[position], chars[position + 1] = (chars[position + 1],
                                                chars[position])
        return "".join(chars)
    return text[:position] + text[position + 1:]


@dataclass(frozen=True)
class CorpusSpec:
    """Parameters of one corpus build."""

    n_examples: int = 500
    seed: int = 0
    #: Candidate-set size when no retriever is given (gold + distractors).
    candidate_pool: int = 8
    #: Attach sequentialized-graph features to each example.
    with_graph_tokens: bool = True
    #: Fraction of examples reserved for evaluation.
    test_fraction: float = 0.2
    #: Rotate which equivalent chain comes first per example, mimicking
    #: the paper's logs where different users solve the same task with
    #: different (equivalent) API orderings.  Token-level training
    #: teacher-forces on the first chain, so this is what separates the
    #: baseline from the matching objective (E8).
    shuffle_equivalent: bool = True
    #: Fraction of examples drawn from :data:`AMBIGUOUS_TEMPLATES`
    #: (identical phrasings across graph kinds).  Ambiguous examples get
    #: ``allowed = all APIs`` so that only the graph tokens — not
    #: category routing — can disambiguate the gold chain.
    ambiguous_fraction: float = 0.0
    #: Whether graph tokens include the motif super-graph level
    #: (ablated by the E12 benchmark).
    multi_level: bool = True
    #: Fraction of examples whose question gets a character-level typo
    #: (adjacent-swap or deletion); the hashed char n-grams of the
    #: embedder should keep retrieval and decoding robust to these.
    typo_rate: float = 0.0
    #: Hold out each template's *last* phrasing for the test split:
    #: training never sees it, so test accuracy measures paraphrase
    #: generalization instead of memorization.
    holdout_phrasings: bool = False


def _graph_tokens_by_kind(seed: int, variants: int = 6,
                          multi_level: bool = True
                          ) -> dict[str, list[tuple[tuple[str, int],
                                                    ...]]]:
    """A pool of sequentialized graphs per kind.

    Several differently-sized/seeded instances per kind keep the model
    from memorizing one token bag and force genuine graph-feature
    generalization (exercised hard by the E12 ambiguous corpus).
    """
    sequencer = GraphSequentializer(SequencerConfig(
        path_length=2, max_paths=512, multi_level=multi_level))
    pools: dict[str, list[tuple[tuple[str, int], ...]]] = {"any": [()]}
    for kind in ("social", "molecule", "knowledge"):
        pools[kind] = []
        for i in range(variants):
            instance_seed = seed * 101 + i
            if kind == "social":
                graph = social_network(24 + 6 * i, 2 + i % 3,
                                       seed=instance_seed)
            elif kind == "molecule":
                graph = molecule_like_graph(1 + i % 3, 2 + i % 4,
                                            seed=instance_seed)
            else:
                graph = knowledge_graph(18 + 4 * i, 50 + 10 * i,
                                        seed=instance_seed)
            counts = sequencer.sequentialize(graph).feature_counts
            pools[kind].append(
                GenerationState.graph_tokens_from_counter(counts))
    return pools


def build_corpus(registry: APIRegistry, spec: CorpusSpec | None = None,
                 retriever: APIRetriever | None = None
                 ) -> tuple[list[TrainingExample], list[TrainingExample]]:
    """Generate ``(train, test)`` example lists.

    Gold chains are validated against ``registry`` so a template drift
    fails loudly rather than teaching the model unknown APIs.
    """
    spec = spec or CorpusSpec()
    if spec.n_examples < 2:
        raise FinetuneError("corpus needs at least 2 examples")
    rng = random.Random(spec.seed)
    known = set(registry.names())
    for template in TEMPLATES:
        for chain in template.chains:
            missing = [name for name in chain if name not in known]
            if missing:
                raise FinetuneError(
                    f"template chain references unknown APIs {missing}")
    token_pools = (_graph_tokens_by_kind(spec.seed,
                                         multi_level=spec.multi_level)
                   if spec.with_graph_tokens else
                   {"any": [()], "social": [()], "molecule": [()],
                    "knowledge": [()]})
    all_names = registry.names()

    n_test = max(1, int(spec.n_examples * spec.test_fraction))
    examples: list[TrainingExample] = []
    for index in range(spec.n_examples):
        ambiguous = rng.random() < spec.ambiguous_fraction
        template = rng.choice(AMBIGUOUS_TEMPLATES if ambiguous
                              else TEMPLATES)
        if spec.holdout_phrasings and len(template.phrasings) > 1:
            # the first n_examples indexes become the test split below;
            # they get the held-out (last) phrasing exclusively
            if index < n_test:
                phrasing = template.phrasings[-1]
            else:
                phrasing = rng.choice(template.phrasings[:-1])
        else:
            phrasing = rng.choice(template.phrasings)
        question = (rng.choice(_FILLERS_PREFIX) + phrasing
                    + rng.choice(_FILLERS_SUFFIX))
        if rng.random() < spec.typo_rate:
            question = _inject_typo(question, rng)
        gold_apis = {name for chain in template.chains for name in chain}
        if ambiguous:
            # kind-independent candidates: the union of all ambiguous
            # templates' APIs, so retrieval features cannot leak which
            # graph kind the example came from (only graph tokens can)
            union = sorted({name
                            for tpl in AMBIGUOUS_TEMPLATES
                            for chain in tpl.chains
                            for name in chain})
            retrieved = tuple(union)
        elif retriever is not None:
            # retrieve exactly as the inference pipeline does: with the
            # graph type's category routing applied
            categories = CATEGORY_ROUTING.get(template.graph_kind,
                                              CATEGORY_ROUTING["generic"])
            retrieved = retriever.retrieve_names(question,
                                                 k=spec.candidate_pool,
                                                 categories=categories)
            # guarantee every gold API is decodable
            retrieved = tuple(dict.fromkeys(
                list(retrieved) + sorted(gold_apis)))
        else:
            distractors = [name for name in all_names
                           if name not in gold_apis]
            rng.shuffle(distractors)
            n_extra = max(0, spec.candidate_pool - len(gold_apis))
            pool = sorted(gold_apis) + distractors[:n_extra]
            rng.shuffle(pool)
            retrieved = tuple(pool)
        chains = list(template.chains)
        if spec.shuffle_equivalent and len(chains) > 1:
            rng.shuffle(chains)
        if ambiguous:
            # no category routing: the graph tokens carry the signal
            allowed = tuple(all_names)
        else:
            categories = CATEGORY_ROUTING.get(template.graph_kind,
                                              CATEGORY_ROUTING["generic"])
            allowed = tuple(s.name
                            for s in registry.by_category(*categories))
        examples.append(TrainingExample(
            question=question,
            target_chains=tuple(chains),
            graph_tokens=rng.choice(token_pools[template.graph_kind]),
            retrieved=retrieved,
            allowed=allowed,
        ))
    return examples[n_test:], examples[:n_test]
