"""Chain-quality metrics for finetuning evaluation."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from ..llm.chain_model import ChainLanguageModel, TrainingExample
from ..llm.decoding import greedy_decode
from .losses import min_matching_loss

Chain = Sequence[str]
Decoder = Callable[[ChainLanguageModel, TrainingExample], list[str]]


@dataclass(frozen=True)
class ChainMetrics:
    """Aggregate decode quality over an evaluation corpus."""

    n_examples: int
    #: Fraction decoding to *some* ground-truth chain exactly.
    exact_match: float
    #: Mean node matching-based loss against the closest ground truth.
    mean_matching_loss: float
    #: Fraction whose API *set* equals some ground truth's set.
    set_match: float
    #: Mean generated-chain length.
    mean_length: float

    def row(self) -> str:
        return (f"n={self.n_examples:<5} exact={self.exact_match:6.3f} "
                f"set={self.set_match:6.3f} "
                f"loss={self.mean_matching_loss:7.3f} "
                f"len={self.mean_length:5.2f}")


def _default_decoder(model: ChainLanguageModel,
                     example: TrainingExample) -> list[str]:
    return greedy_decode(model, example.state())


def evaluate_model(model: ChainLanguageModel,
                   examples: Sequence[TrainingExample],
                   decoder: Decoder | None = None,
                   alpha: float = 1.0) -> ChainMetrics:
    """Decode every example and score against its ground-truth chains."""
    decoder = decoder or _default_decoder
    if not examples:
        raise ValueError("no evaluation examples")
    exact = 0
    set_hits = 0
    losses = []
    lengths = []
    for example in examples:
        generated = tuple(decoder(model, example))
        lengths.append(len(generated))
        if any(generated == tuple(truth)
               for truth in example.target_chains):
            exact += 1
        if any(set(generated) == set(truth)
               for truth in example.target_chains):
            set_hits += 1
        losses.append(min_matching_loss(generated, example.target_chains,
                                        alpha))
    n = len(examples)
    return ChainMetrics(
        n_examples=n,
        exact_match=exact / n,
        mean_matching_loss=sum(losses) / n,
        set_match=set_hits / n,
        mean_length=sum(lengths) / n,
    )
