"""Deterministic graph snapshots.

A snapshot is the canonical JSON serialization of a graph's full state
*in insertion order* — nodes and edges appear exactly in the order the
graph reports them.  Because replaying an edit sequence is itself
deterministic, ``materialize(snapshot) + replay(tail)`` reproduces not
just an equal graph but the *identical* iteration order, which is why
``graph_bytes`` of the two paths is bit-identical (the PR's parity
gate).
"""

from __future__ import annotations

import json
from typing import Any

from ..errors import StoreError
from ..graphs.graph import DiGraph, Graph

SNAPSHOT_FORMAT = 1


def graph_to_document(graph: Graph) -> dict[str, Any]:
    """JSON document of ``graph`` preserving insertion order."""
    return {
        "format": SNAPSHOT_FORMAT,
        "directed": graph.directed,
        "name": graph.name,
        "nodes": [[node, graph.node_attrs(node)]
                  for node in graph.nodes()],
        "edges": [[u, v, graph.edge_attrs(u, v)]
                  for u, v in graph.edges()],
    }


def graph_bytes(graph: Graph) -> bytes:
    """Canonical snapshot bytes (the store's bit-identity currency)."""
    document = graph_to_document(graph)
    return (json.dumps(document, sort_keys=True, separators=(",", ":"))
            + "\n").encode("utf-8")


def graph_from_document(document: dict[str, Any]) -> Graph:
    """Materialize a snapshot document back into a graph."""
    if document.get("format") != SNAPSHOT_FORMAT:
        raise StoreError(
            f"unsupported snapshot format {document.get('format')!r}")
    directed = bool(document.get("directed", False))
    name = document.get("name", "")
    graph: Graph = DiGraph(name=name) if directed else Graph(name=name)
    try:
        for node, attrs in document["nodes"]:
            graph.add_node(_as_node(node), **attrs)
        for u, v, attrs in document["edges"]:
            graph.add_edge(_as_node(u), _as_node(v), **attrs)
    except (KeyError, TypeError, ValueError) as exc:
        raise StoreError(f"malformed snapshot document: {exc}") from exc
    return graph


def graph_from_bytes(payload: bytes) -> Graph:
    try:
        document = json.loads(payload.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise StoreError(f"undecodable snapshot: {exc}") from exc
    if not isinstance(document, dict):
        raise StoreError("malformed snapshot: not an object")
    return graph_from_document(document)


def _as_node(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)):
        return value
    raise StoreError(f"snapshot node id must be a JSON scalar, got "
                     f"{type(value).__name__}")
