"""Edit-log records: typed graph mutations with CRC-guarded framing.

A record is a JSON object with an ``op`` field; on disk each record is
one frame::

    length (uint32 LE) | crc32(payload) (uint32 LE) | payload

where ``payload`` is the canonical JSON encoding (sorted keys, compact
separators, ASCII-only).  Canonical encoding makes the log bytes a pure
function of the edit sequence, which is what the snapshot/replay parity
gate relies on.

Node ids must be JSON scalars (``str``/``int``/``float``/``bool``);
attribute values may be any JSON value.  Anything else is rejected at
record-construction time, so a record that made it into the log always
replays.
"""

from __future__ import annotations

import json
import struct
import zlib
from typing import Any, Iterator

from ..errors import StoreCorruptionError, StoreError
from ..graphs.graph import Graph

_FRAME = struct.Struct("<II")
FRAME_HEADER_SIZE = _FRAME.size

#: Every operation the edit log understands, with its required fields.
OPS: dict[str, tuple[str, ...]] = {
    "add_node": ("id", "attrs"),
    "remove_node": ("id",),
    "add_edge": ("u", "v", "attrs"),
    "remove_edge": ("u", "v"),
    "set_node_attr": ("id", "key", "value"),
    "set_edge_attr": ("u", "v", "key", "value"),
}

_SCALAR_TYPES = (str, int, float, bool)


def _check_id(value: Any, field: str) -> Any:
    if isinstance(value, _SCALAR_TYPES):
        return value
    raise StoreError(
        f"node id field {field!r} must be a JSON scalar "
        f"(str/int/float/bool), got {type(value).__name__}")


def _check_json(value: Any, field: str) -> Any:
    """Reject values that do not survive a JSON round trip."""
    if value is None or isinstance(value, _SCALAR_TYPES):
        return value
    if isinstance(value, (list, tuple)):
        return [_check_json(item, field) for item in value]
    if isinstance(value, dict):
        checked: dict[str, Any] = {}
        for key, item in value.items():
            if not isinstance(key, str):
                raise StoreError(
                    f"attribute field {field!r}: dict keys must be str, "
                    f"got {type(key).__name__}")
            checked[key] = _check_json(item, field)
        return checked
    raise StoreError(
        f"attribute field {field!r} must be JSON-encodable, got "
        f"{type(value).__name__}")


def _check_attrs(attrs: dict[str, Any]) -> dict[str, Any]:
    if not isinstance(attrs, dict):
        raise StoreError(f"attrs must be a dict, got "
                         f"{type(attrs).__name__}")
    checked: dict[str, Any] = {}
    for key, value in attrs.items():
        if not isinstance(key, str):
            raise StoreError("attribute names must be str, got "
                             f"{type(key).__name__}")
        checked[key] = _check_json(value, key)
    return checked


def make_record(op: str, **fields: Any) -> dict[str, Any]:
    """Build and validate one edit record."""
    if op not in OPS:
        raise StoreError(f"unknown edit op {op!r}; expected one of "
                         f"{sorted(OPS)}")
    required = OPS[op]
    if set(fields) != set(required):
        raise StoreError(f"op {op!r} requires fields {required}, got "
                         f"{tuple(sorted(fields))}")
    record: dict[str, Any] = {"op": op}
    for field in required:
        value = fields[field]
        if field in ("id", "u", "v"):
            record[field] = _check_id(value, field)
        elif field == "attrs":
            record[field] = _check_attrs(value)
        elif field == "key":
            if not isinstance(value, str):
                raise StoreError("attribute names must be str, got "
                                 f"{type(value).__name__}")
            record[field] = value
        else:  # "value"
            record[field] = _check_json(value, field)
    return record


def apply_record(graph: Graph, record: dict[str, Any]) -> None:
    """Replay one record against ``graph`` (mutates in place)."""
    op = record.get("op")
    if op == "add_node":
        graph.add_node(record["id"], **record["attrs"])
    elif op == "remove_node":
        graph.remove_node(record["id"])
    elif op == "add_edge":
        graph.add_edge(record["u"], record["v"], **record["attrs"])
    elif op == "remove_edge":
        graph.remove_edge(record["u"], record["v"])
    elif op == "set_node_attr":
        graph.set_node_attr(record["id"], record["key"], record["value"])
    elif op == "set_edge_attr":
        graph.set_edge_attr(record["u"], record["v"], record["key"],
                            record["value"])
    else:
        raise StoreError(f"unknown edit op {op!r} in log record")


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------
def encode_record(record: dict[str, Any]) -> bytes:
    """One CRC-guarded frame for ``record`` (canonical JSON payload)."""
    payload = json.dumps(record, sort_keys=True,
                         separators=(",", ":")).encode("utf-8")
    return _FRAME.pack(len(payload), zlib.crc32(payload)) + payload


def iter_frames(blob: bytes) -> Iterator[tuple[int, dict[str, Any]]]:
    """Yield ``(end_offset, record)`` per complete, CRC-valid frame.

    Raises :class:`StoreCorruptionError` at the first incomplete or
    corrupt frame; ``end_offset`` on the exception's ``valid_size``
    attribute tells recovery where the intact prefix ends.
    """
    offset = 0
    total = len(blob)
    while offset < total:
        if offset + FRAME_HEADER_SIZE > total:
            raise _corruption(offset, "truncated frame header")
        length, crc = _FRAME.unpack_from(blob, offset)
        start = offset + FRAME_HEADER_SIZE
        end = start + length
        if end > total:
            raise _corruption(offset, "truncated frame payload")
        payload = blob[start:end]
        if zlib.crc32(payload) != crc:
            raise _corruption(offset, "CRC mismatch")
        try:
            record = json.loads(payload.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise _corruption(offset, f"undecodable payload: {exc}") from exc
        yield end, record
        offset = end


def _corruption(offset: int, reason: str) -> StoreCorruptionError:
    error = StoreCorruptionError(
        f"edit log corrupt at byte {offset}: {reason}")
    error.valid_size = offset  # type: ignore[attr-defined]
    return error
