"""The graph catalog: named durable graphs with epochs and views.

:class:`GraphCatalog` manages a directory of named graphs, each backed
by the snapshot + edit-log format of this package.  Concurrency model:

* **single writer** — every mutation of a graph goes through its
  :class:`GraphHandle`, serialized by a per-handle lock;
* **immutable reader views** — :meth:`GraphCatalog.view` returns a
  :class:`GraphView` carrying a private copy of the graph pinned to a
  ``(name, epoch, version)`` triple; later writes never show through.

Epochs advance on :meth:`GraphHandle.snapshot` (write state, start a
fresh log) and :meth:`GraphHandle.compact` (snapshot + prune old
epochs + rewrite the node ANN index).  Compaction notifies registered
listeners so e.g. :mod:`repro.serve` can evict sessions pinned to
epochs that no longer exist on disk.
"""

from __future__ import annotations

import queue
import shutil
import threading
from pathlib import Path
from typing import Any, Callable, Iterable

from ..errors import StoreError
from ..graphs.graph import DiGraph, Graph, Node
from . import layout
from .index import NodeVectorIndex
from .log import EditLog
from .records import apply_record, make_record
from .snapshot import graph_bytes, graph_from_bytes

MANIFEST_FORMAT = 1

CompactListener = Callable[[str, list[int]], None]


class CompactTicket:
    """Future for one queued :meth:`GraphCatalog.compact_async` job."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._done = threading.Event()
        self._epoch: int | None = None
        self._error: BaseException | None = None

    def done(self) -> bool:
        return self._done.is_set()

    def wait(self, timeout: float | None = None) -> int:
        """Block until the compaction ran; returns the new epoch.

        Re-raises the compaction's exception if it failed; raises
        :class:`~repro.errors.StoreError` on timeout.
        """
        if not self._done.wait(timeout):
            raise StoreError(
                f"compaction of {self.name!r} not done after {timeout}s")
        if self._error is not None:
            raise self._error
        assert self._epoch is not None
        return self._epoch

    def _finish(self, epoch: int | None = None,
                error: BaseException | None = None) -> None:
        self._epoch = epoch
        self._error = error
        self._done.set()


class GraphView:
    """An immutable reader view pinned to one catalog epoch/version."""

    def __init__(self, name: str, epoch: int, version: int,
                 graph: Graph) -> None:
        self.name = name
        #: Epoch whose log contained the last edit visible here.
        self.epoch = epoch
        #: Total edit count at view time (monotonic across epochs).
        self.version = version
        self._graph = graph

    @property
    def graph(self) -> Graph:
        """The viewed graph (private copy — safe to mutate)."""
        return self._graph

    def __repr__(self) -> str:
        return (f"<GraphView {self.name!r} epoch={self.epoch} "
                f"version={self.version}>")


class GraphHandle:
    """Writer handle for one named graph (single-writer semantics)."""

    def __init__(self, catalog: "GraphCatalog", name: str) -> None:
        self.catalog = catalog
        self.name = name
        self._lock = threading.Lock()
        self._index: NodeVectorIndex | None = None
        manifest = layout.read_manifest(catalog.root, name)
        try:
            self.epoch = int(manifest["epoch"])
            self.directed = bool(manifest["directed"])
        except KeyError as exc:
            raise StoreError(
                f"manifest of graph {name!r} missing field {exc}") from exc
        self._graph = graph_from_bytes(layout.read_bytes(
            layout.snapshot_path(catalog.root, name, self.epoch)))
        self._log = EditLog(layout.log_path(catalog.root, name, self.epoch))
        records, dropped = self._log.recover()
        self.recovered_drop_bytes = dropped
        for record in records:
            apply_record(self._graph, record)
        #: Total edits applied across all epochs (from the manifest,
        #: plus the current log's tail).
        self.version = int(manifest.get("version", 0)) + len(records)

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def view(self) -> GraphView:
        """A private immutable copy of the current state."""
        with self._lock:
            return GraphView(self.name, self.epoch, self.version,
                             self._graph.copy())

    @property
    def graph(self) -> Graph:
        """The live graph — treat as read-only; edits go via methods."""
        return self._graph

    # ------------------------------------------------------------------
    # edits (apply in memory first, then log: a crash between the two
    # loses only the unlogged edit, never corrupts)
    # ------------------------------------------------------------------
    def add_node(self, node: Node, **attrs: Any) -> None:
        self._edit(make_record("add_node", id=node, attrs=attrs))

    def remove_node(self, node: Node) -> None:
        self._edit(make_record("remove_node", id=node))

    def add_edge(self, u: Node, v: Node, **attrs: Any) -> None:
        self._edit(make_record("add_edge", u=u, v=v, attrs=attrs))

    def remove_edge(self, u: Node, v: Node) -> None:
        self._edit(make_record("remove_edge", u=u, v=v))

    def set_node_attr(self, node: Node, key: str, value: Any) -> None:
        self._edit(make_record("set_node_attr", id=node, key=key,
                               value=value))

    def set_edge_attr(self, u: Node, v: Node, key: str,
                      value: Any) -> None:
        self._edit(make_record("set_edge_attr", u=u, v=v, key=key,
                               value=value))

    def ingest(self, graph: Graph) -> int:
        """Append ``graph``'s full content as one durable edit batch."""
        if graph.directed != self.directed:
            raise StoreError(
                f"cannot ingest {'directed' if graph.directed else 'undirected'} "
                f"graph into {'directed' if self.directed else 'undirected'} "
                f"store graph {self.name!r}")
        records = [make_record("add_node", id=node,
                               attrs=graph.node_attrs(node))
                   for node in graph.nodes()]
        records += [make_record("add_edge", u=u, v=v,
                                attrs=graph.edge_attrs(u, v))
                    for u, v in graph.edges()]
        with self._lock:
            for record in records:
                self._apply_locked(record)
            self._log.append_batch(records)
            self.version += len(records)
            self.catalog._count("store_log_appends", len(records))
            self._maybe_snapshot_locked()
        return len(records)

    def _edit(self, record: dict[str, Any]) -> None:
        with self._lock:
            with self.catalog._span("store:apply", op=record["op"],
                                    graph=self.name):
                self._apply_locked(record)
                self._log.append(record)
            self.version += 1
            self.catalog._count("store_log_appends")
            self._maybe_snapshot_locked()

    def _apply_locked(self, record: dict[str, Any]) -> None:
        op = record["op"]
        existed = (record["id"] in self._graph
                   if op in ("add_node", "set_node_attr") else False)
        apply_record(self._graph, record)
        self._index_update_locked(record, existed)

    def _index_update_locked(self, record: dict[str, Any],
                             existed: bool) -> None:
        """Stream a node-affecting edit into the lazy ANN index."""
        index = self._index
        if index is None:
            return
        op = record["op"]
        if op in ("add_node", "set_node_attr"):
            node = record["id"]
            attrs = self._graph.node_attrs(node)
            if existed:
                index.update_node(node, attrs)
            else:
                index.add_node(node, attrs)
            self.catalog._count("store_incremental_inserts")
            if existed:
                self.catalog._count("store_incremental_deletes")
        elif op == "remove_node":
            index.remove_node(record["id"])
            self.catalog._count("store_incremental_deletes")

    def _maybe_snapshot_locked(self) -> None:
        every = self.catalog.snapshot_every
        if every > 0 and self._log.record_count >= every:
            self._snapshot_locked()

    # ------------------------------------------------------------------
    # epochs
    # ------------------------------------------------------------------
    def snapshot(self) -> int:
        """Write current state as epoch ``k+1``; returns the new epoch."""
        with self._lock:
            return self._snapshot_locked()

    def _snapshot_locked(self) -> int:
        root = self.catalog.root
        new_epoch = self.epoch + 1
        with self.catalog._span("store:snapshot", graph=self.name,
                                epoch=new_epoch):
            layout.write_bytes_atomic(
                layout.snapshot_path(root, self.name, new_epoch),
                graph_bytes(self._graph))
            self._log.close()
            self._log = EditLog(layout.log_path(root, self.name, new_epoch))
            self.epoch = new_epoch
            self._write_manifest()
        self.catalog._count("store_snapshot_writes")
        return new_epoch

    def compact(self) -> int:
        """Snapshot, prune earlier epochs, rewrite the node index.

        Sessions or views pinned to pruned epochs are stale after this;
        the catalog's compact listeners are told which epochs survive.
        """
        with self._lock:
            with self.catalog._span("store:compact", graph=self.name):
                new_epoch = self._snapshot_locked()
                root = self.catalog.root
                for old in layout.list_epochs(root, self.name):
                    if old >= new_epoch:
                        continue
                    layout.snapshot_path(root, self.name, old).unlink(
                        missing_ok=True)
                    layout.log_path(root, self.name, old).unlink(
                        missing_ok=True)
                if self._index is not None:
                    self._index.compact()
                live = layout.list_epochs(root, self.name)
            self.catalog._count("store_compactions")
        for listener in list(self.catalog._compact_listeners):
            listener(self.name, live)
        return new_epoch

    def _write_manifest(self) -> None:
        layout.write_manifest(self.catalog.root, self.name, {
            "format": MANIFEST_FORMAT,
            "name": self.name,
            "directed": self.directed,
            "epoch": self.epoch,
            "version": self.version,
        })

    # ------------------------------------------------------------------
    # index + introspection
    # ------------------------------------------------------------------
    def node_index(self) -> NodeVectorIndex:
        """The incrementally maintained node ANN index (lazy build)."""
        with self._lock:
            if self._index is None:
                self._index = NodeVectorIndex().build_from(self._graph)
            return self._index

    def replay_from_genesis(self) -> Graph:
        """Rebuild state by replaying every surviving epoch log in order.

        Starts from the oldest snapshot still on disk.  While no
        compaction has pruned history, that is the graph's genesis
        (epoch 0 = empty), so the result is the *full-log replay* of
        the parity gate — byte-identical to the live graph.
        """
        root = self.catalog.root
        epochs = layout.list_epochs(root, self.name)
        if not epochs:
            raise StoreError(f"graph {self.name!r} has no snapshots")
        graph = graph_from_bytes(layout.read_bytes(
            layout.snapshot_path(root, self.name, epochs[0])))
        for epoch in epochs:
            log = EditLog(layout.log_path(root, self.name, epoch))
            for record in log.read_records():
                apply_record(graph, record)
        return graph

    def stats(self) -> dict[str, Any]:
        with self._lock:
            out: dict[str, Any] = {
                "name": self.name,
                "directed": self.directed,
                "epoch": self.epoch,
                "version": self.version,
                "nodes": self._graph.number_of_nodes(),
                "edges": self._graph.number_of_edges(),
                "log_records": self._log.record_count,
                "log_bytes": self._log.size_bytes,
            }
            if self._index is not None:
                out["index"] = self._index.stats()
            return out

    def close(self) -> None:
        self._log.close()


class GraphCatalog:
    """A directory of named durable graphs."""

    def __init__(self, root: str | Path, snapshot_every: int = 0,
                 metrics: Any = None, tracer: Any = None) -> None:
        if snapshot_every < 0:
            raise StoreError("snapshot_every must be >= 0")
        self.root = Path(root)
        #: Auto-snapshot once a log holds this many records (0 = never).
        self.snapshot_every = snapshot_every
        self.metrics = metrics
        self.tracer = tracer
        self._handles: dict[str, GraphHandle] = {}
        self._lock = threading.Lock()
        self._compact_listeners: list[CompactListener] = []
        #: Lazily-started daemon running queued compact_async jobs.
        self._maintenance: threading.Thread | None = None
        self._jobs: "queue.Queue[CompactTicket | None]" = queue.Queue()

    # ------------------------------------------------------------------
    # catalog operations
    # ------------------------------------------------------------------
    def create(self, name: str, directed: bool = False) -> GraphHandle:
        """Create an empty named graph at epoch 0."""
        layout.check_name(name)
        if self.exists(name):
            raise StoreError(f"graph {name!r} already exists")
        empty: Graph = DiGraph(name=name) if directed else Graph(name=name)
        layout.write_bytes_atomic(
            layout.snapshot_path(self.root, name, 0), graph_bytes(empty))
        layout.write_manifest(self.root, name, {
            "format": MANIFEST_FORMAT,
            "name": name,
            "directed": directed,
            "epoch": 0,
            "version": 0,
        })
        return self.open(name)

    def open(self, name: str) -> GraphHandle:
        """The (cached) writer handle for ``name``."""
        with self._lock:
            handle = self._handles.get(name)
            if handle is None:
                if not self.exists(name):
                    raise StoreError(f"no graph named {name!r} under "
                                     f"{self.root}")
                handle = GraphHandle(self, name)
                self._handles[name] = handle
            return handle

    def view(self, name: str) -> GraphView:
        return self.open(name).view()

    def names(self) -> list[str]:
        return layout.list_graph_names(self.root)

    def exists(self, name: str) -> bool:
        return layout.manifest_path(self.root, name).is_file()

    def drop(self, name: str) -> None:
        """Delete ``name`` and all its on-disk state."""
        with self._lock:
            handle = self._handles.pop(name, None)
            if handle is not None:
                handle.close()
            directory = layout.graph_dir(self.root, name)
            if not directory.is_dir():
                raise StoreError(f"no graph named {name!r} under "
                                 f"{self.root}")
            shutil.rmtree(directory)

    # ------------------------------------------------------------------
    # background maintenance
    # ------------------------------------------------------------------
    def compact_async(self, name: str) -> "CompactTicket":
        """Queue a compaction of ``name`` on the maintenance thread.

        Returns immediately with a :class:`CompactTicket`; serving
        threads never block on snapshot IO or epoch pruning.  Jobs run
        one at a time in submission order on a single lazily-started
        daemon thread, and compact listeners fire on that thread,
        outside every catalog and handle lock — a listener may call
        back into the catalog freely.  Unknown names fail fast here
        (not on the ticket).
        """
        if not self.exists(name):
            raise StoreError(f"no graph named {name!r} under "
                             f"{self.root}")
        ticket = CompactTicket(name)
        with self._lock:
            if self._maintenance is None:
                self._jobs = queue.Queue()
                self._maintenance = threading.Thread(
                    target=self._maintenance_loop,
                    name="catalog-maintenance", daemon=True)
                self._maintenance.start()
            self._jobs.put(ticket)
        return ticket

    def _maintenance_loop(self) -> None:
        while True:
            ticket = self._jobs.get()
            if ticket is None:
                return
            try:
                epoch = self.open(ticket.name).compact()
            except BaseException as exc:  # noqa: BLE001 - fail the ticket
                ticket._finish(error=exc)
            else:
                self._count("store_compactions_async")
                ticket._finish(epoch=epoch)

    def close(self) -> None:
        # stop the maintenance thread before closing handles: a
        # compaction running after its handle's log closed would corrupt
        # nothing but would fail confusingly
        with self._lock:
            maintenance, self._maintenance = self._maintenance, None
        if maintenance is not None:
            self._jobs.put(None)
            maintenance.join(timeout=30.0)
        with self._lock:
            for handle in self._handles.values():
                handle.close()
            self._handles = {}

    def __enter__(self) -> "GraphCatalog":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # observers
    # ------------------------------------------------------------------
    def add_compact_listener(self, listener: CompactListener) -> None:
        """Call ``listener(name, live_epochs)`` after each compaction."""
        self._compact_listeners.append(listener)

    def remove_compact_listener(self, listener: CompactListener) -> None:
        """Detach a listener; unknown listeners are ignored."""
        try:
            self._compact_listeners.remove(listener)
        except ValueError:
            pass

    def stats(self) -> dict[str, Any]:
        return {name: self.open(name).stats() for name in self.names()}

    # ------------------------------------------------------------------
    # obs plumbing (no-ops unless a registry/tracer was provided)
    # ------------------------------------------------------------------
    def _count(self, name: str, amount: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.incr(name, amount)

    def _span(self, name: str, **attrs: Any):
        if self.tracer is not None:
            return self.tracer.span(name, kind="store", **attrs)
        return _NULL_CONTEXT


class _NullContext:
    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: Any) -> None:
        return None


_NULL_CONTEXT = _NullContext()
