"""The append-only edit log: durable, CRC-framed, crash-recoverable.

An :class:`EditLog` wraps one ``epoch-<k>.editlog`` file.  Appends are
flushed + fsynced per batch, so a record is durable once
:meth:`append_batch` returns.  Opening a log scans its frames and — when
the tail is incomplete or fails its CRC (a crash mid-append) —
truncates the file back to the last complete record.  Corruption can
therefore only ever cost the torn tail record, never the intact prefix.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Any, Iterable

from ..errors import StoreCorruptionError
from . import layout
from .records import encode_record, iter_frames


class EditLog:
    """Append-only record log backed by one file."""

    def __init__(self, path: Path) -> None:
        self.path = Path(path)
        self._handle = None
        #: Records currently in the file (maintained on append).
        self.record_count = 0

    # ------------------------------------------------------------------
    # reading / recovery
    # ------------------------------------------------------------------
    def read_records(self) -> list[dict[str, Any]]:
        """Every complete record, raising on any corruption."""
        if not self.path.exists():
            return []
        records = [record for __, record
                   in iter_frames(layout.read_bytes(self.path))]
        self.record_count = len(records)
        return records

    def recover(self) -> tuple[list[dict[str, Any]], int]:
        """Read records, truncating a torn tail.

        Returns ``(records, dropped_bytes)`` where ``dropped_bytes`` is
        how much of the file was cut (0 on a clean log).
        """
        if not self.path.exists():
            self.record_count = 0
            return [], 0
        blob = layout.read_bytes(self.path)
        records: list[dict[str, Any]] = []
        valid_size = 0
        try:
            for end, record in iter_frames(blob):
                records.append(record)
                valid_size = end
        except StoreCorruptionError as exc:
            valid_size = getattr(exc, "valid_size", valid_size)
            layout.truncate_file(self.path, valid_size)
        dropped = len(blob) - valid_size if len(blob) > valid_size else 0
        self.record_count = len(records)
        return records, dropped

    # ------------------------------------------------------------------
    # appending
    # ------------------------------------------------------------------
    def append_batch(self, records: Iterable[dict[str, Any]]) -> int:
        """Append ``records`` as one durable flush; returns the count."""
        if self._handle is None:
            self._handle = layout.append_handle(self.path)
        frames = [encode_record(record) for record in records]
        if not frames:
            return 0
        self._handle.write(b"".join(frames))
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self.record_count += len(frames)
        return len(frames)

    def append(self, record: dict[str, Any]) -> None:
        self.append_batch([record])

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "EditLog":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    @property
    def size_bytes(self) -> int:
        return self.path.stat().st_size if self.path.exists() else 0
