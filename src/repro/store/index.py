"""Incrementally maintained ANN index over a stored graph's nodes.

The durable-store analogue of pgvector in the reference architecture:
each node's identity + attributes are embedded (deterministic feature
hashing) and kept searchable in a mutable :class:`~repro.ann.base.
AnnIndex`.  Catalog mutations stream into the index — node added ->
:meth:`insert <repro.ann.base.AnnIndex.insert>`, node removed ->
tombstoned delete, attribute set -> delete + re-insert — and a
background :meth:`compact` rewrites the index bit-compatibly with a
fresh build over the live vectors (the PR's incremental-index parity
gate).
"""

from __future__ import annotations

import json
from typing import Any, Callable

import numpy as np

from ..ann.base import AnnIndex
from ..ann.tau_mg import TauMGIndex
from ..embedding.hashing import HashingEmbedder
from ..errors import StoreError
from ..graphs.graph import Graph, Node

IndexFactory = Callable[[], AnnIndex]


def default_index_factory() -> AnnIndex:
    """The catalog's default mutable index: a small tau-MG graph."""
    return TauMGIndex(max_degree=8, candidate_pool=24, ef_search=32)


def node_text(node: Node, attrs: dict[str, Any]) -> str:
    """Deterministic embedding text for a node (id + attributes)."""
    return ("node " + json.dumps(node, sort_keys=True, default=repr)
            + " " + json.dumps(attrs, sort_keys=True, default=repr))


class NodeVectorIndex:
    """Mutable ANN index keyed by node id, fed by store edits."""

    def __init__(self, index_factory: IndexFactory | None = None,
                 dim: int = 64,
                 embedder: HashingEmbedder | None = None) -> None:
        self.index_factory = index_factory or default_index_factory
        self.index = self.index_factory()
        self.embedder = embedder or HashingEmbedder(dim=dim)
        self._vid_to_node: dict[int, Node] = {}
        self._node_to_vid: dict[Node, int] = {}
        self.incremental_inserts = 0
        self.incremental_deletes = 0
        self.compactions = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def build_from(self, graph: Graph) -> "NodeVectorIndex":
        """Fresh build over every node of ``graph`` (iteration order)."""
        self.index = self.index_factory()
        self._vid_to_node = {}
        self._node_to_vid = {}
        nodes = list(graph.nodes())
        if nodes:
            texts = [node_text(node, graph.node_attrs(node))
                     for node in nodes]
            self.index.build(self.embedder.embed_batch(texts))
            self._vid_to_node = dict(enumerate(nodes))
            self._node_to_vid = {node: vid for vid, node
                                 in enumerate(nodes)}
        return self

    # ------------------------------------------------------------------
    # incremental maintenance
    # ------------------------------------------------------------------
    def add_node(self, node: Node, attrs: dict[str, Any]) -> int:
        if node in self._node_to_vid:
            raise StoreError(f"node {node!r} already indexed")
        vid = self.index.insert(self.embedder.embed(
            node_text(node, attrs)))
        self._vid_to_node[vid] = node
        self._node_to_vid[node] = vid
        self.incremental_inserts += 1
        return vid

    def remove_node(self, node: Node) -> None:
        vid = self._node_to_vid.pop(node, None)
        if vid is None:
            raise StoreError(f"node {node!r} not indexed")
        del self._vid_to_node[vid]
        self.index.delete(vid)
        self.incremental_deletes += 1

    def update_node(self, node: Node, attrs: dict[str, Any]) -> int:
        """Attribute change: the node's vector is replaced."""
        self.remove_node(node)
        return self.add_node(node, attrs)

    def compact(self) -> None:
        """Rewrite the index over live vectors (fresh-build parity)."""
        id_map = self.index.compact()
        self._vid_to_node = {id_map[vid]: node for vid, node
                             in self._vid_to_node.items()}
        self._node_to_vid = {node: vid for vid, node
                             in self._vid_to_node.items()}
        self.compactions += 1

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def search_text(self, text: str,
                    k: int = 5) -> list[tuple[Node, float]]:
        """The ``k`` nodes whose embedding is nearest to ``text``."""
        if not self._node_to_vid:
            return []
        hits = self.index.search(self.embedder.embed(text), k)
        return [(self._vid_to_node[hit.vector_id], hit.distance)
                for hit in hits]

    def search_like(self, node: Node,
                    k: int = 5) -> list[tuple[Node, float]]:
        """Nearest neighbors of an already-indexed node (excluding it)."""
        vid = self._node_to_vid.get(node)
        if vid is None:
            raise StoreError(f"node {node!r} not indexed")
        assert self.index._data is not None
        hits = self.index.search(self.index._data[vid], k + 1)
        return [(self._vid_to_node[hit.vector_id], hit.distance)
                for hit in hits if hit.vector_id != vid][:k]

    @property
    def size(self) -> int:
        return len(self._node_to_vid)

    def live_vectors(self) -> np.ndarray:
        """Live vectors in ascending id order (the compaction input)."""
        if self.index._data is None:
            return np.empty((0, self.embedder.dim))
        return self.index._data[np.array(self.index.live_ids(),
                                         dtype=np.intp)]

    def stats(self) -> dict[str, Any]:
        return {
            "nodes": self.size,
            "tombstones": self.index.n_tombstones,
            "incremental_inserts": self.incremental_inserts,
            "incremental_deletes": self.incremental_deletes,
            "compactions": self.compactions,
        }
