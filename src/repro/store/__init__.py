"""repro.store — durable multi-graph catalog (see ``docs/STORE.md``).

The persistence layer of the reproduction: named property graphs live
in a :class:`GraphCatalog` directory, each backed by deterministic
snapshots plus a CRC-framed append-only edit log, with single-writer
epochs, immutable reader views, and an incrementally maintained node
ANN index (:class:`NodeVectorIndex`).

Quick start::

    from repro.store import GraphCatalog
    catalog = GraphCatalog("/tmp/graphs", snapshot_every=1000)
    handle = catalog.create("social")
    handle.add_edge("ada", "bob", weight=2.0)
    view = catalog.view("social")        # immutable copy, pinned epoch
    catalog.open("social").compact()     # roll epoch, prune history
"""

from .catalog import CompactTicket, GraphCatalog, GraphHandle, GraphView
from .index import NodeVectorIndex
from .log import EditLog
from .records import OPS, apply_record, make_record
from .snapshot import graph_bytes, graph_from_bytes, graph_to_document

__all__ = [
    "EditLog",
    "CompactTicket",
    "GraphCatalog",
    "GraphHandle",
    "GraphView",
    "NodeVectorIndex",
    "OPS",
    "apply_record",
    "graph_bytes",
    "graph_from_bytes",
    "graph_to_document",
    "make_record",
]
