"""``python -m repro.cli store``: manage a durable graph catalog.

Subcommands::

    store create  --root DIR NAME [--directed]
    store ingest  --root DIR NAME PATH      # .json / .graphml / .edges
    store ls      --root DIR [NAME]
    store compact --root DIR NAME
    store verify  --root DIR [NAME]

``verify`` is the offline integrity check: for each graph it scans the
edit log's CRC frames, confirms ``snapshot + log replay`` matches the
full-log replay byte-for-byte, and (with ``--index``) checks the node
ANN index rebuilt incrementally matches a fresh build.
"""

from __future__ import annotations

import argparse
import json
import sys

from ..errors import ChatGraphError
from .catalog import GraphCatalog
from .index import NodeVectorIndex
from .snapshot import graph_bytes


def _add_root(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--root", required=True,
                        help="catalog root directory")


def store_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.cli store",
        description="Manage a durable multi-graph catalog")
    sub = parser.add_subparsers(dest="command", required=True)

    p_create = sub.add_parser("create", help="create an empty graph")
    _add_root(p_create)
    p_create.add_argument("name")
    p_create.add_argument("--directed", action="store_true")

    p_ingest = sub.add_parser("ingest",
                              help="append a graph file's content")
    _add_root(p_ingest)
    p_ingest.add_argument("name")
    p_ingest.add_argument("path",
                          help="graph file (.json/.graphml/.edges)")
    p_ingest.add_argument("--create", action="store_true",
                          help="create the graph if missing")

    p_ls = sub.add_parser("ls", help="list graphs (or one graph's stats)")
    _add_root(p_ls)
    p_ls.add_argument("name", nargs="?")

    p_compact = sub.add_parser(
        "compact", help="snapshot + prune history + rewrite index")
    _add_root(p_compact)
    p_compact.add_argument("name")

    p_verify = sub.add_parser("verify", help="offline integrity check")
    _add_root(p_verify)
    p_verify.add_argument("name", nargs="?")
    p_verify.add_argument("--index", action="store_true",
                          help="also check incremental-index parity")

    args = parser.parse_args(argv)
    catalog = GraphCatalog(args.root)
    try:
        if args.command == "create":
            catalog.create(args.name, directed=args.directed)
            print(f"created {args.name!r} under {args.root}")
            return 0
        if args.command == "ingest":
            return _ingest(catalog, args)
        if args.command == "ls":
            return _ls(catalog, args)
        if args.command == "compact":
            handle = catalog.open(args.name)
            epoch = handle.compact()
            print(f"compacted {args.name!r} -> epoch {epoch}")
            return 0
        return _verify(catalog, args)
    except ChatGraphError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        catalog.close()


def _ingest(catalog: GraphCatalog, args: argparse.Namespace) -> int:
    from ..cli import load_graph

    graph = load_graph(args.path)
    if args.create and not catalog.exists(args.name):
        catalog.create(args.name, directed=graph.directed)
    handle = catalog.open(args.name)
    count = handle.ingest(graph)
    print(f"ingested {count} edits into {args.name!r} "
          f"(epoch {handle.epoch}, version {handle.version})")
    return 0


def _ls(catalog: GraphCatalog, args: argparse.Namespace) -> int:
    if args.name:
        print(json.dumps(catalog.open(args.name).stats(), indent=1))
        return 0
    names = catalog.names()
    if not names:
        print(f"(no graphs under {catalog.root})")
        return 0
    for name in names:
        stats = catalog.open(name).stats()
        kind = "digraph" if stats["directed"] else "graph"
        print(f"{name:<24} {kind:<8} epoch={stats['epoch']:<4} "
              f"version={stats['version']:<6} nodes={stats['nodes']:<6} "
              f"edges={stats['edges']}")
    return 0


def _verify(catalog: GraphCatalog, args: argparse.Namespace) -> int:
    names = [args.name] if args.name else catalog.names()
    problems: list[str] = []
    for name in names:
        handle = catalog.open(name)
        if handle.recovered_drop_bytes:
            problems.append(
                f"{name}: dropped {handle.recovered_drop_bytes} torn "
                "tail bytes during recovery")
        live = graph_bytes(handle.graph)
        replayed = graph_bytes(handle.replay_from_genesis())
        if live != replayed:
            problems.append(f"{name}: snapshot+tail replay differs from "
                            "full-log replay")
        if args.index:
            incremental = handle.node_index()
            fresh = NodeVectorIndex().build_from(handle.graph)
            if not _index_parity(incremental, fresh):
                problems.append(f"{name}: incremental node index "
                                "differs from fresh build")
        print(f"{name}: "
              + ("OK" if not any(p.startswith(name) for p in problems)
                 else "FAILED"))
    for problem in problems:
        print(f"problem: {problem}", file=sys.stderr)
    return 0 if not problems else 1


def _index_parity(incremental: NodeVectorIndex,
                  fresh: NodeVectorIndex) -> bool:
    """Same live vectors and the same hits for a probe query set."""
    import numpy as np

    a, b = incremental.live_vectors(), fresh.live_vectors()
    if a.shape != b.shape:
        return False
    if a.size and not np.array_equal(np.sort(a, axis=0),
                                     np.sort(b, axis=0)):
        return False
    if incremental.size != fresh.size:
        return False
    for node in list(incremental._node_to_vid)[:8]:
        if [n for n, __ in incremental.search_like(node, k=3)] != \
                [n for n, __ in fresh.search_like(node, k=3)]:
            return False
    return True
