"""On-disk layout of the graph store — the single owner of its paths.

One directory per named graph under the catalog root::

    <root>/<name>/manifest.json        catalog entry (directedness, epoch)
    <root>/<name>/epoch-<k>.snap       state snapshot opening epoch k
    <root>/<name>/epoch-<k>.editlog    CRC-framed edits applied since

Every ``open()`` of a store file happens in this package; the rest of
the codebase goes through :class:`~repro.store.catalog.GraphCatalog`.
An AST lint (``tests/test_store_path_lint.py``) enforces that the
reserved file-name tokens below never appear outside ``repro/store`` —
the on-disk format stays single-owner by construction.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Any

from ..errors import StoreError

#: Reserved file-name tokens; referencing them outside ``repro/store``
#: fails the store-path lint.
LOG_SUFFIX = ".editlog"
SNAPSHOT_SUFFIX = ".snap"
MANIFEST_NAME = "manifest.json"
RESERVED_TOKENS = (LOG_SUFFIX, SNAPSHOT_SUFFIX, MANIFEST_NAME)

#: Graph names double as directory names, so keep them path-safe.
_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,127}$")

_EPOCH_RE = re.compile(r"^epoch-(\d{6})$")


def check_name(name: str) -> str:
    """Validate a catalog graph name (path-safe slug); returns it."""
    if not isinstance(name, str) or not _NAME_RE.match(name):
        raise StoreError(
            f"invalid graph name {name!r}: expected a slug of letters, "
            "digits, '.', '_' or '-' (max 128 chars)")
    return name


def graph_dir(root: Path, name: str) -> Path:
    return root / check_name(name)


def manifest_path(root: Path, name: str) -> Path:
    return graph_dir(root, name) / MANIFEST_NAME


def snapshot_path(root: Path, name: str, epoch: int) -> Path:
    return graph_dir(root, name) / f"epoch-{epoch:06d}{SNAPSHOT_SUFFIX}"


def log_path(root: Path, name: str, epoch: int) -> Path:
    return graph_dir(root, name) / f"epoch-{epoch:06d}{LOG_SUFFIX}"


def list_epochs(root: Path, name: str) -> list[int]:
    """Epochs with a snapshot on disk, ascending."""
    directory = graph_dir(root, name)
    if not directory.is_dir():
        return []
    epochs = []
    for path in directory.iterdir():
        if path.suffix != SNAPSHOT_SUFFIX:
            continue
        match = _EPOCH_RE.match(path.stem)
        if match:
            epochs.append(int(match.group(1)))
    return sorted(epochs)


def list_graph_names(root: Path) -> list[str]:
    """Names with a manifest under ``root``, sorted."""
    if not root.is_dir():
        return []
    return sorted(path.name for path in root.iterdir()
                  if path.is_dir() and (path / MANIFEST_NAME).is_file())


# ----------------------------------------------------------------------
# raw file access (kept here so the format has exactly one owner)
# ----------------------------------------------------------------------
def read_bytes(path: Path) -> bytes:
    try:
        return path.read_bytes()
    except OSError as exc:
        raise StoreError(f"cannot read store file {path}: {exc}") from exc


def write_bytes_atomic(path: Path, payload: bytes) -> None:
    """Write via a temp file + rename so readers never see a torn file."""
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    try:
        tmp.write_bytes(payload)
        tmp.replace(path)
    except OSError as exc:
        raise StoreError(f"cannot write store file {path}: {exc}") from exc


def append_handle(path: Path):
    """An append-mode binary handle for the edit log."""
    path.parent.mkdir(parents=True, exist_ok=True)
    try:
        return open(path, "ab")
    except OSError as exc:
        raise StoreError(f"cannot open store log {path}: {exc}") from exc


def truncate_file(path: Path, size: int) -> None:
    try:
        with open(path, "r+b") as handle:
            handle.truncate(size)
    except OSError as exc:
        raise StoreError(f"cannot truncate store log {path}: {exc}") from exc


def read_manifest(root: Path, name: str) -> dict[str, Any]:
    path = manifest_path(root, name)
    try:
        document = json.loads(read_bytes(path).decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise StoreError(f"malformed manifest {path}: {exc}") from exc
    if not isinstance(document, dict):
        raise StoreError(f"malformed manifest {path}: not an object")
    return document


def write_manifest(root: Path, name: str, document: dict[str, Any]) -> None:
    payload = json.dumps(document, sort_keys=True, indent=1).encode("utf-8")
    write_bytes_atomic(manifest_path(root, name), payload + b"\n")
