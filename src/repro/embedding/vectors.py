"""Vector helpers: normalization and distance functions (numpy-based)."""

from __future__ import annotations

import numpy as np


def normalize(vector: np.ndarray) -> np.ndarray:
    """Return ``vector / ||vector||`` (the zero vector stays zero)."""
    norm = float(np.linalg.norm(vector))
    if norm == 0.0:
        return vector.astype(np.float64, copy=True)
    return vector / norm


def l2_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Euclidean distance."""
    return float(np.linalg.norm(np.asarray(a) - np.asarray(b)))


def cosine_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine similarity in ``[-1, 1]`` (0.0 if either vector is zero)."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    na, nb = float(np.linalg.norm(a)), float(np.linalg.norm(b))
    if na == 0.0 or nb == 0.0:
        return 0.0
    return float(np.dot(a, b) / (na * nb))


def cosine_distance(a: np.ndarray, b: np.ndarray) -> float:
    """``1 - cosine_similarity`` (in ``[0, 2]``)."""
    return 1.0 - cosine_similarity(a, b)
