"""Tokenization: lowercase word tokens, word n-grams, character n-grams."""

from __future__ import annotations

import re
from typing import Iterator

_TOKEN_RE = re.compile(r"[a-z0-9]+")

#: Words carrying almost no retrieval signal.
STOP_WORDS = frozenset({
    "a", "an", "and", "are", "as", "at", "be", "by", "can", "do", "for",
    "from", "g", "how", "i", "in", "is", "it", "its", "me", "my", "of",
    "on", "or", "please", "that", "the", "this", "to", "what", "which",
    "with", "you", "your",
})


def tokenize(text: str, drop_stop_words: bool = True) -> list[str]:
    """Lowercase alphanumeric word tokens, optionally minus stop words."""
    tokens = _TOKEN_RE.findall(text.lower())
    if drop_stop_words:
        tokens = [t for t in tokens if t not in STOP_WORDS]
    return tokens


def word_ngrams(tokens: list[str], n: int) -> Iterator[str]:
    """Yield space-joined word ``n``-grams of a token list."""
    if n < 1:
        raise ValueError("n must be >= 1")
    for i in range(len(tokens) - n + 1):
        yield " ".join(tokens[i:i + n])


def char_ngrams(text: str, n: int) -> Iterator[str]:
    """Yield character ``n``-grams of the normalized text.

    Text is lowercased and runs of non-alphanumerics collapse to single
    spaces, so ``char_ngrams`` is robust to punctuation and casing.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    normalized = " ".join(_TOKEN_RE.findall(text.lower()))
    for i in range(len(normalized) - n + 1):
        yield normalized[i:i + n]
