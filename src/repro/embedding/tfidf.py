"""TF-IDF weighting over a :class:`~repro.embedding.vocabulary.Vocabulary`."""

from __future__ import annotations

import math
from collections import Counter
from typing import Iterable

import numpy as np

from ..errors import EmbeddingError
from .tokenizer import tokenize
from .vocabulary import Vocabulary


class TfidfModel:
    """Sparse-free TF-IDF vectors over a fixed vocabulary.

    Vectors are dense numpy arrays of dimension ``len(vocabulary)``; use
    the :class:`~repro.embedding.hashing.HashingEmbedder` when a fixed,
    corpus-independent dimension is needed (as the ANN index does).
    """

    def __init__(self, vocabulary: Vocabulary) -> None:
        if len(vocabulary) == 0:
            raise EmbeddingError("vocabulary is empty")
        self.vocabulary = vocabulary

    @classmethod
    def fit(cls, documents: Iterable[str]) -> "TfidfModel":
        """Build vocabulary and model from a corpus in one step."""
        return cls(Vocabulary.from_corpus(documents))

    def idf(self, token: str) -> float:
        """Smoothed inverse document frequency of ``token``."""
        df = self.vocabulary.document_frequency(token)
        n = max(self.vocabulary.n_documents, 1)
        return math.log((1 + n) / (1 + df)) + 1.0

    def transform(self, text: str) -> np.ndarray:
        """L2-normalized TF-IDF vector of ``text``.

        Out-of-vocabulary tokens are ignored; an all-OOV text maps to the
        zero vector.
        """
        counts = Counter(tokenize(text))
        vector = np.zeros(len(self.vocabulary), dtype=np.float64)
        total = sum(counts.values())
        if total == 0:
            return vector
        for token, count in counts.items():
            idx = self.vocabulary.index(token)
            if idx is None:
                continue
            vector[idx] = (count / total) * self.idf(token)
        norm = float(np.linalg.norm(vector))
        if norm > 0:
            vector /= norm
        return vector

    def similarity(self, text_a: str, text_b: str) -> float:
        """Cosine similarity of two texts under this model."""
        return float(np.dot(self.transform(text_a), self.transform(text_b)))
