"""A corpus vocabulary with document frequencies."""

from __future__ import annotations

from collections import Counter
from typing import Iterable

from .tokenizer import tokenize


class Vocabulary:
    """Token inventory built from a corpus; tracks document frequency.

    Example::

        vocab = Vocabulary.from_corpus(["count the triangles",
                                        "find communities"])
        vocab.index("triangles")  # -> stable integer id
    """

    def __init__(self) -> None:
        self._token_to_id: dict[str, int] = {}
        self._doc_freq: Counter = Counter()
        self.n_documents = 0

    @classmethod
    def from_corpus(cls, documents: Iterable[str]) -> "Vocabulary":
        vocab = cls()
        for document in documents:
            vocab.add_document(document)
        return vocab

    def add_document(self, document: str) -> None:
        """Register a document's tokens (document frequency counts once)."""
        tokens = set(tokenize(document))
        for token in tokens:
            if token not in self._token_to_id:
                self._token_to_id[token] = len(self._token_to_id)
            self._doc_freq[token] += 1
        self.n_documents += 1

    def index(self, token: str) -> int | None:
        """Integer id of ``token`` or None if unseen."""
        return self._token_to_id.get(token)

    def document_frequency(self, token: str) -> int:
        return self._doc_freq.get(token, 0)

    def __len__(self) -> int:
        return len(self._token_to_id)

    def __contains__(self, token: object) -> bool:
        return token in self._token_to_id

    def tokens(self) -> list[str]:
        """All tokens in id order."""
        return sorted(self._token_to_id, key=self._token_to_id.get)  # type: ignore[arg-type]
