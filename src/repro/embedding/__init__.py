"""Text embedding substrate.

The paper's API-retrieval module embeds API descriptions and the user's
prompt text into one vector space and runs ANN search there.  This
package provides the (offline, deterministic) embedding sub-module:
tokenization, a corpus vocabulary, TF-IDF weighting, and a hashed
n-gram embedder producing fixed-dimension unit vectors.
"""

from .tokenizer import char_ngrams, tokenize, word_ngrams
from .vocabulary import Vocabulary
from .tfidf import TfidfModel
from .hashing import HashingEmbedder
from .vectors import cosine_distance, cosine_similarity, l2_distance, normalize

__all__ = [
    "char_ngrams",
    "tokenize",
    "word_ngrams",
    "Vocabulary",
    "TfidfModel",
    "HashingEmbedder",
    "cosine_distance",
    "cosine_similarity",
    "l2_distance",
    "normalize",
]
