"""Hashed n-gram embedder: corpus-independent fixed-dimension vectors.

This is the embedding sub-module of the paper's API-retrieval module
(Sec. II-A): both API descriptions and prompt texts are embedded here,
and the ANN index searches the resulting space.  Feature hashing (with a
signed hash to debias collisions) keeps the dimension fixed without a
training corpus; IDF weights can optionally be folded in from a fitted
:class:`~repro.embedding.tfidf.TfidfModel`.
"""

from __future__ import annotations

import hashlib
from collections import Counter

import numpy as np

from ..errors import EmbeddingError
from .tfidf import TfidfModel
from .tokenizer import char_ngrams, tokenize, word_ngrams


def _hash_feature(feature: str, salt: str = "") -> int:
    digest = hashlib.md5((salt + feature).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


class HashingEmbedder:
    """Embed text into ``dim``-dimensional unit vectors via feature hashing.

    Features are word unigrams/bigrams plus character trigrams; each
    feature hashes to one coordinate with a pseudo-random sign.

    Example::

        embedder = HashingEmbedder(dim=128)
        v = embedder.embed("count the triangles of G")
        assert abs(float(np.linalg.norm(v)) - 1.0) < 1e-9
    """

    def __init__(self, dim: int = 128, use_char_ngrams: bool = True,
                 tfidf: TfidfModel | None = None) -> None:
        if dim < 8:
            raise EmbeddingError("dim must be >= 8")
        self.dim = dim
        self.use_char_ngrams = use_char_ngrams
        self.tfidf = tfidf

    def _features(self, text: str) -> Counter:
        tokens = tokenize(text)
        features: Counter = Counter(tokens)
        features.update(word_ngrams(tokens, 2))
        if self.use_char_ngrams:
            # char n-grams get half weight: useful for typos, noisier
            for gram in char_ngrams(text, 3):
                features[f"c3:{gram}"] += 0.5
        return features

    def _feature_weight(self, feature: str, count: float) -> float:
        if self.tfidf is not None and " " not in feature \
                and not feature.startswith("c3:"):
            return count * self.tfidf.idf(feature)
        return float(count)

    def embed(self, text: str) -> np.ndarray:
        """Return the L2-normalized embedding of ``text``.

        Empty/stop-word-only text raises :class:`EmbeddingError` — the
        retrieval module should never index an empty description.
        """
        features = self._features(text)
        if not features:
            raise EmbeddingError(f"no features in text {text!r}")
        vector = np.zeros(self.dim, dtype=np.float64)
        for feature, count in features.items():
            h = _hash_feature(feature)
            index = h % self.dim
            sign = 1.0 if (h >> 32) & 1 else -1.0
            vector[index] += sign * self._feature_weight(feature, count)
        norm = float(np.linalg.norm(vector))
        if norm == 0.0:  # pragma: no cover - astronomically unlikely
            raise EmbeddingError("degenerate embedding (all collisions)")
        return vector / norm

    def embed_batch(self, texts: list[str]) -> np.ndarray:
        """Embed many texts into an ``(n, dim)`` matrix."""
        return np.vstack([self.embed(text) for text in texts])
