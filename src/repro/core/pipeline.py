"""The inference pipeline: prompt -> API chain (paper Fig. 1).

The stages — intent, graph-type routing, ANN retrieval, sequentialize,
generate, repair — are declared exactly once, as stage objects composed
into the :class:`~repro.core.stages.StageGraph` built by
:func:`~repro.core.stages.build_chat_graph`.  :meth:`ChatPipeline.process`
and :meth:`ChatPipeline.process_batch` are thin entry points driving
that one graph down its scalar and vectorized paths; cross-cutting
concerns (timing, tracing, profiling, caching) are middleware wrapping
each stage invocation, assembled on attach and absent from the hot path
when detached.  See :mod:`repro.core.stages` for the stage and
middleware contracts and ``docs/ARCHITECTURE.md`` for the tour.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

from ..apis.chain import APIChain
from ..apis.registry import APIRegistry
from ..config import ChatGraphConfig
from ..llm.chain_model import ChainLanguageModel
from ..llm.intent import GraphTypePredictor, IntentClassifier, TypePrediction
from ..llm.prompts import Prompt
from ..obs.trace import NULL_SPAN, NullSpan, Span
from ..retrieval.api_retriever import APIRetriever
from ..sequencer.serializer import GraphSequences, GraphSequentializer
from .fallbacks import FALLBACKS
from .stages import (
    CacheMiddleware,
    ProfilingMiddleware,
    StageContext,
    StageMiddleware,
    TimingMiddleware,
    TracingMiddleware,
    build_chat_graph,
)

#: Legacy aliases of the one fallback registry (see
#: :mod:`repro.core.fallbacks`).  These are the *same objects* the
#: repair stage consults, so the tables can never drift.
FALLBACK_CHAINS: dict[tuple[str, str], tuple[str, ...]] = FALLBACKS.chains
DEFAULT_FALLBACK: tuple[str, ...] = FALLBACKS.default


@dataclass
class PipelineResult:
    """Everything the pipeline produced for one prompt."""

    prompt: Prompt
    intent: str
    graph_type: str | None
    type_prediction: TypePrediction | None
    retrieved: tuple[str, ...]
    sequences: GraphSequences | None
    chain: APIChain
    #: True when the generated chain failed validation and the fallback
    #: replaced it.
    used_fallback: bool
    #: Per-stage seconds, keyed by the graph's observed stage names.
    timings: dict[str, float] = field(default_factory=dict)


class ChatPipeline:
    """Wires intent, routing, retrieval, sequentializer and the model.

    The stage graph is built once in ``__init__``; attaching a tracer,
    profiler or cache bundle rebuilds the middleware chain (outermost
    timing, then profiling, tracing, caching innermost — so cache hits
    still emit timing entries and trace spans).
    """

    def __init__(self, registry: APIRegistry, retriever: APIRetriever,
                 model: ChainLanguageModel,
                 config: ChatGraphConfig | None = None) -> None:
        self.registry = registry
        self.retriever = retriever
        self.model = model
        self.config = config or ChatGraphConfig()
        self.sequentializer = GraphSequentializer(self.config.sequencer)
        self.type_predictor = GraphTypePredictor()
        self.intent_classifier = IntentClassifier()
        self.fallbacks = FALLBACKS
        #: The declarative stage graph both entry points drive.
        self.graph = build_chat_graph(
            registry, retriever, model, self.config, self.sequentializer,
            self.type_predictor, self.intent_classifier, self.fallbacks)
        self._caches: Any = None
        self._tracer: Any = None
        self._profiler: Any = None
        self._middlewares: tuple[StageMiddleware, ...] = ()
        self._rebuild_middlewares()

    # ------------------------------------------------------------------
    # cross-cutting attachments (each rebuilds the middleware chain)
    # ------------------------------------------------------------------
    @property
    def middlewares(self) -> tuple[StageMiddleware, ...]:
        """The active middleware chain, outermost first."""
        return self._middlewares

    def _rebuild_middlewares(self) -> None:
        chain: list[StageMiddleware] = [TimingMiddleware()]
        if self._profiler is not None:
            chain.append(ProfilingMiddleware(self._profiler))
        if self._tracer is not None:
            chain.append(TracingMiddleware(self._tracer))
        if self._caches is not None:
            chain.append(CacheMiddleware(
                {stage.cache_name: getattr(self._caches, stage.cache_name)
                 for stage in self.graph
                 if stage.cache_name is not None
                 and hasattr(self._caches, stage.cache_name)}))
        self._middlewares = tuple(chain)

    @property
    def tracer(self) -> Any:
        """Optional :class:`repro.obs.Tracer`; every :meth:`process`
        call then emits a ``pipeline`` span with one ``stage`` child per
        observed stage (set via ``ChatGraph.set_tracer``)."""
        return self._tracer

    @tracer.setter
    def tracer(self, tracer: Any) -> None:
        self._tracer = tracer
        self._rebuild_middlewares()

    @property
    def profiler(self) -> Any:
        """Optional :class:`repro.obs.StageProfiler` accumulating
        per-stage wall/CPU totals across requests."""
        return self._profiler

    @profiler.setter
    def profiler(self, profiler: Any) -> None:
        self._profiler = profiler
        self._rebuild_middlewares()

    @property
    def caches(self) -> Any:
        """The attached :class:`repro.serve.cache.PipelineCaches`."""
        return self._caches

    def attach_caches(self, caches: Any) -> None:
        """Wire a cache bundle into the cache-declaring stages.

        Pass ``None`` to detach.  The bundle's ``retrieval`` cache
        backs the retrieval stage's :class:`~repro.core.stages.
        CacheMiddleware` memoization; the embedding cache additionally
        hooks the retriever's query embedder and the sequence cache the
        sequentializer, so repeated texts and graphs skip component
        work too.
        """
        self._caches = caches
        self.sequentializer.cache = (
            caches.sequences if caches is not None else None)
        self.retriever.embed_cache = (
            caches.embeddings if caches is not None else None)
        self._rebuild_middlewares()

    # ------------------------------------------------------------------
    # entry points
    # ------------------------------------------------------------------
    @contextmanager
    def _root(self, prompt: Prompt) -> Iterator[Span | NullSpan]:
        if self._tracer is None:
            yield NULL_SPAN
        else:
            with self._tracer.span("pipeline", kind="pipeline",
                                   has_graph=prompt.graph is not None
                                   ) as span:
                yield span

    def process(self, prompt: Prompt) -> PipelineResult:
        """Run every stage for ``prompt`` and return the proposed chain."""
        with self._root(prompt) as root:
            ctx = StageContext({"prompt": prompt})
            self.graph.run(ctx, self._middlewares)
            root.set(intent=ctx.intent, graph_type=ctx.graph_type,
                     used_fallback=ctx.used_fallback,
                     chain=ctx.chain.render())
            return self._result(ctx)

    def process_batch(self, prompts: list[Prompt],
                      return_exceptions: bool = False
                      ) -> list[PipelineResult | BaseException]:
        """Run the pipeline for many prompts with shared batched stages.

        Produces exactly the chains ``[self.process(p) for p in
        prompts]`` would — the same stage graph runs down its
        vectorized path: every stage now has a genuinely batched body
        (retrieval through the batched embed/search kernels, generation
        through :func:`~repro.llm.decoding.greedy_decode_batch`, intent
        via one shared scoring pass, graph-type and sequentialize via
        content-keyed graph grouping, repair via deduplicated registry
        validation), each result-identical to its scalar counterpart.
        Per-result ``timings`` report each prompt's amortized share
        (stage seconds divided by batch size), since the stage work is
        genuinely shared.

        Failure isolation follows the scalar path: a stage exception
        degrades only the prompt that raised it (see
        :meth:`~repro.core.stages.StageGraph.run_batch`).  By default
        the first recorded failure re-raises — the historical contract,
        where callers treat the batch as all-or-nothing.  With
        ``return_exceptions=True`` the failed slots hold the exception
        instances instead and healthy prompts still return results, so
        servers can fail requests individually.
        """
        if not prompts:
            return []
        ctxs = [StageContext({"prompt": prompt}) for prompt in prompts]
        if self._tracer is None:
            self.graph.run_batch(ctxs, self._middlewares)
        else:
            with self._tracer.span("pipeline:batch", kind="pipeline",
                                   batch_size=len(prompts)):
                self.graph.run_batch(ctxs, self._middlewares)
        results: list[PipelineResult | BaseException] = []
        for ctx in ctxs:
            if ctx.failure is not None:
                if not return_exceptions:
                    raise ctx.failure
                results.append(ctx.failure)
            else:
                results.append(self._result(ctx))
        return results

    @staticmethod
    def _result(ctx: StageContext) -> PipelineResult:
        return PipelineResult(
            prompt=ctx.prompt,
            intent=ctx.intent,
            graph_type=ctx.graph_type,
            type_prediction=ctx.type_prediction,
            retrieved=ctx.retrieved,
            sequences=ctx.sequences,
            chain=ctx.chain,
            used_fallback=ctx.used_fallback,
            timings=dict(ctx.timings),
        )

    @staticmethod
    def _fallback(graph_type: str | None, intent: str) -> tuple[str, ...]:
        """Legacy lookup, delegating to the one fallback registry."""
        return FALLBACKS.chain_for(graph_type, intent)
