"""The inference pipeline: prompt -> API chain (paper Fig. 1).

Stages, in order:

1. *intent* — classify the prompt text (understand/compare/clean/compute);
2. *graph type* — predict the uploaded graph's type; it selects the
   API categories the retrieval is allowed to return (scenario-1
   routing: social graphs get social APIs, molecules get chemistry);
3. *retrieval* — ANN search over API-description embeddings;
4. *sequentialize* — the graph sequentializer renders the graph for the
   model;
5. *generate* — the chain model decodes an API chain (greedy or beam);
6. *repair* — an invalid or empty chain falls back to a type/intent
   keyed default, so the pipeline always proposes something executable.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from ..apis.chain import APIChain
from ..apis.registry import APIRegistry, Category
from ..config import ChatGraphConfig
from ..errors import ChainError, EmbeddingError
from ..llm.chain_model import ChainLanguageModel, GenerationState
from ..llm.decoding import beam_decode, greedy_decode, greedy_decode_batch
from ..llm.intent import (
    CATEGORY_ROUTING,
    GraphTypePredictor,
    IntentClassifier,
    TypePrediction,
)
from ..llm.prompts import Prompt
from ..obs.trace import NULL_SPAN, Span
from ..retrieval.api_retriever import APIRetriever
from ..sequencer.serializer import GraphSequences, GraphSequentializer

#: (graph type, intent) -> fallback chain when generation fails.
FALLBACK_CHAINS: dict[tuple[str, str], tuple[str, ...]] = {
    ("social", "understand"): ("predict_graph_type", "graph_summary",
                               "detect_communities", "find_influencers",
                               "generate_report"),
    ("molecule", "understand"): ("predict_graph_type", "describe_molecule",
                                 "predict_toxicity", "predict_solubility",
                                 "generate_report"),
    ("knowledge", "understand"): ("predict_graph_type", "knowledge_profile",
                                  "mine_rules", "generate_report"),
    ("molecule", "compare"): ("similar_molecules",),
    ("knowledge", "clean"): ("detect_incorrect_edges",
                             "remove_flagged_edges",
                             "predict_missing_edges",
                             "add_predicted_edges", "export_graph"),
}
DEFAULT_FALLBACK: tuple[str, ...] = ("predict_graph_type", "graph_summary",
                                     "generate_report")


@dataclass
class PipelineResult:
    """Everything the pipeline produced for one prompt."""

    prompt: Prompt
    intent: str
    graph_type: str | None
    type_prediction: TypePrediction | None
    retrieved: tuple[str, ...]
    sequences: GraphSequences | None
    chain: APIChain
    #: True when the generated chain failed validation and the fallback
    #: replaced it.
    used_fallback: bool
    #: Per-stage seconds: intent/type/retrieval/sequentialize/generate.
    timings: dict[str, float] = field(default_factory=dict)


class ChatPipeline:
    """Wires intent, routing, retrieval, sequentializer and the model."""

    def __init__(self, registry: APIRegistry, retriever: APIRetriever,
                 model: ChainLanguageModel,
                 config: ChatGraphConfig | None = None) -> None:
        self.registry = registry
        self.retriever = retriever
        self.model = model
        self.config = config or ChatGraphConfig()
        self.sequentializer = GraphSequentializer(self.config.sequencer)
        self.type_predictor = GraphTypePredictor()
        self.intent_classifier = IntentClassifier()
        #: Optional :class:`repro.serve.cache.PipelineCaches`; attach via
        #: :meth:`attach_caches` to memoize the retrieval and
        #: sequentialize stages across requests.
        self.caches = None
        #: Optional :class:`repro.obs.Tracer`; every :meth:`process`
        #: call then emits a ``pipeline`` span with one ``stage`` child
        #: per stage (set via ``ChatGraph.set_tracer``).
        self.tracer = None
        #: Optional :class:`repro.obs.StageProfiler` accumulating
        #: per-stage wall/CPU totals across requests.
        self.profiler = None

    def attach_caches(self, caches) -> None:
        """Wire a cache bundle into the retrieval/sequentialize stages.

        Pass ``None`` to detach.  The embedding cache additionally hooks
        the retriever's query embedder, so repeated prompt texts skip
        the hashing-embedder featurization too.
        """
        self.caches = caches
        self.sequentializer.cache = (
            caches.sequences if caches is not None else None)
        self.retriever.embed_cache = (
            caches.embeddings if caches is not None else None)

    @contextmanager
    def _stage(self, name: str) -> Iterator[Span | NullSpan]:
        """Trace + profile one stage (a no-op when neither is wired)."""
        span: Span | NullSpan = NULL_SPAN
        if self.profiler is not None and self.tracer is not None:
            with self.profiler.profile(name), \
                    self.tracer.span(f"stage:{name}", kind="stage") as span:
                yield span
        elif self.tracer is not None:
            with self.tracer.span(f"stage:{name}", kind="stage") as span:
                yield span
        elif self.profiler is not None:
            with self.profiler.profile(name):
                yield span
        else:
            yield span

    @contextmanager
    def _root(self, prompt: Prompt) -> Iterator[Span | NullSpan]:
        if self.tracer is None:
            yield NULL_SPAN
        else:
            with self.tracer.span("pipeline", kind="pipeline",
                                  has_graph=prompt.graph is not None
                                  ) as span:
                yield span

    def process(self, prompt: Prompt) -> PipelineResult:
        """Run every stage for ``prompt`` and return the proposed chain."""
        with self._root(prompt) as root:
            return self._process(prompt, root)

    def _process(self, prompt: Prompt,
                 root: Span | NullSpan) -> PipelineResult:
        timings: dict[str, float] = {}

        start = time.perf_counter()
        with self._stage("intent") as span:
            intent = self.intent_classifier.predict(prompt.text)
            span.set(intent=intent)
        timings["intent"] = time.perf_counter() - start

        start = time.perf_counter()
        with self._stage("graph_type") as span:
            type_prediction = None
            graph_type = None
            if prompt.graph is not None:
                type_prediction = self.type_predictor.predict(prompt.graph)
                graph_type = type_prediction.graph_type
            span.set(graph_type=graph_type)
        timings["graph_type"] = time.perf_counter() - start

        start = time.perf_counter()
        with self._stage("retrieval") as span:
            categories = CATEGORY_ROUTING.get(graph_type or "generic",
                                              tuple(Category))
            try:
                retrieved = self._retrieve(prompt.text, categories)
            except EmbeddingError:
                # unembeddable text (e.g. punctuation only): no retrieval
                # conditioning; the fallback chain covers generation
                retrieved = ()
            span.set(n_retrieved=len(retrieved))
        timings["retrieval"] = time.perf_counter() - start

        start = time.perf_counter()
        with self._stage("sequentialize") as span:
            sequences = None
            graph_tokens: tuple[tuple[str, int], ...] = ()
            if prompt.graph is not None:
                sequences = self.sequentializer.sequentialize(prompt.graph)
                graph_tokens = GenerationState.graph_tokens_from_counter(
                    sequences.feature_counts)
            span.set(n_sequences=sequences.n_sequences if sequences else 0)
        timings["sequentialize"] = time.perf_counter() - start

        start = time.perf_counter()
        with self._stage("generate") as span:
            allowed = tuple(spec.name for spec in
                            self.registry.by_category(*categories))
            state = GenerationState(prompt_text=prompt.text,
                                    graph_tokens=graph_tokens,
                                    retrieved=retrieved,
                                    allowed=allowed)
            llm = self.config.llm
            if llm.beam_width > 1:
                names = beam_decode(self.model, state,
                                    beam_width=llm.beam_width,
                                    max_length=llm.max_chain_length)
            else:
                names = greedy_decode(self.model, state,
                                      max_length=llm.max_chain_length)
            span.set(n_generated=len(names))
        timings["generate"] = time.perf_counter() - start

        chain = APIChain.from_names(list(names))
        used_fallback = False
        try:
            chain.validate(self.registry)
        except ChainError:
            chain = APIChain.from_names(list(self._fallback(graph_type,
                                                            intent)))
            chain.validate(self.registry)
            used_fallback = True
        root.set(intent=intent, graph_type=graph_type,
                 used_fallback=used_fallback, chain=chain.render())

        return PipelineResult(
            prompt=prompt,
            intent=intent,
            graph_type=graph_type,
            type_prediction=type_prediction,
            retrieved=retrieved,
            sequences=sequences,
            chain=chain,
            used_fallback=used_fallback,
            timings=timings,
        )

    def process_batch(self, prompts: list[Prompt]) -> list[PipelineResult]:
        """Run the pipeline for many prompts with shared batched stages.

        Produces exactly the chains ``[self.process(p) for p in
        prompts]`` would — retrieval goes through the batched
        embed/search kernels and generation through
        :func:`~repro.llm.decoding.greedy_decode_batch`, both of which
        are result-identical to their scalar counterparts.  Per-result
        ``timings`` report each prompt's amortized share (stage seconds
        divided by batch size), since the stage work is genuinely
        shared.
        """
        if not prompts:
            return []
        n = len(prompts)
        if self.tracer is None:
            return self._process_batch(prompts)
        with self.tracer.span("pipeline:batch", kind="pipeline",
                              batch_size=n):
            return self._process_batch(prompts)

    def _process_batch(self, prompts: list[Prompt]) -> list[PipelineResult]:
        n = len(prompts)
        timings: dict[str, float] = {}

        start = time.perf_counter()
        with self._stage("intent") as span:
            intents = [self.intent_classifier.predict(p.text)
                       for p in prompts]
            span.set(batch_size=n)
        timings["intent"] = time.perf_counter() - start

        start = time.perf_counter()
        with self._stage("graph_type") as span:
            type_predictions: list[TypePrediction | None] = []
            graph_types: list[str | None] = []
            for prompt in prompts:
                if prompt.graph is not None:
                    prediction = self.type_predictor.predict(prompt.graph)
                    type_predictions.append(prediction)
                    graph_types.append(prediction.graph_type)
                else:
                    type_predictions.append(None)
                    graph_types.append(None)
            span.set(batch_size=n)
        timings["graph_type"] = time.perf_counter() - start

        start = time.perf_counter()
        with self._stage("retrieval") as span:
            categories_per = [
                CATEGORY_ROUTING.get(graph_type or "generic",
                                     tuple(Category))
                for graph_type in graph_types
            ]
            retrieved_per = self._retrieve_batch(
                [p.text for p in prompts], categories_per)
            span.set(batch_size=n)
        timings["retrieval"] = time.perf_counter() - start

        start = time.perf_counter()
        with self._stage("sequentialize") as span:
            sequences_per: list[GraphSequences | None] = []
            graph_tokens_per: list[tuple[tuple[str, int], ...]] = []
            for prompt in prompts:
                if prompt.graph is None:
                    sequences_per.append(None)
                    graph_tokens_per.append(())
                    continue
                sequences = self.sequentializer.sequentialize(prompt.graph)
                sequences_per.append(sequences)
                graph_tokens_per.append(
                    GenerationState.graph_tokens_from_counter(
                        sequences.feature_counts))
            span.set(batch_size=n)
        timings["sequentialize"] = time.perf_counter() - start

        start = time.perf_counter()
        with self._stage("generate") as span:
            llm = self.config.llm
            states = []
            for i, prompt in enumerate(prompts):
                allowed = tuple(
                    spec.name for spec in
                    self.registry.by_category(*categories_per[i]))
                states.append(GenerationState(
                    prompt_text=prompt.text,
                    graph_tokens=graph_tokens_per[i],
                    retrieved=retrieved_per[i],
                    allowed=allowed))
            if llm.beam_width > 1:
                names_per = [beam_decode(self.model, state,
                                         beam_width=llm.beam_width,
                                         max_length=llm.max_chain_length)
                             for state in states]
            else:
                names_per = greedy_decode_batch(
                    self.model, states, max_length=llm.max_chain_length)
            span.set(batch_size=n)
        timings["generate"] = time.perf_counter() - start

        shared_timings = {stage: seconds / n
                          for stage, seconds in timings.items()}
        results: list[PipelineResult] = []
        for i, prompt in enumerate(prompts):
            chain = APIChain.from_names(list(names_per[i]))
            used_fallback = False
            try:
                chain.validate(self.registry)
            except ChainError:
                chain = APIChain.from_names(list(self._fallback(
                    graph_types[i], intents[i])))
                chain.validate(self.registry)
                used_fallback = True
            results.append(PipelineResult(
                prompt=prompt,
                intent=intents[i],
                graph_type=graph_types[i],
                type_prediction=type_predictions[i],
                retrieved=retrieved_per[i],
                sequences=sequences_per[i],
                chain=chain,
                used_fallback=used_fallback,
                timings=dict(shared_timings),
            ))
        return results

    #: Cache-miss sentinel distinguishing "absent" from cached ``()``.
    _MISS = object()

    def _retrieve_batch(self, texts: list[str],
                        categories_per: list[tuple[Category, ...]]
                        ) -> list[tuple[str, ...]]:
        """Batched retrieval stage with the same memoization as scalar."""
        k = self.config.retrieval.top_k_apis
        results: list[tuple[str, ...] | None] = [None] * len(texts)
        miss_rows: list[int] = []
        for i, (text, categories) in enumerate(zip(texts, categories_per)):
            if self.caches is not None:
                cached = self.caches.retrieval.get((text, k, categories),
                                                   self._MISS)
                if cached is not self._MISS:
                    results[i] = cached
                    continue
            miss_rows.append(i)
        if miss_rows:
            hit_lists = self.retriever.retrieve_batch(
                [texts[i] for i in miss_rows], k=k,
                categories_per=[categories_per[i] for i in miss_rows])
            for i, hits in zip(miss_rows, hit_lists):
                # None marks an unembeddable text — same degradation as
                # the scalar stage catching EmbeddingError
                names = (() if hits is None
                         else tuple(hit.name for hit in hits))
                results[i] = names
                if self.caches is not None and hits is not None:
                    self.caches.retrieval.put(
                        (texts[i], k, categories_per[i]), names)
        return [result if result is not None else ()
                for result in results]

    def _retrieve(self, text: str,
                  categories: tuple[Category, ...]) -> tuple[str, ...]:
        """Retrieval stage, memoized when a cache bundle is attached."""
        k = self.config.retrieval.top_k_apis
        if self.caches is None:
            return self.retriever.retrieve_names(text, k=k,
                                                 categories=categories)
        key = (text, k, categories)
        return self.caches.retrieval.get_or_compute(
            key, lambda: self.retriever.retrieve_names(
                text, k=k, categories=categories))

    @staticmethod
    def _fallback(graph_type: str | None, intent: str) -> tuple[str, ...]:
        return FALLBACK_CHAINS.get((graph_type or "generic", intent),
                                   DEFAULT_FALLBACK)
