"""The single source of truth for repair-stage fallback chains.

When generation produces an invalid or empty chain, the pipeline's
``repair`` stage replaces it with a (graph type, intent) keyed default
so every prompt still yields something executable (paper Fig. 1's
"always propose" guarantee).  Exactly one :class:`FallbackRegistry`
instance — :data:`FALLBACKS` — backs every layer: the pipeline's repair
stage consults it, and the legacy ``FALLBACK_CHAINS`` /
``DEFAULT_FALLBACK`` names in :mod:`repro.core.pipeline` are aliases of
its tables, so the serve layer and the pipeline can never drift apart.
"""

from __future__ import annotations


class FallbackRegistry:
    """Maps ``(graph_type, intent)`` to a guaranteed-executable chain."""

    def __init__(self, chains: dict[tuple[str, str], tuple[str, ...]],
                 default: tuple[str, ...]) -> None:
        #: Exposed mutably on purpose: :data:`pipeline.FALLBACK_CHAINS`
        #: aliases this very dict, keeping the two views one object.
        self.chains = dict(chains)
        self.default = tuple(default)

    def chain_for(self, graph_type: str | None,
                  intent: str) -> tuple[str, ...]:
        """The fallback chain for a prompt's routing key."""
        return self.chains.get((graph_type or "generic", intent),
                               self.default)

    def register(self, graph_type: str, intent: str,
                 chain: tuple[str, ...]) -> None:
        """Add (or replace) a keyed fallback chain."""
        self.chains[(graph_type, intent)] = tuple(chain)

    def items(self):
        return self.chains.items()


#: The one registry every layer consults (see module docstring).
FALLBACKS = FallbackRegistry(
    chains={
        ("social", "understand"): ("predict_graph_type", "graph_summary",
                                   "detect_communities", "find_influencers",
                                   "generate_report"),
        ("molecule", "understand"): ("predict_graph_type",
                                     "describe_molecule",
                                     "predict_toxicity",
                                     "predict_solubility",
                                     "generate_report"),
        ("knowledge", "understand"): ("predict_graph_type",
                                      "knowledge_profile",
                                      "mine_rules", "generate_report"),
        ("molecule", "compare"): ("similar_molecules",),
        ("knowledge", "clean"): ("detect_incorrect_edges",
                                 "remove_flagged_edges",
                                 "predict_missing_edges",
                                 "add_predicted_edges", "export_graph"),
    },
    default=("predict_graph_type", "graph_summary", "generate_report"),
)
