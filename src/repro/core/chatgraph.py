"""The :class:`ChatGraph` facade — the public entry point of the library.

Typical use::

    from repro import ChatGraph
    from repro.graphs import social_network

    cg = ChatGraph.pretrained(seed=0)     # build + finetune offline
    response = cg.ask("write a brief report for G",
                      graph=social_network(50, 3))
    print(response.answer)
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable

from ..apis.chain import APIChain
from ..apis.executor import (
    ChainContext,
    ChainExecutionRecord,
    ChainExecutor,
    ExecutionPolicy,
)
from ..apis.registry import APIRegistry, default_registry
from ..chem.database import MoleculeDatabase
from ..config import ChatGraphConfig
from ..errors import SessionError
from ..finetune.dataset import CorpusSpec, build_corpus
from ..finetune.trainer import FinetuneReport, Finetuner
from ..graphs.graph import Graph
from ..llm.chain_model import ChainLanguageModel, TrainingExample
from ..llm.prompts import Prompt
from ..llm.simulated import build_model
from ..retrieval.api_retriever import APIRetriever
from .monitoring import ChainMonitor
from .pipeline import ChatPipeline, PipelineResult
from .reports import render_answer


@dataclass
class ChatResponse:
    """One answered prompt."""

    prompt: Prompt
    pipeline: PipelineResult
    record: ChainExecutionRecord | None
    answer: str
    monitor: ChainMonitor
    seconds: float = 0.0

    @property
    def chain(self) -> APIChain:
        return self.pipeline.chain

    def results(self) -> dict[str, Any]:
        return self.record.results_by_name() if self.record else {}


@dataclass
class ChatGraph:
    """LLM-based framework to interact with graphs (paper Fig. 1).

    Construct directly for full control, or via :meth:`pretrained` for a
    ready-to-chat instance finetuned on the synthetic corpus.
    """

    config: ChatGraphConfig = field(default_factory=ChatGraphConfig)
    registry: APIRegistry = field(default_factory=default_registry)
    database: MoleculeDatabase | None = None
    model: ChainLanguageModel | None = None

    def __post_init__(self) -> None:
        if self.database is None:
            self.database = MoleculeDatabase.builtin()
        self.retriever = APIRetriever(self.registry, self.config.retrieval)
        if self.model is None:
            self.model = build_model(self.config.llm.model,
                                     self.registry.names(),
                                     seed=self.config.llm.seed)
        self.pipeline = ChatPipeline(self.registry, self.retriever,
                                     self.model, self.config)
        self.executor = ChainExecutor(self.registry)
        #: Default robustness settings applied by :meth:`execute`
        #: (see :meth:`set_robustness`).
        self.robustness_policy: ExecutionPolicy | None = None
        self.breakers: Any = None
        #: Optional :class:`repro.obs.Tracer` threaded through the
        #: pipeline and every execution (see :meth:`set_tracer`).
        self.tracer: Any = None
        #: Optional :class:`repro.store.GraphCatalog`; when attached,
        #: :meth:`propose`/:meth:`ask` accept a catalog graph *name*
        #: wherever they accept a graph (see :meth:`use_catalog`).
        self.catalog: Any = None

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def pretrained(cls, config: ChatGraphConfig | None = None,
                   corpus_size: int = 600, objective: str = "token",
                   seed: int = 0) -> "ChatGraph":
        """Build an instance and finetune it on the synthetic corpus.

        ``objective="token"`` trains in well under a second;
        ``objective="matching"`` runs the paper's full rollout scheme.
        """
        instance = cls(config=config or ChatGraphConfig())
        instance.finetune(CorpusSpec(n_examples=corpus_size, seed=seed),
                          objective=objective)
        return instance

    def finetune(self, corpus: CorpusSpec | list[TrainingExample],
                 objective: str = "token") -> FinetuneReport:
        """Finetune the chain model (see :mod:`repro.finetune`)."""
        if isinstance(corpus, CorpusSpec):
            train, test = build_corpus(self.registry, corpus,
                                       retriever=self.retriever)
        else:
            train, test = list(corpus), []
        tuner = Finetuner(self.model, self.config.finetune,
                          seed=self.config.llm.seed)
        return tuner.train(train, test, objective=objective)

    # ------------------------------------------------------------------
    # chat
    # ------------------------------------------------------------------
    def use_catalog(self, catalog: Any) -> None:
        """Attach a :class:`repro.store.GraphCatalog` (``None`` detaches).

        With a catalog attached, the ``graph`` argument of
        :meth:`propose` and :meth:`ask` may be a catalog graph *name*;
        it resolves to an immutable epoch-pinned view at call time.
        """
        self.catalog = catalog

    def resolve_graph(self, graph: Graph | str | None) -> Graph | None:
        """Resolve a graph argument: pass-through, or catalog lookup."""
        if not isinstance(graph, str):
            return graph
        if self.catalog is None:
            raise SessionError(
                f"graph named {graph!r} but no catalog attached; call "
                "use_catalog() first")
        return self.catalog.view(graph).graph

    def propose(self, text: str, graph: Graph | str | None = None,
                **attachments: Any) -> PipelineResult:
        """Generate (but do not execute) the API chain for a prompt."""
        prompt = Prompt(text=text, graph=self.resolve_graph(graph),
                        attachments=attachments)
        return self.pipeline.process(prompt)

    def propose_batch(self, prompts: list[Prompt],
                      return_exceptions: bool = False
                      ) -> list[PipelineResult | BaseException]:
        """Batched :meth:`propose`: shared pipeline stages for a fleet.

        Every stage runs through its vectorized batch body (one
        embed/search/matmul/scoring call per stage instead of one per
        prompt); the proposed chains are identical to processing each
        prompt alone.  This is what the serve layer's micro-batcher
        calls.  ``return_exceptions`` is the per-prompt failure-
        isolation switch of :meth:`~repro.core.pipeline.ChatPipeline.
        process_batch`: failed slots then hold exception instances
        instead of aborting the whole batch.
        """
        return self.pipeline.process_batch(
            prompts, return_exceptions=return_exceptions)

    def set_robustness(self, policy: ExecutionPolicy | None = None,
                       breakers: Any = None) -> None:
        """Install default step policies / circuit breakers.

        ``policy`` is an :class:`~repro.apis.executor.ExecutionPolicy`
        (per-step timeouts, retries with backoff, fallbacks);
        ``breakers`` a shared breaker registry such as
        :class:`repro.serve.breaker.BreakerRegistry`.  Every subsequent
        :meth:`execute` / :meth:`ask` applies them unless overridden
        per call.
        """
        self.robustness_policy = policy
        self.breakers = breakers

    def set_tracer(self, tracer: Any) -> None:
        """Wire a :class:`repro.obs.Tracer` through the whole stack.

        The pipeline emits ``pipeline``/``stage`` spans, executions
        emit ``chain``/``step``/``attempt`` spans, and :meth:`ask`
        wraps the round trip in an ``op`` span — all nested under
        whatever span is active on the calling thread (the serve
        worker's ``request`` span, when served).  Pass ``None`` to
        detach.
        """
        self.tracer = tracer
        self.pipeline.tracer = tracer
        self.executor.tracer = tracer

    def set_profiler(self, profiler: Any) -> None:
        """Attach a :class:`repro.obs.StageProfiler` to the pipeline.

        The pipeline wraps every observed stage of its stage graph in a
        :class:`~repro.core.stages.ProfilingMiddleware`; pass ``None``
        to detach (the middleware then leaves the hot path entirely).
        """
        self.pipeline.profiler = profiler

    def execute(self, pipeline_result: PipelineResult,
                chain: APIChain | None = None,
                confirm: Callable[[str, Any], bool] | None = None,
                monitor: ChainMonitor | None = None,
                policy: ExecutionPolicy | None = None,
                breakers: Any = None,
                ) -> tuple[ChainExecutionRecord, ChainMonitor]:
        """Execute a (possibly user-edited) chain for a processed prompt."""
        chain = chain or pipeline_result.chain
        monitor = monitor or ChainMonitor()
        prompt = pipeline_result.prompt
        context = ChainContext(
            graph=prompt.graph,
            database=prompt.attachments.get("database", self.database),
            extras=dict(prompt.attachments),
            confirm=confirm,
        )
        # a per-call executor keeps concurrent execute() calls (the
        # repro.serve worker pool) from racing on a shared listener
        # list; ``self.executor`` stays for callers that attach their
        # own long-lived listeners
        executor = ChainExecutor(
            self.registry,
            policy=policy or self.robustness_policy,
            breakers=breakers if breakers is not None else self.breakers,
            tracer=self.tracer,
        )
        executor.add_listener(monitor)
        for listener in self.executor.listeners():
            executor.add_listener(listener)
        # the chat surface degrades gracefully: a failing step is
        # reported in the answer instead of aborting the dialog
        record = executor.execute(chain, context, stop_on_error=False)
        return record, monitor

    def ask(self, text: str, graph: Graph | str | None = None,
            confirm: Callable[[str, Any], bool] | None = None,
            **attachments: Any) -> ChatResponse:
        """Full round trip: propose, execute, render the answer."""
        start = time.perf_counter()
        if self.tracer is not None:
            with self.tracer.span("ask", kind="op"):
                pipeline_result = self.propose(text, graph, **attachments)
                record, monitor = self.execute(pipeline_result,
                                               confirm=confirm)
        else:
            pipeline_result = self.propose(text, graph, **attachments)
            record, monitor = self.execute(pipeline_result,
                                           confirm=confirm)
        answer = render_answer(record)
        return ChatResponse(
            prompt=pipeline_result.prompt,
            pipeline=pipeline_result,
            record=record,
            answer=answer,
            monitor=monitor,
            seconds=time.perf_counter() - start,
        )

    # ------------------------------------------------------------------
    def enable_caches(self, caches: Any | None) -> None:
        """Attach (or with ``None`` detach) a serve-layer cache bundle.

        ``caches`` is a :class:`repro.serve.cache.PipelineCaches`; the
        stage graph's retrieval stage (via
        :class:`~repro.core.stages.CacheMiddleware`), the
        sequentializer and the retriever's query embedder become
        content-addressed lookups.
        """
        self.pipeline.attach_caches(caches)

    def require_model(self) -> ChainLanguageModel:
        """The chain model, asserting initialization (for type checkers)."""
        if self.model is None:
            raise SessionError("model not initialized")
        return self.model
