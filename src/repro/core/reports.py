"""Render a chain-execution record into the assistant's answer text."""

from __future__ import annotations

from typing import Any

from ..apis.executor import ChainExecutionRecord


def render_answer(record: ChainExecutionRecord) -> str:
    """Compose the assistant's reply from the executed chain.

    If the chain produced a report (``generate_report``), that *is* the
    answer; otherwise each step's result is formatted in order.
    """
    by_name = record.results_by_name()
    if "generate_report" in by_name:
        return str(by_name["generate_report"])
    lines: list[str] = []
    for step in record.steps:
        if not step.ok:
            lines.append(f"{step.api_name}: failed ({step.error})")
            continue
        lines.append(f"{step.api_name}: {_format(step.result)}")
    return "\n".join(lines) if lines else "(no results)"


def _format(result: Any, limit: int = 400) -> str:
    if isinstance(result, float):
        return f"{result:.4f}"
    if isinstance(result, dict):
        inner = ", ".join(f"{k}={_format(v, 60)}" for k, v in result.items())
        text = "{" + inner + "}"
    elif isinstance(result, list):
        inner = ", ".join(_format(v, 60) for v in result[:6])
        extra = f", ... ({len(result) - 6} more)" if len(result) > 6 else ""
        text = "[" + inner + extra + "]"
    else:
        text = str(result)
    if len(text) > limit:
        text = text[:limit - 3] + "..."
    return text
