"""The chat session: the headless equivalent of the paper's Gradio UI.

Fig. 2's three panels map to session state: panel 1 (dialogs) is
:attr:`ChatSession.history`; panel 2 (suggested questions) is
:meth:`suggestions`; panel 3 (question + graph upload) is
:meth:`upload_graph` + :meth:`send`.  Scenario 4's confirm-and-edit
loop is the ``propose -> edit_chain -> confirm`` path.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from ..apis.chain import APIChain, ChainNode
from ..errors import SessionError
from ..graphs.graph import Graph
from ..llm.prompts import Prompt
from .chatgraph import ChatGraph, ChatResponse
from .monitoring import ChainMonitor
from .pipeline import PipelineResult
from .reports import render_answer
from .suggestions import suggested_questions


@dataclass(frozen=True)
class DialogTurn:
    """One message in panel 1."""

    role: str  # "user" | "assistant" | "system"
    text: str

    def render(self) -> str:
        return f"{self.role:>9}: {self.text}"


@dataclass
class ChatSession:
    """Stateful conversation against one :class:`ChatGraph` instance.

    Example::

        session = ChatSession(chatgraph)
        session.upload_graph(my_graph)
        proposal = session.propose("Clean G")
        session.edit_chain(remove=0)       # optional user edits
        response = session.confirm()       # execute + answer
    """

    chatgraph: ChatGraph
    history: list[DialogTurn] = field(default_factory=list)
    graph: Graph | None = None
    attachments: dict[str, Any] = field(default_factory=dict)
    #: Auto-approve confirmations unless a callback is given.
    confirm_callback: Callable[[str, Any], bool] | None = None
    _pending: PipelineResult | None = field(default=None, repr=False)

    # ------------------------------------------------------------------
    # panel 3: inputs
    # ------------------------------------------------------------------
    def upload_graph(self, graph: Graph, **attachments: Any) -> None:
        """Attach a graph (and extras) to the next prompts."""
        self.graph = graph
        self.attachments.update(attachments)
        self.history.append(DialogTurn(
            "system", f"graph uploaded: {graph!r}"))

    def clear_graph(self) -> None:
        self.graph = None
        self.attachments.clear()

    # ------------------------------------------------------------------
    # panel 2: suggestions
    # ------------------------------------------------------------------
    def suggestions(self, limit: int = 4) -> list[str]:
        """Suggested questions for the current upload."""
        return suggested_questions(self.graph, limit=limit)

    # ------------------------------------------------------------------
    # panel 1: dialog
    # ------------------------------------------------------------------
    def send(self, text: str) -> ChatResponse:
        """One-shot ask: propose + auto-confirm + execute + reply."""
        self.propose(text)
        return self.confirm()

    def propose(self, text: str) -> PipelineResult:
        """Generate the chain for ``text`` and hold it for confirmation."""
        self.history.append(DialogTurn("user", text))
        result = self.chatgraph.propose(text, self.graph,
                                        **self.attachments)
        self._pending = result
        self.history.append(DialogTurn(
            "assistant",
            f"proposed API chain: {result.chain.render()} — confirm, or "
            f"edit it first"))
        return result

    @property
    def pending_chain(self) -> APIChain:
        """The chain awaiting confirmation."""
        if self._pending is None:
            raise SessionError("no chain awaiting confirmation")
        return self._pending.chain

    def edit_chain(self, remove: int | None = None,
                   insert: tuple[int, str] | None = None,
                   replace: tuple[int, str] | None = None,
                   append: str | None = None) -> APIChain:
        """Apply one user edit to the pending chain (scenario 4)."""
        chain = self.pending_chain
        if remove is not None:
            chain.remove(remove)
        if insert is not None:
            index, name = insert
            chain.insert(index, ChainNode(name))
        if replace is not None:
            index, name = replace
            chain.replace(index, ChainNode(name))
        if append is not None:
            chain.append(ChainNode(append))
        chain.validate(self.chatgraph.registry)
        self.history.append(DialogTurn(
            "user", f"edited chain to: {chain.render()}"))
        return chain

    def reject(self) -> None:
        """Discard the pending chain."""
        if self._pending is None:
            raise SessionError("no chain awaiting confirmation")
        self._pending = None
        self.history.append(DialogTurn("user", "rejected the chain"))

    def confirm(self, monitor: ChainMonitor | None = None) -> ChatResponse:
        """Execute the pending chain and append the answer to the dialog."""
        if self._pending is None:
            raise SessionError("no chain awaiting confirmation")
        pending = self._pending
        self._pending = None
        record, used_monitor = self.chatgraph.execute(
            pending, confirm=self.confirm_callback, monitor=monitor)
        answer = render_answer(record)
        # an edit API may have replaced the working graph
        if pending.prompt.graph is not None and record.ok:
            for step in record.steps:
                if step.api_name in ("remove_flagged_edges",
                                     "add_predicted_edges", "remove_edge",
                                     "add_edge"):
                    self.graph = _latest_graph(record, pending.prompt)
                    break
        self.history.append(DialogTurn("assistant", answer))
        return ChatResponse(
            prompt=pending.prompt,
            pipeline=pending,
            record=record,
            answer=answer,
            monitor=used_monitor,
            seconds=record.total_seconds,
        )

    def transcript(self) -> str:
        """The whole dialog, rendered."""
        return "\n".join(turn.render() for turn in self.history)

    # ------------------------------------------------------------------
    # persistence (dialog + uploaded graph survive across sessions)
    # ------------------------------------------------------------------
    def save(self, path: "str | Path") -> None:
        """Persist the dialog and the uploaded graph to a JSON file.

        Pending (unconfirmed) chains and non-graph attachments are not
        persisted; reload with :meth:`load` against any ChatGraph.
        """
        from ..graphs.io import to_dict as graph_to_dict
        document = {
            "version": 1,
            "history": [{"role": turn.role, "text": turn.text}
                        for turn in self.history],
            "graph": graph_to_dict(self.graph)
            if self.graph is not None else None,
        }
        Path(path).write_text(json.dumps(document, indent=1),
                              encoding="utf-8")

    @classmethod
    def load(cls, path: "str | Path",
             chatgraph: ChatGraph) -> "ChatSession":
        """Rebuild a session saved by :meth:`save`."""
        from ..graphs.io import from_dict as graph_from_dict
        try:
            document = json.loads(Path(path).read_text(encoding="utf-8"))
            history = [DialogTurn(entry["role"], entry["text"])
                       for entry in document["history"]]
            graph = (graph_from_dict(document["graph"])
                     if document.get("graph") is not None else None)
        except (OSError, KeyError, TypeError,
                json.JSONDecodeError) as exc:
            raise SessionError(f"cannot load session: {exc}") from exc
        session = cls(chatgraph)
        session.history = history
        session.graph = graph
        return session


def _latest_graph(record: Any, prompt: Prompt) -> Graph | None:
    """The graph after edit APIs ran (the executor context holds it)."""
    # edit APIs replace context.graph; export_graph serializes it, so if
    # present, rebuild from that document, else keep the prompt graph.
    by_name = record.results_by_name()
    if "export_graph" in by_name:
        from ..graphs.io import from_dict
        return from_dict(by_name["export_graph"])
    return prompt.graph
