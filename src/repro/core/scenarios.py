"""The four demonstration scenarios (paper Sec. IV) as functions.

Each function drives a :class:`~repro.core.chatgraph.ChatGraph` through
one scenario end to end and returns a :class:`ScenarioResult` with the
artifacts the paper's figures show — these back both the examples and
the scenario benchmarks (E2-E5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..chem.database import MoleculeDatabase
from ..chem.molecule import Molecule
from ..graphs.graph import Graph
from .chatgraph import ChatGraph, ChatResponse
from .monitoring import ChainMonitor
from .session import ChatSession


@dataclass
class ScenarioResult:
    """Uniform scenario outcome."""

    name: str
    response: ChatResponse
    details: dict[str, Any] = field(default_factory=dict)

    @property
    def answer(self) -> str:
        return self.response.answer

    @property
    def chain_names(self) -> list[str]:
        return self.response.chain.api_names()


def run_graph_understanding(chatgraph: ChatGraph, graph: Graph,
                            text: str = "Write a brief report for G"
                            ) -> ScenarioResult:
    """Scenario 1 (Fig. 4): type-routed analysis ending in a report."""
    response = chatgraph.ask(text, graph=graph)
    return ScenarioResult(
        name="graph_understanding",
        response=response,
        details={
            "graph_type": response.pipeline.graph_type,
            "report": response.answer,
            "used_fallback": response.pipeline.used_fallback,
        },
    )


def run_graph_comparison(chatgraph: ChatGraph, molecule: Molecule,
                         database: MoleculeDatabase | None = None,
                         text: str = "What molecules are similar to G?",
                         k: int = 2) -> ScenarioResult:
    """Scenario 2 (Fig. 5): similarity search against the molecule DB."""
    response = chatgraph.ask(text, graph=molecule.to_graph(),
                             database=database or chatgraph.database,
                             molecule=molecule)
    hits = response.results().get("similar_molecules", [])
    return ScenarioResult(
        name="graph_comparison",
        response=response,
        details={"query": molecule.name or molecule.smiles,
                 "top_hits": hits[:k]},
    )


def run_graph_cleaning(chatgraph: ChatGraph, graph: Graph,
                       text: str = "Clean G",
                       auto_confirm: bool = True) -> ScenarioResult:
    """Scenario 3 (Fig. 6): detect -> confirm -> edit -> export."""
    asked: list[str] = []

    def confirm(question: str, payload: Any) -> bool:
        asked.append(question)
        return auto_confirm

    response = chatgraph.ask(text, graph=graph, confirm=confirm)
    results = response.results()
    return ScenarioResult(
        name="graph_cleaning",
        response=response,
        details={
            "n_incorrect": len(results.get("detect_incorrect_edges", [])),
            "n_missing": len(results.get("predict_missing_edges", [])),
            "n_removed": results.get("remove_flagged_edges",
                                     {}).get("n_removed", 0),
            "n_added": results.get("add_predicted_edges",
                                   {}).get("n_added", 0),
            "confirmations": asked,
            "exported": "export_graph" in results,
        },
    )


def run_chain_monitoring(chatgraph: ChatGraph, graph: Graph,
                         text: str = "Write a brief report for G",
                         edit_remove: int | None = None
                         ) -> ScenarioResult:
    """Scenario 4 (Fig. 7): confirm/edit the chain, monitor execution."""
    session = ChatSession(chatgraph)
    session.upload_graph(graph)
    proposal = session.propose(text)
    proposed = proposal.chain.render()
    if edit_remove is not None and len(proposal.chain) > 1:
        session.edit_chain(remove=edit_remove)
    monitor = ChainMonitor()
    response = session.confirm(monitor=monitor)
    return ScenarioResult(
        name="chain_monitoring",
        response=response,
        details={
            "proposed_chain": proposed,
            "executed_chain": response.chain.render(),
            "events": [event.render() for event in monitor.events],
            "progress": monitor.progress,
            "transcript": session.transcript(),
        },
    )
