"""ChatGraph core: the framework of paper Fig. 1.

* :mod:`pipeline` — prompt -> (retrieval, sequentialization, chain
  generation): the inference path through every module;
* :mod:`chatgraph` — the :class:`ChatGraph` facade users instantiate;
* :mod:`session` — the chat session (dialogs, suggestions, uploads,
  chain confirmation/editing — the Fig. 2 panels, headless);
* :mod:`monitoring` — execution progress (scenario 4);
* :mod:`reports` — answer rendering;
* :mod:`scenarios` — the four demonstration scenarios as functions;
* :mod:`suggestions` — suggested questions per graph type (panel 2).
"""

from .pipeline import ChatPipeline, PipelineResult
from .chatgraph import ChatGraph, ChatResponse
from .session import ChatSession, DialogTurn
from .monitoring import ChainMonitor
from .reports import render_answer
from .scenarios import (
    ScenarioResult,
    run_chain_monitoring,
    run_graph_cleaning,
    run_graph_comparison,
    run_graph_understanding,
)
from .suggestions import suggested_questions

__all__ = [
    "ChatPipeline",
    "PipelineResult",
    "ChatGraph",
    "ChatResponse",
    "ChatSession",
    "DialogTurn",
    "ChainMonitor",
    "render_answer",
    "ScenarioResult",
    "run_chain_monitoring",
    "run_graph_cleaning",
    "run_graph_comparison",
    "run_graph_understanding",
    "suggested_questions",
]
