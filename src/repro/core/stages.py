"""Stage-graph pipeline runtime: declarative stages plus middleware.

The paper's Fig. 1 pipeline (intent -> graph-type routing -> ANN
retrieval -> sequentialize -> generate -> repair) is declared here
exactly once.  Each stage is an object with a name, the context keys it
reads and writes, a scalar :meth:`Stage.run` and an optional vectorized
:meth:`Stage.run_batch` (defaulting to mapped scalar).  Stages compose
into a :class:`StageGraph` that validates the dataflow at construction
time, so a stage reading a key nothing produces fails fast instead of
at request time.

Cross-cutting concerns are middleware wrapping each stage invocation
rather than branches inside stage bodies:

* :class:`TimingMiddleware` — per-stage wall seconds into the context's
  ``timings`` (amortized per item on the batch path);
* :class:`ProfilingMiddleware` — adapts :class:`repro.obs.StageProfiler`;
* :class:`TracingMiddleware` — adapts :class:`repro.obs.Tracer`, one
  ``stage`` span per observed stage;
* :class:`CacheMiddleware` — content-addressed memoization for stages
  that declare a cache key; a batched invocation runs the stage only on
  the cache-missing subset (the :data:`MISS` sentinel keeps a cached
  falsy value, e.g. ``()``, distinct from "absent").

Middleware lists are outermost-first; a detached concern simply is not
in the list, so the hot path carries zero overhead objects for it.
Every stage name in the system lives in this module — other layers
derive stage lists from the graph (``StageGraph.stage_names``) or from
result timings, never from hand-written copies.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Hashable, Iterable, Sequence

from ..apis.chain import APIChain
from ..apis.registry import APIRegistry, Category
from ..config import ChatGraphConfig
from ..errors import ChainError, ConfigError, EmbeddingError
from ..graphs.io import fingerprint
from ..llm.chain_model import ChainLanguageModel, GenerationState
from ..llm.decoding import beam_decode, greedy_decode, greedy_decode_batch
from ..llm.intent import (
    CATEGORY_ROUTING,
    GraphTypePredictor,
    IntentClassifier,
    TypePrediction,
)
from ..retrieval.api_retriever import APIRetriever
from ..sequencer.serializer import GraphSequentializer
from .fallbacks import FallbackRegistry

#: Cache-miss sentinel distinguishing "absent" from a cached falsy
#: value such as ``()`` (an empty retrieval result is a valid entry).
MISS = object()

#: Private context key memoizing the prompt graph's content digest
#: across the batch path's grouping stages (not a declared dataflow
#: output; see :func:`_group_contexts_by_graph`).
_FINGERPRINT_KEY = "_graph_fingerprint"


class StageContext:
    """One prompt's mutable dataflow record through the stage graph.

    Keys are written with ``ctx[key] = value`` (stage bodies) and read
    either way — ``ctx[key]`` or attribute-style ``ctx.key``.  The
    ``timings`` dict is middleware territory, kept apart from the
    dataflow keys.  ``failure`` records the exception that aborted this
    context's flow on the batch path (``None`` while healthy): a batch
    member that fails mid-stage is parked instead of poisoning its
    batchmates, and the pipeline entry point re-raises (or returns) the
    recorded exception per context — the same outcome the scalar path
    produces by propagation.
    """

    __slots__ = ("data", "timings", "failure")

    def __init__(self, data: dict[str, Any] | None = None) -> None:
        self.data: dict[str, Any] = dict(data or {})
        self.timings: dict[str, float] = {}
        self.failure: BaseException | None = None

    def __getitem__(self, key: str) -> Any:
        return self.data[key]

    def __setitem__(self, key: str, value: Any) -> None:
        self.data[key] = value

    def __contains__(self, key: str) -> bool:
        return key in self.data

    def get(self, key: str, default: Any = None) -> Any:
        return self.data.get(key, default)

    def __getattr__(self, key: str) -> Any:
        try:
            return self.data[key]
        except KeyError:
            raise AttributeError(
                f"stage context has no key {key!r}; present keys: "
                f"{sorted(self.data)}") from None

    def __repr__(self) -> str:
        return f"StageContext(keys={sorted(self.data)})"


class Stage:
    """One declared pipeline stage.

    Subclasses set :attr:`name`, :attr:`inputs` and :attr:`outputs` and
    implement :meth:`run`; :meth:`run_batch` defaults to mapped scalar
    and may be overridden with a genuinely vectorized body.  The
    remaining hooks drive middleware:

    * :attr:`observed` — ``False`` exempts the stage from timing,
      tracing and profiling (used by ``repair``, which predates the
      observability contract and must keep golden traces stable);
    * :meth:`span_attrs` — deterministic attributes stamped on the
      stage's trace span after a scalar run;
    * the cache protocol — :attr:`cache_name` (which cache in the
      bundle), :meth:`cache_key` (``None`` = uncacheable call),
      :attr:`cache_output` (the memoized context key),
      :meth:`may_cache` (whether the just-computed value may be
      stored) and :meth:`apply_cached` (how a hit re-enters the
      context).
    """

    name: str = ""
    inputs: tuple[str, ...] = ()
    outputs: tuple[str, ...] = ()
    observed: bool = True
    cache_name: str | None = None
    cache_output: str | None = None

    def run(self, ctx: StageContext) -> None:
        raise NotImplementedError

    def run_batch(self, ctxs: Sequence[StageContext]) -> None:
        # mapped scalar, isolating failures: one poisoned context parks
        # its exception on ``ctx.failure`` (scalar semantics: that one
        # request fails) instead of aborting the contexts after it
        for ctx in ctxs:
            try:
                self.run(ctx)
            except Exception as exc:  # noqa: BLE001 - per-ctx isolation
                ctx.failure = exc

    def span_attrs(self, ctx: StageContext) -> dict[str, Any]:
        return {}

    def cache_key(self, ctx: StageContext) -> Hashable | None:
        return None

    def may_cache(self, ctx: StageContext) -> bool:
        return True

    def apply_cached(self, ctx: StageContext, value: Any) -> None:
        assert self.cache_output is not None
        ctx[self.cache_output] = value

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


# ----------------------------------------------------------------------
# middleware
# ----------------------------------------------------------------------
ScalarCall = Callable[[StageContext], None]
BatchCall = Callable[[Sequence[StageContext]], None]


class StageMiddleware:
    """Wraps every stage invocation; ``call`` is the next inner layer."""

    def run(self, stage: Stage, ctx: StageContext,
            call: ScalarCall) -> None:
        call(ctx)

    def run_batch(self, stage: Stage, ctxs: Sequence[StageContext],
                  call: BatchCall) -> None:
        call(ctxs)


class TimingMiddleware(StageMiddleware):
    """Per-stage wall seconds into ``ctx.timings``.

    Batched invocations record each context's amortized share (stage
    seconds divided by batch size), since the stage work is genuinely
    shared across the batch.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter
                 ) -> None:
        self._clock = clock

    def run(self, stage: Stage, ctx: StageContext,
            call: ScalarCall) -> None:
        if not stage.observed:
            return call(ctx)
        start = self._clock()
        call(ctx)
        ctx.timings[stage.name] = self._clock() - start

    def run_batch(self, stage: Stage, ctxs: Sequence[StageContext],
                  call: BatchCall) -> None:
        if not stage.observed:
            return call(ctxs)
        start = self._clock()
        call(ctxs)
        share = (self._clock() - start) / len(ctxs)
        for ctx in ctxs:
            ctx.timings[stage.name] = share


class ProfilingMiddleware(StageMiddleware):
    """Adapts a :class:`repro.obs.StageProfiler` to the stage graph."""

    def __init__(self, profiler: Any) -> None:
        self.profiler = profiler

    def run(self, stage: Stage, ctx: StageContext,
            call: ScalarCall) -> None:
        if not stage.observed:
            return call(ctx)
        with self.profiler.profile(stage.name):
            call(ctx)

    def run_batch(self, stage: Stage, ctxs: Sequence[StageContext],
                  call: BatchCall) -> None:
        if not stage.observed:
            return call(ctxs)
        with self.profiler.profile(stage.name):
            call(ctxs)


class TracingMiddleware(StageMiddleware):
    """Adapts a :class:`repro.obs.Tracer`: one ``stage`` span per stage.

    Scalar spans carry the stage's deterministic :meth:`Stage.span_attrs`
    (``intent``, ``n_retrieved``, ...); batched spans carry the batch
    size.  Unobserved stages emit nothing, which is what keeps the
    checked-in golden traces stable across the middleware refactor.
    """

    def __init__(self, tracer: Any) -> None:
        self.tracer = tracer

    def run(self, stage: Stage, ctx: StageContext,
            call: ScalarCall) -> None:
        if not stage.observed:
            return call(ctx)
        with self.tracer.span(f"stage:{stage.name}", kind="stage") as span:
            call(ctx)
            span.set(**stage.span_attrs(ctx))

    def run_batch(self, stage: Stage, ctxs: Sequence[StageContext],
                  call: BatchCall) -> None:
        if not stage.observed:
            return call(ctxs)
        with self.tracer.span(f"stage:{stage.name}", kind="stage") as span:
            call(ctxs)
            span.set(batch_size=len(ctxs))


class CacheMiddleware(StageMiddleware):
    """Content-addressed memoization for cache-declaring stages.

    ``caches`` maps :attr:`Stage.cache_name` to an LRU cache (``get`` /
    ``put`` duck type, e.g. :class:`repro.serve.cache.LRUCache`).  A hit
    skips the stage body but — because this middleware sits innermost —
    still flows through timing, profiling and tracing.  A batched
    invocation partitions the batch with the :data:`MISS` sentinel and
    runs the stage only on the missing subset, then stores each freshly
    computed value that :meth:`Stage.may_cache` allows (degraded
    results, e.g. unembeddable texts, are never cached).
    """

    def __init__(self, caches: dict[str, Any]) -> None:
        self.caches = dict(caches)

    def _cache_for(self, stage: Stage) -> Any:
        if stage.cache_name is None or stage.cache_output is None:
            return None
        return self.caches.get(stage.cache_name)

    def run(self, stage: Stage, ctx: StageContext,
            call: ScalarCall) -> None:
        cache = self._cache_for(stage)
        key = stage.cache_key(ctx) if cache is not None else None
        if cache is None or key is None:
            return call(ctx)
        value = cache.get(key, MISS)
        if value is not MISS:
            stage.apply_cached(ctx, value)
            return
        call(ctx)
        if stage.may_cache(ctx):
            cache.put(key, ctx[stage.cache_output])

    def run_batch(self, stage: Stage, ctxs: Sequence[StageContext],
                  call: BatchCall) -> None:
        cache = self._cache_for(stage)
        if cache is None:
            return call(ctxs)
        misses: list[StageContext] = []
        for ctx in ctxs:
            key = stage.cache_key(ctx)
            if key is None:
                misses.append(ctx)
                continue
            value = cache.get(key, MISS)
            if value is not MISS:
                stage.apply_cached(ctx, value)
            else:
                misses.append(ctx)
        if not misses:
            return
        call(misses)
        for ctx in misses:
            if ctx.failure is not None:
                continue  # no output to store for a parked context
            key = stage.cache_key(ctx)
            if key is not None and stage.may_cache(ctx):
                cache.put(key, ctx[stage.cache_output])


# ----------------------------------------------------------------------
# the graph
# ----------------------------------------------------------------------
class StageGraph:
    """An ordered, dataflow-validated composition of stages.

    Construction checks that stage names are unique and non-empty and
    that every stage's declared inputs are produced by an earlier
    stage's outputs (or seeded into the initial context), so a
    miswired graph fails at definition time, not per request.
    """

    def __init__(self, stages: Iterable[Stage],
                 seeds: tuple[str, ...] = ("prompt",)) -> None:
        self.stages = tuple(stages)
        self.seeds = tuple(seeds)
        if not self.stages:
            raise ConfigError("a stage graph needs at least one stage")
        available = set(self.seeds)
        seen: set[str] = set()
        for stage in self.stages:
            if not stage.name:
                raise ConfigError(
                    f"stage {stage!r} has an empty name")
            if stage.name in seen:
                raise ConfigError(
                    f"duplicate stage name {stage.name!r}")
            seen.add(stage.name)
            missing = [key for key in stage.inputs if key not in available]
            if missing:
                raise ConfigError(
                    f"stage {stage.name!r} reads {missing} which no "
                    f"earlier stage produces (available: "
                    f"{sorted(available)})")
            if stage.cache_output is not None and \
                    stage.cache_output not in stage.outputs:
                raise ConfigError(
                    f"stage {stage.name!r} memoizes {stage.cache_output!r}"
                    f" which is not among its outputs {stage.outputs}")
            available.update(stage.outputs)

    @property
    def stage_names(self) -> tuple[str, ...]:
        """Every stage name, in execution order."""
        return tuple(stage.name for stage in self.stages)

    @property
    def observed_stage_names(self) -> tuple[str, ...]:
        """Names of the stages timing/tracing/profiling report on."""
        return tuple(stage.name for stage in self.stages if stage.observed)

    def __iter__(self):
        return iter(self.stages)

    def __len__(self) -> int:
        return len(self.stages)

    # ------------------------------------------------------------------
    def run(self, ctx: StageContext,
            middlewares: Sequence[StageMiddleware] = ()) -> StageContext:
        """Run every stage for one context, through the middleware onion.

        ``middlewares`` is outermost-first; each layer's ``run`` wraps
        the next, with the stage body innermost.
        """
        for stage in self.stages:
            self._invoke(stage, ctx, middlewares, 0)
        return ctx

    def _invoke(self, stage: Stage, ctx: StageContext,
                middlewares: Sequence[StageMiddleware],
                depth: int) -> None:
        if depth == len(middlewares):
            stage.run(ctx)
            return
        middlewares[depth].run(
            stage, ctx,
            lambda inner: self._invoke(stage, inner, middlewares,
                                       depth + 1))

    def run_batch(self, ctxs: Sequence[StageContext],
                  middlewares: Sequence[StageMiddleware] = ()
                  ) -> Sequence[StageContext]:
        """Batched :meth:`run`: shared stage bodies, no per-item barrier.

        Middleware may shrink the batch a stage body sees (cache hits),
        so inner layers receive whatever subset the outer layer passes
        down.

        Failure isolation: a stage exception on the batch path must
        degrade only the context that caused it, matching the scalar
        path where each request fails alone.  A raising batch invocation
        (mapped-scalar default or vectorized body alike) is retried
        per-context down the scalar middleware path; contexts that
        still raise get the exception parked on ``ctx.failure`` and are
        filtered out of the remaining stages.  Stage bodies are pure
        functions of their declared inputs, so re-running the survivors
        scalar is result-identical (cache middleware re-serves anything
        the aborted batch attempt already stored).
        """
        for stage in self.stages:
            live = [ctx for ctx in ctxs if ctx.failure is None]
            if not live:
                break
            try:
                self._invoke_batch(stage, live, middlewares, 0)
            except Exception:  # noqa: BLE001 - isolate the poisoned ctx
                for ctx in live:
                    try:
                        self._invoke(stage, ctx, middlewares, 0)
                    except Exception as exc:  # noqa: BLE001
                        ctx.failure = exc
        return ctxs

    def _invoke_batch(self, stage: Stage, ctxs: Sequence[StageContext],
                      middlewares: Sequence[StageMiddleware],
                      depth: int) -> None:
        if depth == len(middlewares):
            stage.run_batch(ctxs)
            return
        middlewares[depth].run_batch(
            stage, ctxs,
            lambda inner: self._invoke_batch(stage, inner, middlewares,
                                             depth + 1))


# ----------------------------------------------------------------------
# the ChatGraph pipeline's concrete stages (paper Fig. 1)
# ----------------------------------------------------------------------
def _group_contexts_by_graph(
        ctxs: Sequence[StageContext], content_keyed: bool = True
) -> tuple[list[StageContext], list[list[StageContext]]]:
    """Partition a batch into graph-less contexts and shared-graph groups.

    Returns ``(no_graph, groups)`` where each group holds every context
    whose prompt carries the same graph.  Grouping goes by object
    identity first (the common served case: one uploaded graph object
    fanned out across a batch, at zero hashing cost) and — when
    ``content_keyed`` — merges identity groups by
    :func:`~repro.graphs.io.fingerprint`, so two equal-but-distinct
    graph objects still land in one group (the fresh-object-per-request
    regime).  Content keying is only worth its hashing cost when the
    per-group work it saves is *more* expensive than the digest
    (sequentialize yes, a type prediction no); the digest is stashed on
    the contexts so later content-keyed stages in the same batch reuse
    it (graphs are not mutated between pipeline stages, keeping the
    stash valid for the batch's lifetime).  Group order follows first
    appearance, keeping batch results deterministic.
    """
    no_graph: list[StageContext] = []
    by_object: dict[int, list[StageContext]] = {}
    for ctx in ctxs:
        graph = ctx.prompt.graph
        if graph is None:
            no_graph.append(ctx)
        else:
            by_object.setdefault(id(graph), []).append(ctx)
    if not content_keyed:
        return no_graph, list(by_object.values())
    by_content: dict[str, list[StageContext]] = {}
    for members in by_object.values():
        key = members[0].data.get(_FINGERPRINT_KEY)
        if key is None:
            key = fingerprint(members[0].prompt.graph)
            for ctx in members:
                ctx.data[_FINGERPRINT_KEY] = key
        by_content.setdefault(key, []).extend(members)
    return no_graph, list(by_content.values())


class IntentStage(Stage):
    """Classify the prompt text (understand/compare/clean/compute)."""

    name = "intent"
    inputs = ("prompt",)
    outputs = ("intent",)

    def __init__(self, classifier: IntentClassifier) -> None:
        self.classifier = classifier

    def run(self, ctx: StageContext) -> None:
        ctx["intent"] = self.classifier.predict(ctx.prompt.text)

    def run_batch(self, ctxs: Sequence[StageContext]) -> None:
        # one shared scoring call: the classifier tokenizes and votes
        # once per *distinct* text, not once per context
        intents = self.classifier.predict_batch(
            [ctx.prompt.text for ctx in ctxs])
        for ctx, intent in zip(ctxs, intents):
            ctx["intent"] = intent

    def span_attrs(self, ctx: StageContext) -> dict[str, Any]:
        return {"intent": ctx.intent}


class GraphTypeStage(Stage):
    """Predict the uploaded graph's type and route the API categories.

    Scenario-1 routing: the predicted type selects which API categories
    retrieval (and the generate stage's allowed set) may draw from —
    social graphs get social APIs, molecules get chemistry.
    """

    name = "graph_type"
    inputs = ("prompt",)
    outputs = ("type_prediction", "graph_type", "categories")

    def __init__(self, predictor: GraphTypePredictor) -> None:
        self.predictor = predictor

    def run(self, ctx: StageContext) -> None:
        prediction: TypePrediction | None = None
        graph_type: str | None = None
        if ctx.prompt.graph is not None:
            prediction = self.predictor.predict(ctx.prompt.graph)
            graph_type = prediction.graph_type
        ctx["type_prediction"] = prediction
        ctx["graph_type"] = graph_type
        ctx["categories"] = CATEGORY_ROUTING.get(graph_type or "generic",
                                                 tuple(Category))

    def run_batch(self, ctxs: Sequence[StageContext]) -> None:
        # identity grouping: predict once per distinct graph object and
        # share the frozen TypePrediction across the group (prediction
        # is cheaper than a content digest, so content keying would
        # cost more than it saves here)
        no_graph, groups = _group_contexts_by_graph(ctxs,
                                                    content_keyed=False)
        for ctx in no_graph:
            ctx["type_prediction"] = None
            ctx["graph_type"] = None
            ctx["categories"] = CATEGORY_ROUTING.get("generic",
                                                     tuple(Category))
        for group in groups:
            prediction = self.predictor.predict(group[0].prompt.graph)
            categories = CATEGORY_ROUTING.get(prediction.graph_type,
                                              tuple(Category))
            for ctx in group:
                ctx["type_prediction"] = prediction
                ctx["graph_type"] = prediction.graph_type
                ctx["categories"] = categories

    def span_attrs(self, ctx: StageContext) -> dict[str, Any]:
        return {"graph_type": ctx.graph_type}


class RetrieveStage(Stage):
    """ANN search over API-description embeddings.

    Unembeddable text (e.g. punctuation only) degrades to an empty
    result instead of failing the request — the repair stage's fallback
    covers generation — and degraded results are never memoized.
    """

    name = "retrieval"
    inputs = ("prompt", "categories")
    outputs = ("retrieved", "retrieval_ok")
    cache_name = "retrieval"
    cache_output = "retrieved"

    def __init__(self, retriever: APIRetriever,
                 config: ChatGraphConfig) -> None:
        self.retriever = retriever
        self.config = config

    @property
    def top_k(self) -> int:
        return self.config.retrieval.top_k_apis

    def run(self, ctx: StageContext) -> None:
        try:
            names = self.retriever.retrieve_names(
                ctx.prompt.text, k=self.top_k, categories=ctx.categories)
        except EmbeddingError:
            ctx["retrieved"] = ()
            ctx["retrieval_ok"] = False
            return
        ctx["retrieved"] = names
        ctx["retrieval_ok"] = True

    def run_batch(self, ctxs: Sequence[StageContext]) -> None:
        hit_lists = self.retriever.retrieve_batch(
            [ctx.prompt.text for ctx in ctxs], k=self.top_k,
            categories_per=[ctx.categories for ctx in ctxs])
        for ctx, hits in zip(ctxs, hit_lists):
            # None marks an unembeddable text — same degradation as the
            # scalar path catching EmbeddingError
            ctx["retrieved"] = (() if hits is None
                                else tuple(hit.name for hit in hits))
            ctx["retrieval_ok"] = hits is not None

    def span_attrs(self, ctx: StageContext) -> dict[str, Any]:
        return {"n_retrieved": len(ctx.retrieved)}

    def cache_key(self, ctx: StageContext) -> Hashable:
        return (ctx.prompt.text, self.top_k, ctx.categories)

    def may_cache(self, ctx: StageContext) -> bool:
        return bool(ctx.retrieval_ok)

    def apply_cached(self, ctx: StageContext, value: Any) -> None:
        ctx["retrieved"] = value
        ctx["retrieval_ok"] = True


class SequentializeStage(Stage):
    """Render the graph for the model (length-constrained path cover)."""

    name = "sequentialize"
    inputs = ("prompt",)
    outputs = ("sequences", "graph_tokens")

    def __init__(self, sequentializer: GraphSequentializer) -> None:
        self.sequentializer = sequentializer

    def run(self, ctx: StageContext) -> None:
        sequences = None
        graph_tokens: tuple[tuple[str, int], ...] = ()
        if ctx.prompt.graph is not None:
            sequences = self.sequentializer.sequentialize(ctx.prompt.graph)
            graph_tokens = GenerationState.graph_tokens_from_counter(
                sequences.feature_counts)
        ctx["sequences"] = sequences
        ctx["graph_tokens"] = graph_tokens

    def run_batch(self, ctxs: Sequence[StageContext]) -> None:
        # the supergraph path cover is a function of graph content
        # alone, so contexts sharing a graph sequence once and share
        # the frozen GraphSequences (documented immutable/shareable)
        no_graph, groups = _group_contexts_by_graph(ctxs)
        for ctx in no_graph:
            ctx["sequences"] = None
            ctx["graph_tokens"] = ()
        for group in groups:
            sequences = self.sequentializer.sequentialize(
                group[0].prompt.graph)
            graph_tokens = GenerationState.graph_tokens_from_counter(
                sequences.feature_counts)
            for ctx in group:
                ctx["sequences"] = sequences
                ctx["graph_tokens"] = graph_tokens

    def span_attrs(self, ctx: StageContext) -> dict[str, Any]:
        return {"n_sequences":
                ctx.sequences.n_sequences if ctx.sequences else 0}


class GenerateStage(Stage):
    """Decode an API chain (greedy or beam) from the assembled state.

    The batched body decodes every greedy context through one lockstep
    :func:`~repro.llm.decoding.greedy_decode_batch` fleet; beam search
    carries per-candidate state and decodes per item.
    """

    name = "generate"
    inputs = ("prompt", "categories", "retrieved", "graph_tokens")
    outputs = ("names",)

    def __init__(self, model: ChainLanguageModel, registry: APIRegistry,
                 config: ChatGraphConfig) -> None:
        self.model = model
        self.registry = registry
        self.config = config

    def _state(self, ctx: StageContext) -> GenerationState:
        allowed = tuple(spec.name for spec in
                        self.registry.by_category(*ctx.categories))
        return GenerationState(prompt_text=ctx.prompt.text,
                               graph_tokens=ctx.graph_tokens,
                               retrieved=ctx.retrieved,
                               allowed=allowed)

    def run(self, ctx: StageContext) -> None:
        llm = self.config.llm
        state = self._state(ctx)
        if llm.beam_width > 1:
            names = beam_decode(self.model, state,
                                beam_width=llm.beam_width,
                                max_length=llm.max_chain_length)
        else:
            names = greedy_decode(self.model, state,
                                  max_length=llm.max_chain_length)
        ctx["names"] = names

    def run_batch(self, ctxs: Sequence[StageContext]) -> None:
        llm = self.config.llm
        states = [self._state(ctx) for ctx in ctxs]
        if llm.beam_width > 1:
            names_per = [beam_decode(self.model, state,
                                     beam_width=llm.beam_width,
                                     max_length=llm.max_chain_length)
                         for state in states]
        else:
            names_per = greedy_decode_batch(
                self.model, states, max_length=llm.max_chain_length)
        for ctx, names in zip(ctxs, names_per):
            ctx["names"] = names

    def span_attrs(self, ctx: StageContext) -> dict[str, Any]:
        return {"n_generated": len(ctx.names)}


class RepairStage(Stage):
    """Validate the generated chain; fall back to a keyed default.

    Consults the one :class:`~repro.core.fallbacks.FallbackRegistry`,
    so every layer repairs identically.  ``observed=False``: repair is
    sub-microsecond bookkeeping and predates the observability
    contract, so it stays out of timings, spans and profiles (keeping
    golden traces and ``PipelineResult.timings`` byte-stable).
    """

    name = "repair"
    inputs = ("names", "graph_type", "intent")
    outputs = ("chain", "used_fallback")
    observed = False

    def __init__(self, registry: APIRegistry,
                 fallbacks: FallbackRegistry) -> None:
        self.registry = registry
        self.fallbacks = fallbacks

    def run(self, ctx: StageContext) -> None:
        chain = APIChain.from_names(list(ctx.names))
        used_fallback = False
        try:
            chain.validate(self.registry)
        except ChainError:
            chain = APIChain.from_names(list(self.fallbacks.chain_for(
                ctx.graph_type, ctx.intent)))
            chain.validate(self.registry)
            used_fallback = True
        ctx["chain"] = chain
        ctx["used_fallback"] = used_fallback

    def run_batch(self, ctxs: Sequence[StageContext]) -> None:
        # validation and fallback resolution are functions of the
        # routing key alone, so each distinct (names, graph_type,
        # intent) is validated against the registry once; every context
        # still receives its own APIChain instance because chains are
        # mutable (callers edit proposed chains in place)
        resolved: dict[tuple[Any, ...], tuple[tuple[str, ...], bool]] = {}
        for ctx in ctxs:
            key = (tuple(ctx.names), ctx.graph_type, ctx.intent)
            hit = resolved.get(key)
            if hit is None:
                self.run(ctx)
                resolved[key] = (tuple(node.api_name for node in
                                       ctx.chain.nodes),
                                 ctx.used_fallback)
            else:
                names, used_fallback = hit
                ctx["chain"] = APIChain.from_names(list(names))
                ctx["used_fallback"] = used_fallback


#: The concrete stage classes of the ChatGraph pipeline, in order.
CHAT_STAGE_CLASSES: tuple[type[Stage], ...] = (
    IntentStage, GraphTypeStage, RetrieveStage, SequentializeStage,
    GenerateStage, RepairStage)

#: Every canonical stage name, in execution order — the reference the
#: stage-literal lint checks other layers against.
CANONICAL_STAGE_NAMES: tuple[str, ...] = tuple(
    cls.name for cls in CHAT_STAGE_CLASSES)


def build_chat_graph(registry: APIRegistry, retriever: APIRetriever,
                     model: ChainLanguageModel, config: ChatGraphConfig,
                     sequentializer: GraphSequentializer,
                     type_predictor: GraphTypePredictor,
                     intent_classifier: IntentClassifier,
                     fallbacks: FallbackRegistry) -> StageGraph:
    """The one declarative definition of the paper's Fig. 1 pipeline."""
    return StageGraph([
        IntentStage(intent_classifier),
        GraphTypeStage(type_predictor),
        RetrieveStage(retriever, config),
        SequentializeStage(sequentializer),
        GenerateStage(model, registry, config),
        RepairStage(registry, fallbacks),
    ])
