"""Chain execution monitoring (paper scenario 4, Fig. 7)."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any

from ..apis.executor import ExecutionEvent


@dataclass
class ChainMonitor:
    """Collects execution events and renders live progress.

    Attach it to a :class:`~repro.apis.executor.ChainExecutor` with
    ``executor.add_listener(monitor)`` — the instance is callable.

    ``events`` is the full transcript across every chain the monitor
    observed; the progress state (``progress``, ``current_step``, the
    recovery counters) is reset on each ``chain_started`` so a reused
    monitor reports the *current* chain, not an accumulation.
    """

    events: list[ExecutionEvent] = field(default_factory=list)
    n_steps: int = 0
    current_step: int = -1
    finished: bool = False
    failed: bool = False
    #: Steps finished in the current chain (not across the transcript).
    steps_done: int = 0
    #: Recovery activity within the current chain.
    retries: int = 0
    timeouts: int = 0
    breaker_trips: int = 0

    def __call__(self, event: ExecutionEvent) -> None:
        self.events.append(event)
        if event.kind == "chain_started":
            if event.n_steps is not None:
                self.n_steps = event.n_steps
            else:
                # legacy events (pre-``n_steps``) only carry the count
                # inside the rendered detail string
                prefix = event.detail.split(" steps:", 1)[0]
                try:
                    self.n_steps = int(prefix)
                except ValueError:
                    self.n_steps = 0
            self.current_step = -1
            self.finished = self.failed = False
            self.steps_done = 0
            self.retries = self.timeouts = self.breaker_trips = 0
        elif event.kind == "step_started":
            if event.step_index is not None:
                self.current_step = event.step_index
        elif event.kind == "step_finished":
            self.steps_done += 1
        elif event.kind == "step_retried":
            self.retries += 1
        elif event.kind == "step_timed_out":
            self.timeouts += 1
        elif event.kind == "breaker_opened":
            self.breaker_trips += 1
        elif event.kind == "step_failed":
            self.failed = True
        elif event.kind == "chain_finished":
            self.finished = True
        elif event.kind == "chain_failed":
            self.failed = True
            self.finished = True

    @property
    def progress(self) -> float:
        """Fraction of the current chain's steps finished, in [0, 1]."""
        if self.n_steps == 0:
            return 1.0 if self.finished else 0.0
        return min(1.0, self.steps_done / self.n_steps)

    def render_progress(self, width: int = 30) -> str:
        """One-line progress bar like ``[#####.....] 3/6 step ...``."""
        filled = int(self.progress * width)
        bar = "#" * filled + "." * (width - filled)
        status = "failed" if self.failed else (
            "done" if self.finished else f"running step {self.current_step}")
        recovery = ""
        if self.retries or self.timeouts or self.breaker_trips:
            parts = []
            if self.retries:
                parts.append(f"{self.retries} retries")
            if self.timeouts:
                parts.append(f"{self.timeouts} timeouts")
            if self.breaker_trips:
                parts.append(f"{self.breaker_trips} breaker trips")
            recovery = f" ({', '.join(parts)})"
        return f"[{bar}] {self.steps_done}/{self.n_steps} {status}{recovery}"

    def transcript(self) -> str:
        """Every event rendered, one per line."""
        return "\n".join(event.render() for event in self.events)

    def event_counts(self) -> dict[str, int]:
        """Event kinds seen across the whole transcript."""
        return dict(Counter(event.kind for event in self.events))

    def replay_into(self, metrics: Any) -> None:
        """Re-feed the transcript into an observability sink.

        ``metrics`` is anything with the executor-listener protocol
        (``on_execution_event(event)``), typically a
        :class:`repro.obs.MetricsRegistry` — lets a monitor recorded
        offline populate the same counters a live listener would.
        """
        for event in self.events:
            metrics.on_execution_event(event)

    def reset(self) -> None:
        self.events.clear()
        self.n_steps = 0
        self.current_step = -1
        self.finished = self.failed = False
        self.steps_done = 0
        self.retries = self.timeouts = self.breaker_trips = 0
