"""Chain execution monitoring (paper scenario 4, Fig. 7)."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..apis.executor import ExecutionEvent


@dataclass
class ChainMonitor:
    """Collects execution events and renders live progress.

    Attach it to a :class:`~repro.apis.executor.ChainExecutor` with
    ``executor.add_listener(monitor)`` — the instance is callable.
    """

    events: list[ExecutionEvent] = field(default_factory=list)
    n_steps: int = 0
    current_step: int = -1
    finished: bool = False
    failed: bool = False

    def __call__(self, event: ExecutionEvent) -> None:
        self.events.append(event)
        if event.kind == "chain_started":
            if event.n_steps is not None:
                self.n_steps = event.n_steps
            else:
                # legacy events (pre-``n_steps``) only carry the count
                # inside the rendered detail string
                prefix = event.detail.split(" steps:", 1)[0]
                try:
                    self.n_steps = int(prefix)
                except ValueError:
                    self.n_steps = 0
            self.current_step = -1
            self.finished = self.failed = False
        elif event.kind == "step_started":
            self.current_step = event.step_index or 0
        elif event.kind == "step_failed":
            self.failed = True
        elif event.kind == "chain_finished":
            self.finished = True
        elif event.kind == "chain_failed":
            self.failed = True
            self.finished = True

    @property
    def progress(self) -> float:
        """Fraction of steps finished, in [0, 1]."""
        if self.n_steps == 0:
            return 1.0 if self.finished else 0.0
        done = sum(1 for e in self.events if e.kind == "step_finished")
        return min(1.0, done / self.n_steps)

    def render_progress(self, width: int = 30) -> str:
        """One-line progress bar like ``[#####.....] 3/6 step ...``."""
        filled = int(self.progress * width)
        bar = "#" * filled + "." * (width - filled)
        done = sum(1 for e in self.events if e.kind == "step_finished")
        status = "failed" if self.failed else (
            "done" if self.finished else f"running step {self.current_step}")
        return f"[{bar}] {done}/{self.n_steps} {status}"

    def transcript(self) -> str:
        """Every event rendered, one per line."""
        return "\n".join(event.render() for event in self.events)

    def reset(self) -> None:
        self.events.clear()
        self.n_steps = 0
        self.current_step = -1
        self.finished = self.failed = False
