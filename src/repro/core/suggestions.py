"""Suggested questions (paper Fig. 2, panel 2)."""

from __future__ import annotations

from ..graphs.graph import Graph
from ..llm.intent import predict_graph_type

_SUGGESTIONS: dict[str, tuple[str, ...]] = {
    "social": (
        "Write a brief report for G",
        "Detect the communities of this network",
        "Who are the most influential members?",
        "Find the bridges and cut members of the network",
    ),
    "molecule": (
        "Write a report about this molecule",
        "What molecules are similar to G?",
        "Is this molecule toxic?",
        "How soluble is this molecule?",
    ),
    "knowledge": (
        "Clean G",
        "Which facts in this graph are wrong?",
        "What facts are missing from this graph?",
        "Profile this knowledge graph",
    ),
    "generic": (
        "Write a brief report for G",
        "How many nodes does the graph have?",
        "What is the diameter of the graph?",
        "Rank the nodes by pagerank",
    ),
}


def suggested_questions(graph: Graph | None = None,
                        limit: int = 4) -> list[str]:
    """Questions the session suggests for the uploaded graph (if any)."""
    graph_type = "generic" if graph is None else predict_graph_type(graph)
    return list(_SUGGESTIONS.get(graph_type, _SUGGESTIONS["generic"])
                [:max(limit, 0)])
