"""Named soak scenarios: arrival shape + serve config + SLO contract.

A :class:`Scenario` bundles everything one soak needs — the arrival
process, the persona population, the server configuration, an optional
chaos window, and the :class:`~repro.loadgen.slo.SLOSpec` the run is
gated on.  Three presets cover the production shapes the ROADMAP
names:

* ``steady``  — constant arrivals, no faults: the baseline contract
  (zero errors, zero shed load, flat latency).
* ``diurnal`` — sinusoidal day/night arrivals with per-client rate
  limiting and short session TTLs, so peak traffic exercises the token
  buckets and the troughs exercise TTL eviction.
* ``spike``   — a step overload aligned with a chaos brownout of every
  API: the run must shed load via admission backpressure, trip
  breakers, degrade the affected responses, and *recover* once the
  spike passes — the breaker/degradation/fallback story end to end.

:func:`run_scenario` builds the schedule, the (optionally
chaos-wrapped) ChatGraph, a fresh server, and a
:class:`~repro.loadgen.runner.SoakRunner`, then attaches the SLO
verdict to the report.  Under the default fake clock a full scenario
runs in seconds and is deterministic; ``fake_clock=False`` replays the
same schedule against the real clock.
"""

from __future__ import annotations

import tempfile
import time
from dataclasses import dataclass, field
from typing import Any

from ..config import ServeConfig
from ..errors import ConfigError
from .arrivals import (
    ArrivalProcess,
    ConstantRate,
    DiurnalSinusoid,
    StepSpike,
)
from .chaos import WindowedChaos
from .personas import DEFAULT_PERSONAS, PersonaSpec, default_pool
from .runner import SoakRunner, VirtualClock
from .schedule import build_schedule
from .slo import SLOGate, SLOSpec, evaluate_slo

__all__ = ["SCENARIOS", "Scenario", "build_soak_chatgraph",
           "get_scenario", "run_scenario"]

#: Scenario names ``bench-slo --scenario all`` runs (``smoke`` is the
#: extra real-clock sanity preset, addressable by name).
SCENARIOS = ("steady", "diurnal", "spike")


@dataclass(frozen=True)
class Scenario:
    """One fully specified soak: traffic in, SLO contract out."""

    name: str
    description: str
    duration: float
    window_seconds: float
    arrival: ArrivalProcess
    serve: ServeConfig
    slo: SLOSpec
    personas: tuple[PersonaSpec, ...] = DEFAULT_PERSONAS
    chaos: WindowedChaos | None = None
    #: Demo-pool keys published into a temporary durable catalog so
    #: personas with ``catalog_share > 0`` emit named-graph traffic.
    catalog_graphs: tuple[str, ...] = ()
    quick: bool = field(default=False, compare=False)


def _steady(quick: bool) -> Scenario:
    duration = 90.0 if quick else 300.0
    return Scenario(
        name="steady",
        description="constant arrivals, no faults: the baseline "
                    "contract of zero errors and flat latency",
        duration=duration,
        window_seconds=30.0,
        arrival=ConstantRate(rate=0.4 if quick else 1.0),
        serve=ServeConfig(workers=4, queue_depth=512),
        catalog_graphs=("social-m", "kg-m"),
        slo=SLOSpec(name="steady", gates=(
            SLOGate(metric="error_rate", max_value=0.0),
            SLOGate(metric="degraded_rate", max_value=0.0),
            SLOGate(metric="rejection_rate", max_value=0.0),
            SLOGate(metric="p95_latency", max_value=2.0),
            SLOGate(metric="p99_latency", max_value=5.0),
            SLOGate(metric="p95_latency", persona="one_shot",
                    max_value=2.0),
            SLOGate(metric="breaker_opened", max_value=0.0),
            # the prompt/graph mix repeats, so a healthy retrieval
            # cache must warm well past this floor (observed ~0.9)
            SLOGate(metric="cache_hit_rate", min_value=0.3),
        )),
        quick=quick,
    )


def _diurnal(quick: bool) -> Scenario:
    duration = 180.0 if quick else 1200.0
    return Scenario(
        name="diurnal",
        description="sinusoidal day/night arrivals with per-client "
                    "rate limits and short session TTLs",
        duration=duration,
        window_seconds=30.0 if quick else 60.0,
        arrival=DiurnalSinusoid(
            base_rate=0.3 if quick else 0.5,
            amplitude=0.8,
            period_seconds=90.0 if quick else 600.0),
        serve=ServeConfig(
            workers=4, queue_depth=512,
            rate_limit_capacity=3,
            rate_limit_refill_per_second=0.5,
            rate_limit_idle_seconds=60.0 if quick else 120.0,
            session_ttl_seconds=45.0 if quick else 180.0),
        catalog_graphs=("social-m", "kg-m"),
        slo=SLOSpec(name="diurnal", gates=(
            SLOGate(metric="error_rate", max_value=0.0),
            SLOGate(metric="degraded_rate", max_value=0.0),
            # the power-burst persona is *expected* to hit its token
            # bucket at peak; the budget bounds how much is shed
            SLOGate(metric="rejection_rate", max_value=0.25),
            SLOGate(metric="p95_latency", max_value=2.0,
                    window_budget=0.25),
            SLOGate(metric="breaker_opened", max_value=0.0),
        )),
        quick=quick,
    )


def _spike(quick: bool) -> Scenario:
    duration = 120.0 if quick else 240.0
    spike_start = 30.0 if quick else 60.0
    spike_end = spike_start + 15.0
    return Scenario(
        name="spike",
        description="step overload aligned with an all-API chaos "
                    "brownout: shed, degrade, trip breakers, recover",
        duration=duration,
        window_seconds=15.0,
        arrival=StepSpike(
            base_rate=0.25,
            spike_rate=5.0 if quick else 8.0,
            spike_start=spike_start,
            spike_end=spike_end),
        serve=ServeConfig(
            workers=2, queue_depth=8,
            step_max_retries=1,
            retry_backoff_seconds=0.002,
            breaker_failure_threshold=3,
            breaker_failure_rate=0.5,
            breaker_window=10,
            breaker_cooldown_seconds=20.0 if quick else 30.0),
        chaos=WindowedChaos(
            start=spike_start, end=spike_end,
            api_names=None, failure_rate=1.0,
            delay_seconds=0.004),
        slo=SLOSpec(name="spike", gates=(
            # the contract is the *recovery story*, not zero faults:
            # breakers must trip, load must shed, and by the end no
            # circuit may still be open
            SLOGate(metric="breaker_opened", min_value=1.0),
            SLOGate(metric="breakers_recovered", min_value=1.0),
            SLOGate(metric="rejection_rate", min_value=0.001,
                    max_value=0.9),
            SLOGate(metric="error_rate", max_value=0.1,
                    window_budget=0.25),
            # the error budget: the brownout and the breaker cooldown
            # may degrade up to ~a third of the windows, no more
            SLOGate(metric="degraded_rate", max_value=0.05,
                    window_budget=0.35),
            SLOGate(metric="p95_latency", max_value=5.0),
        )),
        quick=quick,
    )


def _smoke(quick: bool) -> Scenario:
    """Tiny constant-rate run, sized for a real-clock sanity pass."""
    return Scenario(
        name="smoke",
        description="ten seconds of constant arrivals: the real-clock "
                    "sanity pass",
        duration=10.0,
        window_seconds=5.0,
        arrival=ConstantRate(rate=1.5),
        serve=ServeConfig(workers=2, queue_depth=64),
        slo=SLOSpec(name="smoke", gates=(
            SLOGate(metric="error_rate", max_value=0.0),
            SLOGate(metric="rejection_rate", max_value=0.0),
            SLOGate(metric="p95_latency", max_value=5.0),
        )),
        quick=quick,
    )


_BUILDERS = {"steady": _steady, "diurnal": _diurnal, "spike": _spike,
             "smoke": _smoke}


def get_scenario(name: str, quick: bool = False) -> Scenario:
    builder = _BUILDERS.get(name)
    if builder is None:
        raise ConfigError(f"unknown scenario {name!r}; expected one of "
                          f"{tuple(_BUILDERS)}")
    return builder(quick)


def build_soak_chatgraph(chaos: WindowedChaos | None = None,
                         corpus_size: int = 200,
                         seed: int = 0) -> Any:
    """A finetuned ChatGraph, optionally over a chaos-wrapped registry.

    Chaos must wrap the registry *before* the model trains over it, so
    the build goes registry -> wrap -> finetune (the same shape as the
    chaos CLI).  With the chaos window inactive the wrapped registry is
    a pass-through, so training sees normal behavior.
    """
    from ..apis.registry import default_registry
    from ..core.chatgraph import ChatGraph
    from ..finetune.dataset import CorpusSpec

    if chaos is None:
        return ChatGraph.pretrained(corpus_size=corpus_size, seed=seed)
    chatgraph = ChatGraph(registry=chaos.wrap_registry(default_registry()))
    chatgraph.finetune(CorpusSpec(n_examples=corpus_size, seed=seed))
    return chatgraph


def run_scenario(scenario: Scenario, seed: int = 0,
                 fake_clock: bool = True, corpus_size: int = 200,
                 chatgraph: Any = None,
                 window_seconds: float | None = None) -> dict[str, Any]:
    """Execute one scenario end to end and return its gated report.

    Pass a prebuilt ``chatgraph`` to amortize finetuning across runs —
    but for chaos scenarios it must have been built over *this*
    scenario's chaos-wrapped registry (:func:`build_soak_chatgraph`).
    """
    from ..serve.engine import ChatGraphServer

    if chatgraph is None:
        chatgraph = build_soak_chatgraph(
            chaos=scenario.chaos, corpus_size=corpus_size, seed=seed)
    pool = default_pool()
    clock = VirtualClock() if fake_clock else None
    tmpdir = None
    catalog = None
    catalog_names: list[str] = []
    try:
        if scenario.catalog_graphs:
            from ..store.catalog import GraphCatalog
            tmpdir = tempfile.TemporaryDirectory(prefix="loadgen-store-")
            catalog = GraphCatalog(tmpdir.name)
            for key in scenario.catalog_graphs:
                name = f"demo-{key}"
                handle = catalog.create(
                    name, directed=pool[key].directed)
                handle.ingest(pool[key])
                catalog_names.append(name)
        schedule = build_schedule(
            scenario.arrival, scenario.duration,
            personas=scenario.personas, seed=seed, pool=pool,
            catalog_names=tuple(catalog_names))
        if scenario.chaos is not None:
            scenario.chaos.reset()
            if clock is not None:
                scenario.chaos.use_clock(clock)
            else:
                # real-clock runs measure the chaos window from soak
                # start, mirroring the runner's own origin
                origin = time.monotonic()
                scenario.chaos.use_clock(
                    lambda: time.monotonic() - origin)
        server = ChatGraphServer(chatgraph, scenario.serve,
                                 catalog=catalog, clock=clock)
        # the fake clock may not cross a chaos-window edge while work
        # is still outstanding: everything admitted during the window
        # must execute inside it (and pre-window work before it)
        barriers: tuple[float, ...] = ()
        if scenario.chaos is not None:
            barriers = (scenario.chaos.start, scenario.chaos.end)
        runner = SoakRunner(
            server, schedule,
            window_seconds=window_seconds or scenario.window_seconds,
            clock=clock, barriers=barriers)
        with server:
            report = runner.run()
    finally:
        if scenario.chaos is not None:
            scenario.chaos.use_clock(None)
        if tmpdir is not None:
            tmpdir.cleanup()
    report["scenario"] = scenario.name
    report["description"] = scenario.description
    report["quick"] = scenario.quick
    if scenario.chaos is not None:
        report["chaos"] = scenario.chaos.stats()
    report["slo_spec"] = scenario.slo.to_dict()
    report["slo"] = evaluate_slo(report, scenario.slo)
    return report
