"""Production traffic simulation with SLO gates.

The load generator turns the serving stack into a testable production
system: parameterized user personas (:mod:`~repro.loadgen.personas`)
emit seeded request streams, open-loop arrival processes
(:mod:`~repro.loadgen.arrivals`) place them on a timeline,
:func:`build_schedule` freezes the combination into a byte-identical
:class:`Schedule`, and a :class:`SoakRunner` replays it against a
:class:`~repro.serve.engine.ChatGraphServer` under either the real
clock or a :class:`VirtualClock`.  The resulting soak report —
latency trajectories per persona, error/rejection rates, cache-hit and
breaker timelines — is gated by declarative :class:`SLOSpec`
contracts (:func:`evaluate_slo`), and :func:`run_scenario` packages
named presets end to end (``python -m repro.cli bench-slo``).
"""

from .arrivals import (
    ArrivalProcess,
    ConstantRate,
    DiurnalSinusoid,
    PoissonBursts,
    StepSpike,
)
from .chaos import WindowedChaos
from .personas import (
    DEFAULT_PERSONAS,
    PersonaSpec,
    bench_workload,
    default_pool,
    user_requests,
)
from .runner import SoakRunner, VirtualClock
from .schedule import Schedule, ScheduledRequest, build_schedule
from .scenarios import (
    SCENARIOS,
    Scenario,
    build_soak_chatgraph,
    get_scenario,
    run_scenario,
)
from .slo import METRICS, SLOGate, SLOSpec, evaluate_slo

__all__ = [
    "ArrivalProcess",
    "ConstantRate",
    "DiurnalSinusoid",
    "PoissonBursts",
    "StepSpike",
    "WindowedChaos",
    "DEFAULT_PERSONAS",
    "PersonaSpec",
    "bench_workload",
    "default_pool",
    "user_requests",
    "SoakRunner",
    "VirtualClock",
    "Schedule",
    "ScheduledRequest",
    "build_schedule",
    "SCENARIOS",
    "Scenario",
    "build_soak_chatgraph",
    "get_scenario",
    "run_scenario",
    "METRICS",
    "SLOGate",
    "SLOSpec",
    "evaluate_slo",
]
