"""Virtual-time chaos: fault APIs only inside a schedule window.

The existing :mod:`repro.testing.faults` injector decides per *call
count*; a soak needs faults tied to the *scenario timeline* — "the
backend browns out between t=60s and t=75s" — so overload, breaker
trips, and recovery line up with the arrival spike that the SLO report
narrates.  :class:`WindowedChaos` wraps registry APIs with a proxy
that consults an injectable monotonic clock (the soak's
:class:`~repro.loadgen.runner.VirtualClock` in fake-clock runs): while
the clock reads inside ``[start, end)`` the wrapped APIs slow down and
fail; outside the window they pass straight through.

Because activation is a pure function of (virtual) time, a fake-clock
soak exercises the breaker/degradation/fallback paths deterministically
— the same schedule always browns out the same calls.
"""

from __future__ import annotations

import random
import threading
import time
from collections import Counter
from dataclasses import replace
from typing import Any, Callable

from ..apis.registry import APIRegistry, APISpec
from ..errors import ChatGraphError, FaultInjectionError

Clock = Callable[[], float]
Sleep = Callable[[float], None]


class WindowedChaos:
    """Fails (and slows) APIs while an injected clock is in a window.

    ``api_names=None`` faults every API in the registry — the
    brownout-everything profile the spike scenario uses to guarantee
    breaker trips regardless of which chains the decoded traffic runs.
    The clock binds late (:meth:`use_clock`) so one wrapped registry —
    and the finetuned ChatGraph built over it — can be reused across
    soak runs, each with a fresh virtual clock.
    """

    def __init__(self, start: float, end: float,
                 api_names: tuple[str, ...] | None = None,
                 failure_rate: float = 1.0,
                 delay_seconds: float = 0.0,
                 seed: int = 0,
                 sleep: Sleep = time.sleep) -> None:
        if not 0.0 <= start < end:
            raise ChatGraphError("need 0 <= start < end")
        if not 0.0 <= failure_rate <= 1.0:
            raise ChatGraphError("failure_rate must be in [0, 1]")
        if delay_seconds < 0.0:
            raise ChatGraphError("delay_seconds must be >= 0")
        self.start = start
        self.end = end
        self.api_names = api_names
        self.failure_rate = failure_rate
        self.delay_seconds = delay_seconds
        self.seed = seed
        self._sleep = sleep
        self._clock: Clock | None = None
        self._lock = threading.Lock()
        self._rngs: dict[str, random.Random] = {}
        self._injected: Counter = Counter()
        self._delayed: Counter = Counter()

    # ------------------------------------------------------------------
    def use_clock(self, clock: Clock | None) -> None:
        """Bind the soak's clock; ``None`` deactivates the window."""
        with self._lock:
            self._clock = clock

    def reset(self) -> None:
        """Clear per-run state (counters and RNG streams)."""
        with self._lock:
            self._rngs.clear()
            self._injected.clear()
            self._delayed.clear()

    def active(self) -> bool:
        """Whether the bound clock currently reads inside the window."""
        with self._lock:
            clock = self._clock
        if clock is None:
            return False
        return self.start <= clock() < self.end

    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {"injected_failures": dict(self._injected),
                    "injected_delays": dict(self._delayed)}

    @property
    def injected_failures(self) -> int:
        with self._lock:
            return sum(self._injected.values())

    # ------------------------------------------------------------------
    def _tick(self, api_name: str) -> tuple[bool, bool]:
        """(fail?, delay?) for one call of ``api_name`` right now."""
        if not self.active():
            return False, False
        with self._lock:
            rng = self._rngs.get(api_name)
            if rng is None:
                rng = random.Random(f"{self.seed}\x1f{api_name}")
                self._rngs[api_name] = rng
            fail = (self.failure_rate >= 1.0
                    or rng.random() < self.failure_rate)
            delay = self.delay_seconds > 0.0
            if fail:
                self._injected[api_name] += 1
            if delay:
                self._delayed[api_name] += 1
            return fail, delay

    def wrap_spec(self, spec: APISpec) -> APISpec:
        inner = spec.func
        api_name = spec.name

        def browned_out(context: Any, **kwargs: Any) -> Any:
            fail, delay = self._tick(api_name)
            if delay:
                # a stalled backend: the delay applies before the
                # failure surfaces, like faults.FaultSpec(hang=True)
                self._sleep(self.delay_seconds)
            if fail:
                raise FaultInjectionError(
                    api_name, 0, "windowed chaos brownout")
            return inner(context, **kwargs)

        return replace(spec, func=browned_out)

    def wrap_registry(self, registry: APIRegistry) -> APIRegistry:
        """A new registry with the targeted specs wrapped.

        Untouched specs are re-registered as-is, so retrieval (which
        embeds names and descriptions) behaves identically.
        """
        if self.api_names is not None:
            unknown = set(self.api_names) - set(registry.names())
            if unknown:
                raise ChatGraphError(
                    f"cannot fault unknown APIs {sorted(unknown)}")
        wrapped = APIRegistry()
        for spec in registry:
            if self.api_names is None or spec.name in self.api_names:
                wrapped.register(self.wrap_spec(spec))
            else:
                wrapped.register(spec)
        return wrapped
