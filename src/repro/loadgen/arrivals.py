"""Open-loop arrival processes: *when* simulated users show up.

Every process maps ``(duration, rng)`` to a sorted list of arrival
offsets in virtual seconds from soak start.  Generation is pure — the
only randomness comes from the :class:`random.Random` the caller
passes, so a fixed seed yields a byte-identical schedule — and
open-loop: arrival times never depend on how the server responds,
which is what lets a soak genuinely overload the serve tier instead of
self-throttling the way closed-loop benches do.

This module must stay free of the :mod:`time` module entirely (virtual
time only); ``tests/test_clock_discipline.py`` audits that.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from ..errors import ConfigError


class ArrivalProcess:
    """Base: a deterministic generator of arrival offsets."""

    #: Stable identifier used in schedule fingerprints and reports.
    name = "arrival"

    def times(self, duration: float,
              rng: random.Random) -> list[float]:
        """Sorted arrival offsets in ``[0, duration)``."""
        raise NotImplementedError

    def rate_at(self, t: float) -> float:
        """Expected instantaneous arrival rate at offset ``t``."""
        raise NotImplementedError


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigError(message)


@dataclass(frozen=True)
class ConstantRate(ArrivalProcess):
    """Evenly spaced arrivals at ``rate`` per second (no randomness)."""

    rate: float
    name = "constant"

    def __post_init__(self) -> None:
        _require(self.rate > 0.0, "rate must be > 0")

    def times(self, duration: float,
              rng: random.Random) -> list[float]:
        count = int(math.floor(duration * self.rate))
        return [index / self.rate for index in range(count)]

    def rate_at(self, t: float) -> float:
        return self.rate


@dataclass(frozen=True)
class PoissonBursts(ArrivalProcess):
    """Homogeneous Poisson process: bursty, memoryless arrivals.

    Inter-arrival gaps are i.i.d. exponential with mean ``1/rate`` —
    the classic model for independent users, and the one that produces
    natural short bursts a constant-rate schedule never shows.
    """

    rate: float
    name = "poisson"

    def __post_init__(self) -> None:
        _require(self.rate > 0.0, "rate must be > 0")

    def times(self, duration: float,
              rng: random.Random) -> list[float]:
        out: list[float] = []
        t = rng.expovariate(self.rate)
        while t < duration:
            out.append(t)
            t += rng.expovariate(self.rate)
        return out

    def rate_at(self, t: float) -> float:
        return self.rate


@dataclass(frozen=True)
class DiurnalSinusoid(ArrivalProcess):
    """Non-homogeneous Poisson with a sinusoidal day/night rate.

    ``rate(t) = base_rate * (1 + amplitude * sin(2*pi*t / period))``,
    realized by thinning a homogeneous process at the peak rate: each
    candidate arrival is kept with probability ``rate(t) / peak``.
    ``amplitude`` in ``[0, 1)`` keeps the trough rate positive.
    """

    base_rate: float
    amplitude: float = 0.6
    period_seconds: float = 600.0
    name = "diurnal"

    def __post_init__(self) -> None:
        _require(self.base_rate > 0.0, "base_rate must be > 0")
        _require(0.0 <= self.amplitude < 1.0,
                 "amplitude must be in [0, 1)")
        _require(self.period_seconds > 0.0, "period_seconds must be > 0")

    def rate_at(self, t: float) -> float:
        return self.base_rate * (
            1.0 + self.amplitude
            * math.sin(2.0 * math.pi * t / self.period_seconds))

    def times(self, duration: float,
              rng: random.Random) -> list[float]:
        peak = self.base_rate * (1.0 + self.amplitude)
        out: list[float] = []
        t = rng.expovariate(peak)
        while t < duration:
            if rng.random() < self.rate_at(t) / peak:
                out.append(t)
            t += rng.expovariate(peak)
        return out


@dataclass(frozen=True)
class StepSpike(ArrivalProcess):
    """Constant base load with a deterministic rate step inside a window.

    Outside ``[spike_start, spike_end)`` arrivals come at ``base_rate``;
    inside, extra arrivals at ``spike_rate - base_rate`` are interleaved
    so the window runs at exactly ``spike_rate``.  Fully deterministic
    (no rng draws): the spike test's rejection and breaker behavior
    should depend on the serve tier, not on sampling luck.
    """

    base_rate: float
    spike_rate: float
    spike_start: float
    spike_end: float
    name = "step-spike"

    def __post_init__(self) -> None:
        _require(self.base_rate > 0.0, "base_rate must be > 0")
        _require(self.spike_rate > self.base_rate,
                 "spike_rate must exceed base_rate")
        _require(0.0 <= self.spike_start < self.spike_end,
                 "need 0 <= spike_start < spike_end")

    def rate_at(self, t: float) -> float:
        if self.spike_start <= t < self.spike_end:
            return self.spike_rate
        return self.base_rate

    def times(self, duration: float,
              rng: random.Random) -> list[float]:
        base = [index / self.base_rate
                for index in range(int(math.floor(duration
                                                  * self.base_rate)))]
        extra_rate = self.spike_rate - self.base_rate
        window = min(self.spike_end, duration) - self.spike_start
        extra_count = max(0, int(math.floor(window * extra_rate)))
        extra = [self.spike_start + index / extra_rate
                 for index in range(extra_count)]
        return sorted(base + extra)
