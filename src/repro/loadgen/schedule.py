"""Deterministic population schedules: personas x arrival process.

:func:`build_schedule` runs the whole generation pipeline up front,
single-threaded: the arrival process lays down user start times, a
weighted draw assigns each arrival a persona, and every user's turns
are placed at ``start + cumulative think time``.  The result is one
time-sorted :class:`Schedule` whose canonical JSONL serialization is
byte-identical across runs under a fixed seed — the property the
``bench-slo`` gate and the hypothesis suite both pin.

This module must stay free of the :mod:`time` module entirely (virtual
time only); ``tests/test_clock_discipline.py`` audits that.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass

from ..graphs.graph import Graph
from .arrivals import ArrivalProcess
from .personas import (
    DEFAULT_PERSONAS,
    PersonaSpec,
    default_pool,
    pick_persona,
    user_requests,
)

__all__ = ["Schedule", "ScheduledRequest", "build_schedule"]


@dataclass(frozen=True)
class ScheduledRequest:
    """One scheduled unit of traffic."""

    #: Virtual offset (seconds from soak start) the request is issued.
    at: float
    persona: str
    #: Unique simulated-user id (doubles as client_id / session_id).
    user: str
    #: Index of this user's arrival (global, deterministic).
    arrival: int
    #: Turn index within the user's script.
    seq: int
    #: Graph label: pool key or ``name:<catalog>``.
    graph_key: str
    request: "object"

    def to_canonical(self) -> dict[str, object]:
        """The serializable identity of this entry (no live objects)."""
        request = self.request
        return {
            "at": round(self.at, 9),
            "persona": self.persona,
            "user": self.user,
            "seq": self.seq,
            "op": request.op,
            "text": request.text,
            "client": request.client_id,
            "session": request.session_id,
            "graph": self.graph_key,
        }


class Schedule:
    """A time-sorted request schedule plus its provenance."""

    def __init__(self, items: list[ScheduledRequest], duration: float,
                 seed: int, arrival_name: str) -> None:
        self.items = tuple(items)
        self.duration = duration
        self.seed = seed
        self.arrival_name = arrival_name

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self):
        return iter(self.items)

    def to_jsonl(self) -> str:
        """Canonical byte-stable serialization (one line per request)."""
        lines = [json.dumps(item.to_canonical(), sort_keys=True,
                            separators=(",", ":"))
                 for item in self.items]
        return "\n".join(lines) + ("\n" if lines else "")

    def sha256(self) -> str:
        """Fingerprint of the canonical serialization."""
        return hashlib.sha256(
            self.to_jsonl().encode("utf-8")).hexdigest()

    def persona_counts(self) -> dict[str, int]:
        """Requests per persona (for mix-convergence checks/reports)."""
        counts: dict[str, int] = {}
        for item in self.items:
            counts[item.persona] = counts.get(item.persona, 0) + 1
        return counts

    def user_count(self) -> int:
        return len({item.user for item in self.items})


def build_schedule(arrival: ArrivalProcess, duration: float,
                   personas: tuple[PersonaSpec, ...] = DEFAULT_PERSONAS,
                   seed: int = 0,
                   pool: dict[str, Graph] | None = None,
                   catalog_names: tuple[str, ...] = ()) -> Schedule:
    """Generate the full deterministic schedule for one soak run.

    Separate seeded RNG streams per concern — arrivals, persona
    assignment, and one stream per user — keep every component's draws
    independent: adding a persona or lengthening the run never perturbs
    the traffic other components generate.
    """
    pool = default_pool() if pool is None else pool
    arrival_rng = random.Random(f"{seed}\x1farrivals\x1f{arrival.name}")
    assign_rng = random.Random(f"{seed}\x1fassign")
    items: list[ScheduledRequest] = []
    for index, start in enumerate(arrival.times(duration, arrival_rng)):
        spec = pick_persona(personas, assign_rng)
        user_id = f"{spec.name}-{index}"
        user_rng = random.Random(f"{seed}\x1f{spec.name}\x1f{index}")
        for timed in user_requests(spec, user_id, start, user_rng, pool,
                                   catalog_names=catalog_names):
            items.append(ScheduledRequest(
                at=timed.at, persona=spec.name, user=user_id,
                arrival=index, seq=timed.seq,
                graph_key=timed.graph_key, request=timed.request))
    # stable total order: virtual time, then arrival order, then turn
    items.sort(key=lambda item: (item.at, item.arrival, item.seq))
    return Schedule(items, duration=duration, seed=seed,
                    arrival_name=arrival.name)
