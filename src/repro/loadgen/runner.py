"""The soak runner: replay a schedule against a live ChatGraphServer.

Two clock disciplines share one loop:

* **real clock** (default) — the runner sleeps until each request's
  scheduled offset and submits open-loop; end-to-end latency includes
  real queueing.
* **fake clock** — the runner drives a :class:`VirtualClock` (inject
  the same instance into the server via ``ChatGraphServer(...,
  clock=...)``): think times, TTLs, rate-limit refills, breaker
  cooldowns, and chaos windows elapse *virtually*, so an hour-long
  diurnal soak runs in seconds and is deterministic.  Because virtual
  idle time costs nothing, the runner drains outstanding work whenever
  the next virtual inter-arrival gap is at least ``pace_gap_seconds``
  — compression itself must not overload the server — while closer
  arrivals fire back-to-back, so genuine bursts still pile onto the
  admission queue and exercise backpressure.  Latency gates read pure
  service time in this mode (real queued time under compression is an
  artifact); real-clock runs gate on queued + service.

The report sources every quantile from the
:class:`repro.obs.metrics.Histogram` primitive and reconciles the
runner's own event counts exactly against ``server.stats()`` — a soak
whose books don't balance is a bug, not a report.
"""

from __future__ import annotations

import math
import threading
import time
from typing import Any

from ..errors import BackpressureError, RateLimitError
from ..obs.metrics import Histogram
from .schedule import Schedule, ScheduledRequest

__all__ = ["SoakRunner", "VirtualClock"]


class VirtualClock:
    """A monotonic clock advanced by hand (thread-safe).

    Inject one instance into both the server (TTL, rate limits,
    breaker cooldowns) and any :class:`~repro.loadgen.chaos.
    WindowedChaos` so every time-dependent component sees the same
    virtual timeline.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._lock = threading.Lock()

    def __call__(self) -> float:
        with self._lock:
            return self._now

    def advance(self, seconds: float) -> float:
        if seconds < 0.0:
            raise ValueError("virtual clocks never run backwards")
        with self._lock:
            self._now += seconds
            return self._now

    def advance_to(self, target: float) -> float:
        """Move to ``target`` (no-op if the clock is already past it)."""
        with self._lock:
            if target > self._now:
                self._now = target
            return self._now


class _Agg:
    """Counts + a latency histogram for one report scope."""

    __slots__ = ("submitted", "ok", "errors", "degraded",
                 "rejected_rate_limit", "rejected_backpressure",
                 "latency")

    def __init__(self) -> None:
        self.submitted = 0
        self.ok = 0
        self.errors = 0
        self.degraded = 0
        self.rejected_rate_limit = 0
        self.rejected_backpressure = 0
        self.latency = Histogram()

    def to_dict(self) -> dict[str, Any]:
        responses = self.ok + self.errors
        rejected = self.rejected_rate_limit + self.rejected_backpressure
        return {
            "submitted": self.submitted,
            "ok": self.ok,
            "errors": self.errors,
            "degraded": self.degraded,
            "rejected_rate_limit": self.rejected_rate_limit,
            "rejected_backpressure": self.rejected_backpressure,
            "rejected": rejected,
            "error_rate": self.errors / max(1, responses),
            "degraded_rate": self.degraded / max(1, responses),
            "rejection_rate": rejected / max(1, self.submitted),
            "latency": self.latency.summary(),
        }


class SoakRunner:
    """Drive one schedule through one (already started) server."""

    def __init__(self, server: Any, schedule: Schedule,
                 window_seconds: float = 30.0,
                 clock: VirtualClock | None = None,
                 pace_gap_seconds: float = 0.5,
                 barriers: tuple[float, ...] = (),
                 result_timeout: float = 120.0,
                 sleep: Any = time.sleep) -> None:
        if window_seconds <= 0.0:
            raise ValueError("window_seconds must be > 0")
        self.server = server
        self.schedule = schedule
        self.window_seconds = window_seconds
        self.clock = clock
        self.pace_gap_seconds = pace_gap_seconds
        #: Virtual timestamps the fake clock may not cross while work
        #: is outstanding: the runner drains first, so everything
        #: admitted before the barrier *executes* before it (chaos
        #: windows need this — compression would otherwise race the
        #: clock past the fault window before any backlog runs).  Real
        #: time crosses no barriers; the flag is ignored there.
        self.barriers = tuple(sorted(barriers))
        self.result_timeout = result_timeout
        self._sleep = sleep
        #: Windows span the whole schedule, including session turns
        #: spilling past the arrival-process duration.
        last_at = max((item.at for item in schedule.items),
                      default=0.0)
        self.span = max(schedule.duration, last_at)
        self._aggs: dict[tuple, _Agg] = {}
        #: (pending, window, persona) triples not yet resolved.
        self._outstanding: list[tuple[Any, int, str]] = []
        self._cache_trajectory: list[float] = []
        self._breaker_timeline: list[dict[str, Any]] = []
        self._sampled_boundaries = 0

    # ------------------------------------------------------------------
    # aggregation
    # ------------------------------------------------------------------
    def _agg(self, *key: Any) -> _Agg:
        agg = self._aggs.get(key)
        if agg is None:
            agg = self._aggs[key] = _Agg()
        return agg

    def _scopes(self, window: int, persona: str) -> tuple[_Agg, ...]:
        return (self._agg("overall"), self._agg("persona", persona),
                self._agg("window", window),
                self._agg("winper", window, persona))

    def _window_of(self, at: float) -> int:
        return min(int(at / self.window_seconds),
                   self._n_windows() - 1)

    def _n_windows(self) -> int:
        return max(1, math.ceil(self.span / self.window_seconds))

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------
    def _sample_boundary(self, boundary: int) -> None:
        stats = self.server.stats()
        retrieval = (stats.get("caches") or {}).get("retrieval", {})
        self._cache_trajectory.append(retrieval.get("hit_rate", 0.0))
        breakers = getattr(self.server, "breakers", None)
        open_names = (sorted(breakers.open_names())
                      if breakers is not None else [])
        self._breaker_timeline.append({
            "window": boundary,
            "t": boundary * self.window_seconds,
            "open": open_names,
            "breaker_opened": stats["counters"].get("breaker_opened", 0),
            "queue_size": stats["queue"]["size"],
        })

    def _sample_up_to(self, at: float) -> None:
        while (self._sampled_boundaries + 1) * self.window_seconds <= at:
            self._sampled_boundaries += 1
            self._sample_boundary(self._sampled_boundaries)

    # ------------------------------------------------------------------
    # submission / resolution
    # ------------------------------------------------------------------
    def _submit(self, item: ScheduledRequest) -> None:
        window = self._window_of(item.at)
        scopes = self._scopes(window, item.persona)
        for agg in scopes:
            agg.submitted += 1
        try:
            pending = self.server.submit(item.request)
        except RateLimitError:
            for agg in scopes:
                agg.rejected_rate_limit += 1
            return
        except BackpressureError:
            for agg in scopes:
                agg.rejected_backpressure += 1
            return
        self._outstanding.append((pending, window, item.persona))

    def _record_response(self, response: Any, window: int,
                         persona: str) -> None:
        latency = response.service_seconds
        if self.clock is None:
            latency += response.queued_seconds
        for agg in self._scopes(window, persona):
            if response.ok:
                agg.ok += 1
            else:
                agg.errors += 1
            record = getattr(response.value, "record", None)
            if record is not None and record.is_degraded:
                agg.degraded += 1
            agg.latency.observe(latency)

    def _drain(self) -> None:
        """Resolve every outstanding request and record it."""
        for pending, window, persona in self._outstanding:
            response = pending.result(timeout=self.result_timeout)
            self._record_response(response, window, persona)
        self._outstanding = []

    # ------------------------------------------------------------------
    # the loop
    # ------------------------------------------------------------------
    def run(self) -> dict[str, Any]:
        items = self.schedule.items
        if self.clock is not None:
            last_at = 0.0
            barrier_index = 0
            for item in items:
                if item.at - last_at >= self.pace_gap_seconds:
                    self._drain()
                while (barrier_index < len(self.barriers)
                        and self.barriers[barrier_index] <= item.at):
                    if self.clock() < self.barriers[barrier_index]:
                        self._drain()
                    barrier_index += 1
                last_at = item.at
                self._sample_up_to(item.at)
                self.clock.advance_to(item.at)
                self._submit(item)
            self.clock.advance_to(self.span)
        else:
            origin = time.monotonic()
            for item in items:
                remaining = (origin + item.at) - time.monotonic()
                if remaining > 0.0:
                    self._sleep(remaining)
                self._sample_up_to(item.at)
                self._submit(item)
        self._drain()
        self._sample_up_to(self.span)
        # close the timeline with the post-drain end state
        self._sample_boundary(self._n_windows())
        return self._report()

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def _report(self) -> dict[str, Any]:
        stats = self.server.stats()
        counters = dict(stats["counters"])
        overall = self._agg("overall").to_dict()
        personas = {
            key[1]: agg.to_dict()
            for key, agg in sorted(self._aggs.items())
            if key[0] == "persona"
        }
        windows = []
        for index in range(self._n_windows()):
            window = self._agg("window", index).to_dict()
            window.update({
                "index": index,
                "start": index * self.window_seconds,
                "end": (index + 1) * self.window_seconds,
                "personas": {
                    key[2]: agg.to_dict()
                    for key, agg in sorted(self._aggs.items())
                    if key[0] == "winper" and key[1] == index
                },
            })
            windows.append(window)
        report = {
            "fake_clock": self.clock is not None,
            "duration": self.schedule.duration,
            "span": self.span,
            "window_seconds": self.window_seconds,
            "n_windows": self._n_windows(),
            "arrival": self.schedule.arrival_name,
            "seed": self.schedule.seed,
            "schedule_sha256": self.schedule.sha256(),
            "schedule_requests": len(self.schedule),
            "schedule_users": self.schedule.user_count(),
            "schedule_personas": self.schedule.persona_counts(),
            "overall": overall,
            "personas": personas,
            "windows": windows,
            "cache_hit_trajectory": self._cache_trajectory,
            "breaker_timeline": self._breaker_timeline,
            "counters": counters,
            "sessions": stats.get("sessions", {}),
            "rate_limiter": stats.get("rate_limiter", {}),
            "reconciliation": self._reconcile(overall, counters),
        }
        return report

    def _reconcile(self, overall: dict[str, Any],
                   counters: dict[str, Any]) -> dict[str, Any]:
        """Balance the runner's books against the server's counters.

        Exact equality requires a fresh server per soak (counters
        accumulate for the server's lifetime).
        """
        admitted_runner = overall["submitted"] - overall["rejected"]
        responses = overall["ok"] + overall["errors"]
        ops_server = sum(value for name, value in counters.items()
                         if name.startswith("op_"))
        pairs = {
            "admitted": (admitted_runner, counters.get("admitted", 0)),
            "responses": (responses, ops_server),
            "rejected_rate_limit": (
                overall["rejected_rate_limit"],
                counters.get("rejected_rate_limit", 0)),
            "rejected_backpressure": (
                overall["rejected_backpressure"],
                counters.get("rejected_backpressure", 0)),
            "failed": (overall["errors"], counters.get("failed", 0)),
        }
        return {
            **{name: {"runner": runner, "server": server}
               for name, (runner, server) in pairs.items()},
            "exact": all(runner == server
                         for runner, server in pairs.values()),
        }
