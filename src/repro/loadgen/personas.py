"""Parameterized user archetypes: *what* each simulated user does.

A :class:`PersonaSpec` describes one archetype — how many turns a user
makes, how long they think between turns, whether they hold a session,
which graphs and prompts they draw from — and :func:`user_requests`
turns one spec into a deterministic timed stream of
:class:`~repro.serve.engine.ServeRequest` objects.  All randomness
comes from the per-user :class:`random.Random` the scheduler seeds
with ``(seed, persona, user-index)``, so the same population under the
same seed always emits byte-identical traffic regardless of how many
other personas exist.

The default mix (:data:`DEFAULT_PERSONAS`) models the heterogeneous
population the ROADMAP names: one-shot askers, long multi-turn
sessions, upload-heavy graph ingestors, and bursty power users.

This module must stay free of the :mod:`time` module entirely (virtual
time only); ``tests/test_clock_discipline.py`` audits that.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

from ..errors import ConfigError
from ..graphs.graph import Graph
from ..serve.engine import ServeRequest
from ..testing.workloads import PROMPTS, bench_graphs, demo_graph_pool

__all__ = [
    "DEFAULT_PERSONAS",
    "PersonaSpec",
    "TimedRequest",
    "bench_workload",
    "pick_persona",
    "user_requests",
]


@dataclass(frozen=True)
class PersonaSpec:
    """One user archetype, fully determined by its parameters."""

    #: Stable identifier (appears in schedules, reports, SLO gates).
    name: str
    #: Relative share of arriving users drawn as this persona.
    weight: float
    #: Operation every turn issues (``ask`` or ``propose``).
    op: str = "ask"
    #: Inclusive ``(min, max)`` number of turns per user.
    turns: tuple[int, int] = (1, 1)
    #: Mean of the exponential think time between turns (0 = back to
    #: back).
    think_mean_seconds: float = 0.0
    #: Turns emitted per burst before a full think-time pause; within a
    #: burst consecutive turns are ``burst_gap_seconds`` apart.
    burst_size: int = 1
    burst_gap_seconds: float = 0.0
    #: Bind all turns of one user to a per-user ``session_id``; every
    #: turn re-attaches the user's graph, so the dialog survives a
    #: first turn shed under overload.
    session: bool = False
    #: Demo-graph pool keys this persona uploads
    #: (:func:`repro.testing.workloads.demo_graph_pool`).
    graph_keys: tuple[str, ...] = ("social-s", "kg-s")
    #: Prompt pool sampled per turn.
    prompts: tuple[str, ...] = PROMPTS
    #: Fraction of turns that reference a named graph in the server's
    #: durable catalog instead of uploading inline (used only when the
    #: scheduler is given catalog names).
    catalog_share: float = 0.0

    def __post_init__(self) -> None:
        if self.op not in ("ask", "propose"):
            raise ConfigError(
                f"persona op must be ask or propose, got {self.op!r}")
        if self.weight <= 0.0:
            raise ConfigError("weight must be > 0")
        lo, hi = self.turns
        if not 1 <= lo <= hi:
            raise ConfigError("turns must satisfy 1 <= min <= max")
        if self.think_mean_seconds < 0.0:
            raise ConfigError("think_mean_seconds must be >= 0")
        if self.burst_size < 1:
            raise ConfigError("burst_size must be >= 1")
        if self.burst_gap_seconds < 0.0:
            raise ConfigError("burst_gap_seconds must be >= 0")
        if not self.graph_keys:
            raise ConfigError("graph_keys must not be empty")
        if not self.prompts:
            raise ConfigError("prompts must not be empty")
        if not 0.0 <= self.catalog_share <= 1.0:
            raise ConfigError("catalog_share must be in [0, 1]")
        if self.session and self.op != "ask":
            raise ConfigError("session personas must use op='ask'")


#: The default heterogeneous population (weights sum to 1.0, but only
#: the ratios matter).
DEFAULT_PERSONAS: tuple[PersonaSpec, ...] = (
    PersonaSpec(name="one_shot", weight=0.50),
    PersonaSpec(name="multi_turn", weight=0.25, turns=(3, 8),
                think_mean_seconds=20.0, session=True,
                graph_keys=("social-m", "kg-m")),
    PersonaSpec(name="ingestor", weight=0.10, op="propose", turns=(2, 4),
                think_mean_seconds=8.0,
                graph_keys=("social-l", "kg-l"), catalog_share=0.5),
    PersonaSpec(name="power_burst", weight=0.15, turns=(6, 12),
                think_mean_seconds=45.0, burst_size=4,
                burst_gap_seconds=0.05,
                graph_keys=("social-s", "social-m", "kg-s")),
)


@dataclass(frozen=True)
class TimedRequest:
    """One persona turn: a request and when (virtually) it is issued."""

    at: float
    seq: int
    request: ServeRequest
    #: Pool key or ``name:<catalog-name>`` — the stable label
    #: serialized into schedule bytes.
    graph_key: str


def pick_persona(specs: tuple[PersonaSpec, ...],
                 rng: random.Random) -> PersonaSpec:
    """Weighted draw of one persona (deterministic under the rng)."""
    if not specs:
        raise ConfigError("population needs at least one persona")
    total = sum(spec.weight for spec in specs)
    point = rng.random() * total
    cumulative = 0.0
    for spec in specs:
        cumulative += spec.weight
        if point < cumulative:
            return spec
    return specs[-1]


def user_requests(spec: PersonaSpec, user_id: str, start: float,
                  rng: random.Random, pool: dict[str, Graph],
                  catalog_names: tuple[str, ...] = ()
                  ) -> Iterator[TimedRequest]:
    """The full timed request stream of one simulated user.

    ``rng`` must be dedicated to this user (the scheduler derives it
    from ``(seed, persona, user-index)``); every draw below consumes it
    in a fixed order, which is what makes schedules byte-identical
    under a fixed seed.
    """
    n_turns = rng.randint(*spec.turns)
    at = start
    session_key: str | None = None
    for seq in range(n_turns):
        text = rng.choice(spec.prompts)
        graph: Graph | None = None
        graph_name: str | None = None
        if session_key is not None:
            # later session turns re-attach the same graph (clients
            # keep the upload bound to the dialog); if the first turn
            # was shed under overload, follow-ups still carry context
            # instead of chaining over an empty session
            graph_key = session_key
            graph = pool[graph_key]
        elif (catalog_names and spec.catalog_share > 0.0
                and rng.random() < spec.catalog_share):
            graph_name = catalog_names[
                rng.randrange(len(catalog_names))]
            graph_key = f"name:{graph_name}"
        else:
            graph_key = spec.graph_keys[
                rng.randrange(len(spec.graph_keys))]
            graph = pool[graph_key]
            if spec.session:
                session_key = graph_key
        yield TimedRequest(
            at=at, seq=seq,
            request=ServeRequest(
                op=spec.op, text=text, graph=graph,
                graph_name=graph_name,
                session_id=user_id if spec.session else None,
                client_id=user_id),
            graph_key=graph_key)
        if (seq + 1) % spec.burst_size != 0:
            at += spec.burst_gap_seconds
        elif spec.think_mean_seconds > 0.0:
            at += rng.expovariate(1.0 / spec.think_mean_seconds)


def bench_workload(n_requests: int,
                   n_graphs: int = 4) -> list[ServeRequest]:
    """The serving benchmark's fixed request stream.

    The degenerate persona: zero think time, one ``propose`` per user,
    prompts and graphs cycled round-robin from the shared pools in
    :mod:`repro.testing.workloads`.  Byte-for-byte the stream
    ``repro.serve.bench.build_workload`` has produced since PR 1, so
    bench and soak traffic now share one seeded source without moving
    any benchmark baseline.
    """
    graphs = bench_graphs(n_graphs)
    return [
        ServeRequest(op="propose",
                     text=PROMPTS[index % len(PROMPTS)],
                     graph=graphs[index % len(graphs)],
                     client_id=f"client-{index % 4}")
        for index in range(n_requests)
    ]


def default_pool() -> dict[str, Graph]:
    """The demo-graph pool personas draw from (built fresh)."""
    return demo_graph_pool()
