"""Declarative SLO gates over a soak report.

An :class:`SLOSpec` is a named tuple of :class:`SLOGate` rows, each
binding one report metric (optionally scoped to a persona) to a
``min``/``max`` bound.  Two evaluation modes:

* **final value** (default) — the gate checks the metric aggregated
  over the whole run;
* **error budget** (``window_budget`` set) — the gate checks the
  metric per window and passes while the *fraction of violating
  windows* stays within the budget.  This is how a spike scenario
  tolerates its spike windows without giving up the gate everywhere
  else.

Metrics are read from the :class:`~repro.loadgen.runner.SoakReport`
dict produced by the runner (which in turn sources its quantiles from
:class:`repro.obs.metrics.Histogram`).

This module must stay free of the :mod:`time` module entirely; the
``tests/test_clock_discipline.py`` audit pins that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..errors import ConfigError

#: Metric names a gate may reference.  Latency quantiles are seconds;
#: rates are fractions in [0, 1]; counts are plain numbers.
METRICS = (
    "p50_latency", "p95_latency", "p99_latency",
    "error_rate", "degraded_rate", "rejection_rate",
    "cache_hit_rate", "breaker_opened", "breakers_recovered",
)

#: Metrics that exist per window (eligible for window budgets).
_WINDOWED = ("p50_latency", "p95_latency", "p99_latency",
             "error_rate", "degraded_rate", "rejection_rate")


@dataclass(frozen=True)
class SLOGate:
    """One service-level objective."""

    metric: str
    #: Scope to one persona's traffic; ``None`` gates overall traffic.
    persona: str | None = None
    max_value: float | None = None
    min_value: float | None = None
    #: Allowed fraction of windows violating the bound (``None`` gates
    #: the final aggregate instead).
    window_budget: float | None = None

    def __post_init__(self) -> None:
        if self.metric not in METRICS:
            raise ConfigError(
                f"unknown SLO metric {self.metric!r}; "
                f"expected one of {METRICS}")
        if self.max_value is None and self.min_value is None:
            raise ConfigError("gate needs max_value and/or min_value")
        if self.window_budget is not None:
            if self.metric not in _WINDOWED:
                raise ConfigError(
                    f"metric {self.metric!r} has no window trajectory")
            if not 0.0 <= self.window_budget <= 1.0:
                raise ConfigError("window_budget must be in [0, 1]")

    def describe(self) -> str:
        scope = self.persona or "overall"
        bounds = []
        if self.min_value is not None:
            bounds.append(f">= {self.min_value}")
        if self.max_value is not None:
            bounds.append(f"<= {self.max_value}")
        budget = (f" (budget {self.window_budget:.0%} of windows)"
                  if self.window_budget is not None else "")
        return f"{scope}.{self.metric} {' and '.join(bounds)}{budget}"


@dataclass(frozen=True)
class SLOSpec:
    """A named set of gates (the scenario's contract)."""

    name: str
    gates: tuple[SLOGate, ...]

    def __post_init__(self) -> None:
        if not self.gates:
            raise ConfigError("SLOSpec needs at least one gate")

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "gates": [{
                "metric": gate.metric, "persona": gate.persona,
                "max_value": gate.max_value,
                "min_value": gate.min_value,
                "window_budget": gate.window_budget,
            } for gate in self.gates],
        }


def _scope(report: dict[str, Any], persona: str | None) -> dict[str, Any]:
    if persona is None:
        return report["overall"]
    scoped = report["personas"].get(persona)
    if scoped is None:
        raise ConfigError(
            f"report has no persona {persona!r}; "
            f"saw {sorted(report['personas'])}")
    return scoped


def _metric_value(scoped: dict[str, Any], report: dict[str, Any],
                  metric: str) -> float:
    if metric.endswith("_latency"):
        return scoped["latency"][metric.split("_")[0]]
    if metric in ("error_rate", "degraded_rate", "rejection_rate"):
        return scoped[metric]
    # run-level metrics (persona scoping is meaningless for these)
    if metric == "cache_hit_rate":
        return report["cache_hit_trajectory"][-1] \
            if report["cache_hit_trajectory"] else 0.0
    if metric == "breaker_opened":
        return float(report["counters"].get("breaker_opened", 0))
    if metric == "breakers_recovered":
        timeline = report["breaker_timeline"]
        open_at_end = timeline[-1]["open"] if timeline else []
        return 0.0 if open_at_end else 1.0
    raise ConfigError(f"unknown SLO metric {metric!r}")


def _window_values(report: dict[str, Any], gate: SLOGate) -> list[float]:
    values = []
    for window in report["windows"]:
        scoped = (window["personas"].get(gate.persona, None)
                  if gate.persona is not None else window)
        if scoped is None or not scoped.get("submitted"):
            continue  # empty window: nothing to violate
        if gate.metric.endswith("_latency"):
            values.append(scoped["latency"][gate.metric.split("_")[0]])
        else:
            values.append(scoped[gate.metric])
    return values


def _violates(value: float, gate: SLOGate) -> bool:
    if gate.max_value is not None and value > gate.max_value:
        return True
    if gate.min_value is not None and value < gate.min_value:
        return True
    return False


def evaluate_slo(report: dict[str, Any],
                 spec: SLOSpec) -> dict[str, Any]:
    """Check every gate of ``spec`` against ``report``.

    Returns ``{"name", "passed", "gates": [...]}`` where each gate row
    carries the observed value (or window violation fraction), the
    bounds, and its verdict — the block ``bench-slo`` serializes into
    ``BENCH_PR8.json``.
    """
    rows: list[dict[str, Any]] = []
    for gate in spec.gates:
        if gate.window_budget is not None:
            values = _window_values(report, gate)
            violations = sum(1 for value in values
                             if _violates(value, gate))
            fraction = violations / len(values) if values else 0.0
            passed = fraction <= gate.window_budget
            rows.append({
                "gate": gate.describe(), "metric": gate.metric,
                "persona": gate.persona, "mode": "window-budget",
                "windows": len(values), "violations": violations,
                "violation_fraction": round(fraction, 6),
                "budget": gate.window_budget, "passed": passed,
            })
        else:
            scoped = _scope(report, gate.persona)
            value = _metric_value(scoped, report, gate.metric)
            passed = not _violates(value, gate)
            rows.append({
                "gate": gate.describe(), "metric": gate.metric,
                "persona": gate.persona, "mode": "final",
                "value": round(float(value), 6),
                "min_value": gate.min_value,
                "max_value": gate.max_value, "passed": passed,
            })
    return {"name": spec.name,
            "passed": all(row["passed"] for row in rows),
            "gates": rows}
