"""The service runtime: a worker pool around :class:`ChatGraph`.

``ChatGraphServer`` turns the synchronous, single-caller facade into a
multi-session service: callers submit :class:`ServeRequest` objects
(propose / execute / ask) which pass admission control (per-client rate
limit, bounded queue with backpressure) and are dispatched to N worker
threads.  Each request gets a deterministic content-keyed seed, so a
fixed workload produces bit-identical results whether it is served by
one worker or eight, in any arrival order.

Example::

    from repro import ChatGraph
    from repro.serve import ChatGraphServer, ServeRequest

    server = ChatGraphServer(ChatGraph.pretrained())
    with server:
        response = server.ask("write a brief report for G", graph=g)
        print(response.value.answer)
    print(server.stats()["counters"])
"""

from __future__ import annotations

import hashlib
import queue as stdlib_queue
import threading
import time
from dataclasses import dataclass, field
from typing import Any

from ..apis.chain import APIChain
from ..apis.executor import ExecutionPolicy, StepPolicy
from ..config import ServeConfig
from ..core.chatgraph import ChatGraph, ChatResponse
from ..core.pipeline import PipelineResult
from ..core.reports import render_answer
from ..errors import ChatGraphError, ServeError
from ..graphs.graph import Graph
from ..llm.prompts import Prompt
from ..obs.metrics import MetricsRegistry
from ..obs.trace import Tracer
from .admission import AdmissionQueue, RateLimiter
from .breaker import BreakerRegistry
from .cache import PipelineCaches
from .microbatch import MicroBatcher
from .sessions import SessionStore
from .stats import ServerStats

#: Operations a :class:`ServeRequest` may name.
OPS = ("propose", "execute", "ask")


@dataclass
class ServeRequest:
    """One unit of work submitted to the server.

    ``propose`` and ``ask`` need ``text`` (plus an optional graph);
    ``execute`` needs the ``pipeline_result`` of an earlier propose and
    may carry a user-edited ``chain`` (paper scenario 4's confirm/edit
    loop, server-side).
    """

    op: str
    text: str = ""
    graph: Graph | None = None
    #: Name of a graph in the server's durable catalog (see
    #: ``ServeConfig.store_root``); resolved to an immutable
    #: epoch-pinned view at service time.  Mutually exclusive with an
    #: inline ``graph``.
    graph_name: str | None = None
    #: Binds the request to a stateful dialog; None = stateless.
    session_id: str | None = None
    #: Rate-limiting principal.
    client_id: str = "anonymous"
    #: For ``op="execute"``: the proposal to run.
    pipeline_result: PipelineResult | None = None
    #: For ``op="execute"``: optional edited chain replacing the
    #: proposed one.
    chain: APIChain | None = None
    attachments: dict[str, Any] = field(default_factory=dict)

    def validate(self) -> None:
        if self.op not in OPS:
            raise ServeError(f"unknown op {self.op!r}; expected one of "
                             f"{OPS}")
        if self.op in ("propose", "ask") and not self.text:
            raise ServeError(f"op {self.op!r} requires text")
        if self.op == "execute" and self.pipeline_result is None:
            raise ServeError("op 'execute' requires pipeline_result")
        if self.graph is not None and self.graph_name is not None:
            raise ServeError(
                "pass either an inline graph or a graph_name, not both")

    def content_seed(self, base_seed: int) -> int:
        """Deterministic seed from request *content* (not arrival order).

        Hashing the identifying fields keeps results reproducible and
        independent of worker interleaving: the same request under the
        same base seed always computes with the same seed.
        """
        material = "\x1f".join((
            str(base_seed), self.op, self.text,
            self.session_id or "", self.client_id,
        ))
        # appended only when present so store-less requests keep the
        # exact seeds (and span identities) they had before the catalog
        if self.graph_name is not None:
            material += "\x1f" + self.graph_name
        digest = hashlib.sha256(material.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "little")


@dataclass
class ServeResponse:
    """Outcome of one served request."""

    request_id: int
    op: str
    ok: bool
    #: ``propose`` -> :class:`PipelineResult`; ``ask`` ->
    #: :class:`ChatResponse`; ``execute`` -> :class:`ChatResponse`.
    value: Any = None
    error: str = ""
    error_type: str = ""
    worker: str = ""
    seed: int = 0
    queued_seconds: float = 0.0
    service_seconds: float = 0.0


class PendingRequest:
    """Caller-side handle: a queued request and its future response."""

    def __init__(self, request: ServeRequest, request_id: int,
                 enqueued_at: float) -> None:
        self.request = request
        self.request_id = request_id
        self.enqueued_at = enqueued_at
        #: Span ID active on the submitting thread (trace-context
        #: propagation across the worker-pool boundary).
        self.parent_span_id: str | None = None
        #: Seconds this request waited inside the micro-batcher for
        #: company (stamped by :meth:`MicroBatcher.collect`; 0 for the
        #: scalar path).  Distinct from the admission-queue wait.
        self.batch_wait_seconds: float = 0.0
        self._done = threading.Event()
        self._response: ServeResponse | None = None

    def done(self) -> bool:
        return self._done.is_set()

    def result(self, timeout: float | None = None) -> ServeResponse:
        """Block until the worker resolves this request."""
        if not self._done.wait(timeout):
            raise ServeError(
                f"request {self.request_id} not done after {timeout}s")
        assert self._response is not None
        return self._response

    def _resolve(self, response: ServeResponse) -> None:
        self._response = response
        self._done.set()


class ChatGraphServer:
    """Concurrent front-end over one shared :class:`ChatGraph`.

    The underlying pipeline is read-only at inference time, so one
    model serves every worker; per-request state (contexts, monitors,
    executors) is never shared.  Lifecycle: :meth:`start` -> submit /
    request -> :meth:`stop` (or use the instance as a context manager).
    """

    def __init__(self, chatgraph: ChatGraph,
                 config: ServeConfig | None = None,
                 catalog: Any = None,
                 clock: Any = None) -> None:
        self.chatgraph = chatgraph
        self.config = config or ServeConfig()
        #: Monotonic clock governing session TTLs, rate-limit refills,
        #: admission retry hints, and breaker cooldowns.  ``None`` means
        #: real time; soak tests inject a
        #: :class:`repro.loadgen.VirtualClock` so hours of simulated
        #: traffic elapse deterministically in seconds.  Latency
        #: *measurement* stays on ``time.perf_counter`` either way —
        #: observed service times are real even under a virtual clock.
        self.clock = time.monotonic if clock is None else clock
        self.caches: PipelineCaches | None = None
        if self.config.enable_caches:
            self.caches = PipelineCaches.with_sizes(
                embedding=self.config.embedding_cache_size,
                retrieval=self.config.retrieval_cache_size,
                sequence=self.config.sequence_cache_size)
        chatgraph.enable_caches(self.caches)
        #: Per-stage histogram names, derived from the pipeline's stage
        #: graph (the single stage definition) rather than a mirror.
        self.pipeline_stages = tuple(
            chatgraph.pipeline.graph.observed_stage_names)
        self.sessions = SessionStore(
            chatgraph, ttl_seconds=self.config.session_ttl_seconds,
            max_sessions=self.config.max_sessions, clock=self.clock)
        self.queue = AdmissionQueue(self.config.queue_depth,
                                    clock=self.clock)
        self.limiter: RateLimiter | None = None
        if self.config.rate_limit_capacity > 0:
            self.limiter = RateLimiter(
                self.config.rate_limit_capacity,
                self.config.rate_limit_refill_per_second,
                clock=self.clock,
                idle_seconds=self.config.rate_limit_idle_seconds)
        self._stats = ServerStats()
        #: Optional request coalescer (see :mod:`repro.serve.microbatch`);
        #: enabled by ``ServeConfig.microbatch_size > 0``.
        self.batcher: MicroBatcher | None = None
        if self.config.microbatch_size > 0:
            # the batcher stays on real time even under an injected
            # clock: its deadline is awaited by polling workers, and a
            # virtual clock only advances between submissions, so a
            # partial batch's coalescing window could never expire
            self.batcher = MicroBatcher(
                self.config.microbatch_size,
                self.config.microbatch_deadline_seconds)
        # observability layer: a metrics registry fed by executor
        # events (always on; counters are nearly free) and an optional
        # tracer producing per-request span trees
        self.metrics = MetricsRegistry()
        self.tracer: Tracer | None = None
        if self.config.obs.enable_tracing:
            self.tracer = Tracer(
                seed=self.config.seed,
                max_spans=self.config.obs.max_spans,
                profile_cpu=self.config.obs.profile_cpu,
                profile_alloc=self.config.obs.profile_alloc)
        self._saved_tracer: Any = None
        # durable graph catalog: passed in, or built from the config's
        # store_root; sessions pin (name, epoch) refs into it and its
        # compactions evict sessions left on pruned epochs
        self.catalog: Any = catalog
        if self.catalog is None and self.config.store_root:
            from ..store.catalog import GraphCatalog
            self.catalog = GraphCatalog(
                self.config.store_root,
                snapshot_every=self.config.store_snapshot_every,
                metrics=self.metrics, tracer=self.tracer)
        if self.catalog is not None:
            self.chatgraph.use_catalog(self.catalog)
        # robustness layer: per-API circuit breakers shared by every
        # worker, plus default step policies (timeout + retries) the
        # executor applies to each chain step
        self.breakers: BreakerRegistry | None = None
        if self.config.enable_breakers:
            self.breakers = BreakerRegistry(
                failure_threshold=self.config.breaker_failure_threshold,
                failure_rate_threshold=self.config.breaker_failure_rate,
                window_size=self.config.breaker_window,
                cooldown_seconds=self.config.breaker_cooldown_seconds,
                clock=self.clock)
        self.policy = ExecutionPolicy(
            default=StepPolicy(
                timeout_seconds=(self.config.step_timeout_seconds
                                 or None),
                max_retries=self.config.step_max_retries,
                backoff_base_seconds=self.config.retry_backoff_seconds,
                critical=False),
            seed=self.config.seed)
        self._saved_robustness: tuple[Any, Any] | None = None
        self._workers: list[threading.Thread] = []
        # optional micro-batch finisher lane: workers hand the per-item
        # tail of a served batch here and return to collecting/decoding
        # the next one (ServeConfig.microbatch_overlap_execute)
        self._finish_queue: Any = None
        self._finish_thread: threading.Thread | None = None
        if (self.batcher is not None
                and self.config.microbatch_overlap_execute):
            self._finish_queue = stdlib_queue.SimpleQueue()
        self._running = False
        self._id_lock = threading.Lock()
        self._next_id = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ChatGraphServer":
        if self._running:
            raise ServeError("server already started")
        # recovery events (step_retried / step_timed_out /
        # breaker_opened) flow through the executor's listener pipeline
        # into the server counters while this server runs
        if self._stats.on_execution_event not in \
                self.chatgraph.executor.listeners():
            self.chatgraph.executor.add_listener(
                self._stats.on_execution_event)
        if self.metrics.on_execution_event not in \
                self.chatgraph.executor.listeners():
            self.chatgraph.executor.add_listener(
                self.metrics.on_execution_event)
        # install this server's tracer for the duration of the run
        if self.tracer is not None:
            self._saved_tracer = self.chatgraph.tracer
            self.chatgraph.set_tracer(self.tracer)
        # install this server's robustness settings for the duration of
        # the run; stop() restores whatever the caller had configured
        self._saved_robustness = (self.chatgraph.robustness_policy,
                                  self.chatgraph.breakers)
        self.chatgraph.set_robustness(policy=self.policy,
                                      breakers=self.breakers)
        # compactions of the durable store evict sessions whose pinned
        # epoch was pruned, for as long as this server runs
        if self.catalog is not None:
            self.catalog.add_compact_listener(
                self.sessions.evict_compacted)
        if self.config.warm_caches:
            self._stats.incr("cache_warmed_entries",
                             self.warm_caches())
        self.queue.reopen()
        self._workers = []
        for index in range(self.config.workers):
            thread = threading.Thread(
                target=self._worker_loop, args=(f"worker-{index}",),
                name=f"chatgraph-serve-{index}", daemon=True)
            thread.start()
            self._workers.append(thread)
        if self._finish_queue is not None:
            self._finish_thread = threading.Thread(
                target=self._finish_lane_loop,
                name="chatgraph-serve-finish", daemon=True)
            self._finish_thread.start()
        self._running = True
        return self

    def warm_caches(self) -> int:
        """Pre-populate pipeline caches from the catalog's named graphs.

        For every graph in the catalog, sequentializes it (sequence
        cache, keyed by graph fingerprint) and embeds its suggested
        questions through the retriever's query path (embedding cache),
        so the first real request against a named graph starts warm.
        Returns the number of cache entries added; ``start()`` runs
        this when ``ServeConfig.warm_caches`` is set and surfaces the
        count as the ``cache_warmed_entries`` counter.  Warming only
        ever *inserts* deterministic content-keyed values, so served
        results are byte-identical with or without it.
        """
        if self.caches is None or self.catalog is None:
            return 0
        from ..core.suggestions import suggested_questions

        pipeline = self.chatgraph.pipeline
        before = (len(self.caches.sequences)
                  + len(self.caches.embeddings))
        for name in self.catalog.names():
            try:
                view = self.catalog.view(name)
            except ChatGraphError:
                continue
            pipeline.sequentializer.sequentialize(view.graph)
            texts = suggested_questions(view.graph)
            if texts:
                pipeline.retriever._embed_queries(list(texts))
        return (len(self.caches.sequences)
                + len(self.caches.embeddings) - before)

    def stop(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Graceful shutdown: stop admitting, then drain or cancel.

        With ``drain`` (default) queued requests are still served;
        otherwise they resolve immediately with a shutdown error.
        """
        if not self._running:
            return
        self.queue.close()
        if not drain:
            for item in self.queue.drain():
                item._resolve(ServeResponse(
                    request_id=item.request_id, op=item.request.op,
                    ok=False, error="server stopped before the request "
                    "was served", error_type="ServeError"))
        deadline = time.monotonic() + timeout
        for thread in self._workers:
            thread.join(max(0.0, deadline - time.monotonic()))
        self._workers = []
        if self._finish_thread is not None:
            # workers are gone, so no new jobs can arrive: the sentinel
            # lands behind every queued tail and the lane drains fully
            self._finish_queue.put(None)
            self._finish_thread.join(
                max(0.0, deadline - time.monotonic()))
            self._finish_thread = None
        self._running = False
        for listener in (self._stats.on_execution_event,
                         self.metrics.on_execution_event):
            try:
                self.chatgraph.executor.remove_listener(listener)
            except ValueError:
                pass
        if self.tracer is not None:
            self.chatgraph.set_tracer(self._saved_tracer)
            self._saved_tracer = None
        if self._saved_robustness is not None:
            self.chatgraph.set_robustness(*self._saved_robustness)
            self._saved_robustness = None
        if self.catalog is not None:
            self.catalog.remove_compact_listener(
                self.sessions.evict_compacted)

    def __enter__(self) -> "ChatGraphServer":
        if not self._running:
            self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    @property
    def running(self) -> bool:
        return self._running

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(self, request: ServeRequest,
               parent_span_id: str | None = None) -> PendingRequest:
        """Admit ``request`` and return a handle to its future response.

        Raises :class:`~repro.errors.RateLimitError` or
        :class:`~repro.errors.BackpressureError` (both carry
        ``retry_after``) when admission control rejects it.

        ``parent_span_id`` overrides the submitting thread's active
        span as the parent of the request span — the cross-process
        trace handoff: a shard worker passes the coordinator-side span
        id carried in the request wire, so merged traces keep one tree.
        """
        if not self._running:
            raise ServeError("server is not running; call start()")
        request.validate()
        if self.limiter is not None:
            try:
                self.limiter.admit(request.client_id)
            except ChatGraphError:
                self._stats.incr("rejected_rate_limit")
                raise
        with self._id_lock:
            self._next_id += 1
            request_id = self._next_id
        pending = PendingRequest(request, request_id, time.perf_counter())
        if parent_span_id is not None:
            pending.parent_span_id = parent_span_id
        elif self.tracer is not None:
            pending.parent_span_id = self.tracer.current_id()
        try:
            self.queue.put(pending)
        except ChatGraphError:
            self._stats.incr("rejected_backpressure")
            raise
        self._stats.incr("admitted")
        return pending

    def request(self, request: ServeRequest,
                timeout: float | None = None) -> ServeResponse:
        """Submit and wait: the synchronous convenience path."""
        return self.submit(request).result(timeout)

    def propose(self, text: str, graph: Graph | None = None,
                **kwargs: Any) -> ServeResponse:
        return self.request(ServeRequest(op="propose", text=text,
                                         graph=graph, **kwargs))

    def ask(self, text: str, graph: Graph | None = None,
            **kwargs: Any) -> ServeResponse:
        return self.request(ServeRequest(op="ask", text=text, graph=graph,
                                         **kwargs))

    def execute(self, pipeline_result: PipelineResult,
                chain: APIChain | None = None,
                **kwargs: Any) -> ServeResponse:
        return self.request(ServeRequest(op="execute",
                                         pipeline_result=pipeline_result,
                                         chain=chain, **kwargs))

    # ------------------------------------------------------------------
    # workers
    # ------------------------------------------------------------------
    def _worker_loop(self, worker: str) -> None:
        while True:
            item = self.queue.get(timeout=0.05)
            if item is None:
                if self.queue.closed and len(self.queue) == 0:
                    return
                continue
            if self.batcher is None:
                self._serve_item(item, worker)
                continue
            batch, passthrough = self.batcher.collect(self.queue, item)
            if len(batch) == 1:
                self._serve_item(batch[0], worker)
            elif batch:
                self._serve_batch(batch, worker)
            for single in passthrough:
                self._serve_item(single, worker)

    def _serve_item(self, item: PendingRequest, worker: str) -> None:
        """Serve one request on the scalar path and resolve its handle."""
        queued = time.perf_counter() - item.enqueued_at
        self._stats.observe("queued", queued)
        start = time.perf_counter()
        try:
            response = self._handle(item, worker)
            response.ok = not response.error
        except Exception as exc:  # noqa: BLE001 - keep workers alive
            self._stats.incr("failed")
            response = ServeResponse(
                request_id=item.request_id, op=item.request.op,
                ok=False, error=str(exc),
                error_type=type(exc).__name__, worker=worker)
        service = time.perf_counter() - start
        response.queued_seconds = queued
        response.service_seconds = service
        self.queue.record_service_time(service)
        self._stats.observe("service", service)
        self._stats.observe("total", queued + service)
        self._stats.incr(f"op_{item.request.op}")
        item._resolve(response)

    def _serve_batch(self, batch: list[PendingRequest],
                     worker: str) -> None:
        """Serve a coalesced batch through the shared pipeline stages."""
        now = time.perf_counter()
        queued_per: list[float] = []
        for item in batch:
            queued = now - item.enqueued_at
            queued_per.append(queued)
            self._stats.observe("queued", queued)
            # the coalescing wait the batcher added on top of admission
            # queueing (stamped per item at flush time) — not the full
            # queue delay, which the ``queued`` histogram already holds
            self.metrics.observe("microbatch_queue_delay",
                                 item.batch_wait_seconds)
        self.metrics.observe("microbatch_size", float(len(batch)))
        start = time.perf_counter()
        try:
            seeds, outcomes = self._propose_batch(batch)
        except Exception as exc:  # noqa: BLE001 - keep workers alive
            seeds = [item.request.content_seed(self.config.seed)
                     for item in batch]
            outcomes = [exc] * len(batch)
        if self._finish_queue is not None:
            # overlap: hand the per-item tail (chain execution for ask,
            # stats, resolution) to the finisher lane so this worker
            # immediately returns to collecting and decoding the next
            # micro-batch
            self._finish_queue.put(
                (batch, worker, seeds, outcomes, queued_per, start))
        else:
            self._finish_batch(batch, worker, seeds, outcomes,
                               queued_per, start)

    def _handle(self, item: PendingRequest, worker: str) -> ServeResponse:
        request = item.request
        seed = request.content_seed(self.config.seed)
        response = ServeResponse(request_id=item.request_id, op=request.op,
                                 ok=True, worker=worker, seed=seed)
        if self.tracer is None:
            self._dispatch(request, seed, response)
            return response
        # the request's root span is keyed by the content seed (not the
        # arrival-order request id), so seeded workloads produce the
        # same span identity no matter which worker serves them; the
        # submitting thread's span (if any) becomes the parent
        with self.tracer.span(f"request:{request.op}", kind="request",
                              key=f"{seed:016x}",
                              parent=item.parent_span_id,
                              op=request.op,
                              client=request.client_id) as span:
            self._dispatch(request, seed, response)
            span.set(ok=not response.error)
        return response

    def _dispatch(self, request: ServeRequest, seed: int,
                  response: ServeResponse) -> None:
        if request.op == "propose":
            response.value = self._serve_propose(request, seed)
        elif request.op == "execute":
            response.value = self._serve_execute(request, seed)
        else:
            response.value = self._serve_ask(request, seed)

    def _backend_pause(self) -> None:
        """Emulate the remote-LLM round trip (see ServeConfig)."""
        if self.config.backend_latency_seconds > 0:
            time.sleep(self.config.backend_latency_seconds)

    def _record_pipeline(self, result: PipelineResult) -> None:
        # per-stage latency histogram names come from the stage graph
        # (via the result's timings) — never from a hand-written list
        for stage, seconds in result.timings.items():
            self._stats.observe(stage, seconds)
        if result.used_fallback:
            self._stats.incr("fallback_chains")

    def _resolve_view(self, request: ServeRequest) -> Any:
        """The catalog view for ``request.graph_name`` (or None)."""
        if request.graph_name is None:
            return None
        if self.catalog is None:
            raise ServeError(
                f"request names graph {request.graph_name!r} but the "
                "server has no graph catalog (set ServeConfig."
                "store_root or pass catalog=)")
        return self.catalog.view(request.graph_name)

    def _resolve_graph(self, request: ServeRequest) -> Graph | None:
        view = self._resolve_view(request)
        return request.graph if view is None else view.graph

    def _serve_propose(self, request: ServeRequest,
                       seed: int) -> PipelineResult:
        self._backend_pause()
        attachments = dict(request.attachments)
        attachments.setdefault("request_seed", seed)
        result = self.chatgraph.propose(request.text,
                                        self._resolve_graph(request),
                                        **attachments)
        self._record_pipeline(result)
        return result

    def _serve_execute(self, request: ServeRequest,
                       seed: int) -> ChatResponse:
        assert request.pipeline_result is not None
        start = time.perf_counter()
        record, monitor = self.chatgraph.execute(
            request.pipeline_result, chain=request.chain)
        self._stats.observe("execute", time.perf_counter() - start)
        if record.is_degraded:
            self._stats.incr("degraded_responses")
        return ChatResponse(
            prompt=request.pipeline_result.prompt,
            pipeline=request.pipeline_result,
            record=record,
            answer=render_answer(record),
            monitor=monitor,
            seconds=record.total_seconds,
        )

    def _serve_ask(self, request: ServeRequest, seed: int) -> ChatResponse:
        self._backend_pause()
        if request.session_id is not None:
            view = self._resolve_view(request)
            entry = self.sessions.get_or_create(request.session_id)
            with entry.lock:
                if view is not None:
                    entry.session.upload_graph(view.graph,
                                               **request.attachments)
                    entry.graph_ref = (view.name, view.epoch)
                elif request.graph is not None:
                    entry.session.upload_graph(request.graph,
                                               **request.attachments)
                chat_response = entry.session.send(request.text)
        else:
            attachments = dict(request.attachments)
            attachments.setdefault("request_seed", seed)
            chat_response = self.chatgraph.ask(request.text,
                                               self._resolve_graph(request),
                                               **attachments)
        self._record_pipeline(chat_response.pipeline)
        if chat_response.record is not None:
            self._stats.observe(
                "execute", chat_response.record.total_seconds)
            if chat_response.record.is_degraded:
                self._stats.incr("degraded_responses")
        return chat_response

    # ------------------------------------------------------------------
    # micro-batched serving
    # ------------------------------------------------------------------
    def _propose_batch(self, batch: list[PendingRequest]
                       ) -> tuple[list[int], list[Any]]:
        """Phase 1 of a micro-batch: one shared batched pipeline pass.

        The emulated backend round trip is paid once for the whole
        batch — that amortization is the point of micro-batching a
        remote-LLM-shaped workload.  Returns ``(seeds, outcomes)``
        where each outcome is the item's :class:`PipelineResult` or the
        exception that failed it: a bad graph name or a mid-batch stage
        failure degrades that one response, never its batchmates
        (matching what the scalar path would do to each request alone).
        """
        seeds = [item.request.content_seed(self.config.seed)
                 for item in batch]
        outcomes: list[Any] = [None] * len(batch)
        prompts: list[Prompt] = []
        live: list[int] = []
        for index, (item, seed) in enumerate(zip(batch, seeds)):
            try:
                graph = self._resolve_graph(item.request)
            except Exception as exc:  # noqa: BLE001 - this item only
                outcomes[index] = exc
                continue
            attachments = dict(item.request.attachments)
            attachments.setdefault("request_seed", seed)
            prompts.append(Prompt(text=item.request.text, graph=graph,
                                  attachments=attachments))
            live.append(index)
        self._backend_pause()
        if prompts:
            if self.tracer is None:
                results = self.chatgraph.propose_batch(
                    prompts, return_exceptions=True)
            else:
                with self.tracer.span("microbatch", kind="batch",
                                      key=f"{seeds[live[0]]:016x}",
                                      batch_size=len(batch)):
                    results = self.chatgraph.propose_batch(
                        prompts, return_exceptions=True)
            for index, result in zip(live, results):
                outcomes[index] = result
        return seeds, outcomes

    def _finish_batch(self, batch: list[PendingRequest], worker: str,
                      seeds: list[int], outcomes: list[Any],
                      queued_per: list[float], start: float) -> None:
        """Phase 2 of a micro-batch: per-item tails and resolution.

        ``ask`` requests execute their chains one by one here
        (execution carries per-request state and does not batch);
        failed outcomes from phase 1 become per-item error responses.
        Runs on the worker, or on the finisher lane when execution
        overlap is enabled.
        """
        responses: list[ServeResponse] = []
        for item, seed, outcome in zip(batch, seeds, outcomes):
            response = ServeResponse(request_id=item.request_id,
                                     op=item.request.op, ok=True,
                                     worker=worker, seed=seed)
            responses.append(response)
            if isinstance(outcome, BaseException):
                self._stats.incr("failed")
                response.error = str(outcome)
                response.error_type = type(outcome).__name__
            elif self.tracer is None:
                self._finish_batch_item(item, outcome, response)
            else:
                with self.tracer.span(f"request:{item.request.op}",
                                      kind="request", key=f"{seed:016x}",
                                      parent=item.parent_span_id,
                                      op=item.request.op,
                                      client=item.request.client_id,
                                      batch_size=len(batch)) as span:
                    self._finish_batch_item(item, outcome, response)
                    span.set(ok=not response.error)
        service = time.perf_counter() - start
        # the whole batch shares one service interval; the EMA feeding
        # backpressure retry hints gets the per-request amortized cost
        self.queue.record_service_time(service / len(batch))
        for item, queued, response in zip(batch, queued_per, responses):
            response.ok = not response.error
            response.queued_seconds = queued
            response.service_seconds = service
            self._stats.observe("service", service)
            self._stats.observe("total", queued + service)
            self._stats.incr(f"op_{item.request.op}")
            self._stats.incr("microbatched")
            item._resolve(response)

    def _finish_lane_loop(self) -> None:
        """Drain queued batch tails; ``None`` is the shutdown sentinel.

        Whatever happens, every item of a popped job resolves — a
        caller blocked in :meth:`PendingRequest.result` must never be
        stranded by a finisher bug.
        """
        while True:
            job = self._finish_queue.get()
            if job is None:
                return
            batch = job[0]
            try:
                self._finish_batch(*job)
            except Exception as exc:  # noqa: BLE001 - resolve anyway
                for item in batch:
                    if not item.done():
                        self._stats.incr("failed")
                        item._resolve(ServeResponse(
                            request_id=item.request_id,
                            op=item.request.op, ok=False,
                            error=str(exc),
                            error_type=type(exc).__name__))

    def _finish_batch_item(self, item: PendingRequest,
                           result: PipelineResult,
                           response: ServeResponse) -> None:
        """Per-request tail of a batch: record stats, execute for ask."""
        self._record_pipeline(result)
        if item.request.op == "propose":
            response.value = result
            return
        try:
            record, monitor = self.chatgraph.execute(result)
        except Exception as exc:  # noqa: BLE001 - fail only this item
            self._stats.incr("failed")
            response.error = str(exc)
            response.error_type = type(exc).__name__
            return
        self._stats.observe("execute", record.total_seconds)
        if record.is_degraded:
            self._stats.incr("degraded_responses")
        response.value = ChatResponse(
            prompt=result.prompt,
            pipeline=result,
            record=record,
            answer=render_answer(record),
            monitor=monitor,
            seconds=record.total_seconds,
        )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """One merged snapshot: counters, latency, caches, sessions,
        queue."""
        snapshot = self._stats.snapshot()
        snapshot["queue"] = {"depth": self.queue.maxsize,
                             "size": len(self.queue)}
        snapshot["sessions"] = self.sessions.stats()
        snapshot["caches"] = (self.caches.stats()
                              if self.caches is not None else {})
        snapshot["breakers"] = (self.breakers.snapshot()
                                if self.breakers is not None else {})
        snapshot["rate_limiter"] = {
            "clients": len(self.limiter) if self.limiter is not None
            else 0}
        snapshot["workers"] = self.config.workers
        snapshot["pipeline_stages"] = list(self.pipeline_stages)
        snapshot["store"] = (self.catalog.stats()
                             if self.catalog is not None else {})
        #: Uniform surface with ShardedChatGraphServer.stats(): a
        #: single-process server simply has no shards.
        snapshot["shards"] = {"count": 0, "alive": 0, "per_shard": {}}
        return snapshot

    def metrics_snapshot(self) -> dict[str, Any]:
        """The observability view: stats + metrics registry + gauges.

        Merges the server's counters and per-stage latency quantiles
        (p50/p95/p99) with the :class:`~repro.obs.MetricsRegistry`'s
        event counters and point-in-time gauges (queue depth, live
        sessions, cache hit rates, open breakers).  Feed the result to
        :func:`repro.obs.render_metrics_markdown` for a report.
        """
        base = self.stats()
        self.metrics.set_gauge("queue_size", len(self.queue))
        self.metrics.set_gauge("sessions_live",
                               base["sessions"]["active"])
        self.metrics.set_gauge("workers", self.config.workers)
        if self.caches is not None:
            for name, stats in base["caches"].items():
                self.metrics.set_gauge(f"cache_{name}_hit_rate",
                                       stats.get("hit_rate", 0.0))
        if self.breakers is not None:
            self.metrics.set_gauge("breakers_open",
                                   len(self.breakers.open_names()))
        obs = self.metrics.snapshot()
        return {
            "counters": {**base["counters"], **obs["counters"]},
            "gauges": obs["gauges"],
            "latency": base["latency"],
            "histograms": obs["histograms"],
            "caches": base["caches"],
            "breakers": base["breakers"],
            "trace": (self.tracer.stats()
                      if self.tracer is not None else {}),
        }
