"""The serving facade and request types for in-process serving.

``ChatGraphServer`` turns the synchronous, single-caller facade into a
multi-session service: callers submit :class:`ServeRequest` objects
(propose / execute / ask) which pass admission control (per-client rate
limit, bounded queue with backpressure) and are dispatched to N worker
threads.  Each request gets a deterministic content-keyed seed, so a
fixed workload produces bit-identical results whether it is served by
one worker or eight, in any arrival order.

Since the request-plane unification, the server is a thin facade over
the shared :class:`~repro.runtime.lifecycle.RequestLifecycle` with a
:class:`~repro.runtime.local.LocalBackend` — the same runtime the
sharded tier runs on, which is what keeps the two servers' admission
semantics, counters, and report shapes identical.  This module keeps
the *request types* (:class:`ServeRequest`, :class:`ServeResponse`,
:class:`PendingRequest`) every layer shares.

Example::

    from repro import ChatGraph
    from repro.serve import ChatGraphServer, ServeRequest

    server = ChatGraphServer(ChatGraph.pretrained())
    with server:
        response = server.ask("write a brief report for G", graph=g)
        print(response.value.answer)
    print(server.stats()["counters"])
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass, field
from typing import Any

from ..apis.chain import APIChain
from ..config import ServeConfig
from ..core.chatgraph import ChatGraph
from ..core.pipeline import PipelineResult
from ..errors import ServeError
from ..graphs.graph import Graph

#: Operations a :class:`ServeRequest` may name.
OPS = ("propose", "execute", "ask")


@dataclass
class ServeRequest:
    """One unit of work submitted to the server.

    ``propose`` and ``ask`` need ``text`` (plus an optional graph);
    ``execute`` needs the ``pipeline_result`` of an earlier propose and
    may carry a user-edited ``chain`` (paper scenario 4's confirm/edit
    loop, server-side).
    """

    op: str
    text: str = ""
    graph: Graph | None = None
    #: Name of a graph in the server's durable catalog (see
    #: ``ServeConfig.store_root``); resolved to an immutable
    #: epoch-pinned view at service time.  Mutually exclusive with an
    #: inline ``graph``.
    graph_name: str | None = None
    #: Binds the request to a stateful dialog; None = stateless.
    session_id: str | None = None
    #: Rate-limiting principal.
    client_id: str = "anonymous"
    #: For ``op="execute"``: the proposal to run.
    pipeline_result: PipelineResult | None = None
    #: For ``op="execute"``: optional edited chain replacing the
    #: proposed one.
    chain: APIChain | None = None
    attachments: dict[str, Any] = field(default_factory=dict)

    def validate(self) -> None:
        if self.op not in OPS:
            raise ServeError(f"unknown op {self.op!r}; expected one of "
                             f"{OPS}")
        if self.op in ("propose", "ask") and not self.text:
            raise ServeError(f"op {self.op!r} requires text")
        if self.op == "execute" and self.pipeline_result is None:
            raise ServeError("op 'execute' requires pipeline_result")
        if self.graph is not None and self.graph_name is not None:
            raise ServeError(
                "pass either an inline graph or a graph_name, not both")

    def content_seed(self, base_seed: int) -> int:
        """Deterministic seed from request *content* (not arrival order).

        Hashing the identifying fields keeps results reproducible and
        independent of worker interleaving: the same request under the
        same base seed always computes with the same seed.
        """
        material = "\x1f".join((
            str(base_seed), self.op, self.text,
            self.session_id or "", self.client_id,
        ))
        # appended only when present so store-less requests keep the
        # exact seeds (and span identities) they had before the catalog
        if self.graph_name is not None:
            material += "\x1f" + self.graph_name
        digest = hashlib.sha256(material.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "little")


@dataclass
class ServeResponse:
    """Outcome of one served request."""

    request_id: int
    op: str
    ok: bool
    #: ``propose`` -> :class:`PipelineResult`; ``ask`` ->
    #: :class:`ChatResponse`; ``execute`` -> :class:`ChatResponse`.
    value: Any = None
    error: str = ""
    error_type: str = ""
    worker: str = ""
    seed: int = 0
    queued_seconds: float = 0.0
    service_seconds: float = 0.0


class PendingRequest:
    """Caller-side handle: a queued request and its future response."""

    def __init__(self, request: ServeRequest, request_id: int,
                 enqueued_at: float) -> None:
        self.request = request
        self.request_id = request_id
        self.enqueued_at = enqueued_at
        #: Span ID active on the submitting thread (trace-context
        #: propagation across the worker-pool boundary).
        self.parent_span_id: str | None = None
        #: Seconds this request waited inside the micro-batcher for
        #: company (stamped by :meth:`MicroBatcher.collect`; 0 for the
        #: scalar path).  Distinct from the admission-queue wait.
        self.batch_wait_seconds: float = 0.0
        self._done = threading.Event()
        self._response: ServeResponse | None = None

    def done(self) -> bool:
        return self._done.is_set()

    def result(self, timeout: float | None = None) -> ServeResponse:
        """Block until the worker resolves this request."""
        if not self._done.wait(timeout):
            raise ServeError(
                f"request {self.request_id} not done after {timeout}s")
        assert self._response is not None
        return self._response

    def _resolve(self, response: ServeResponse) -> None:
        self._response = response
        self._done.set()


class ChatGraphServer:
    """Concurrent front-end over one shared :class:`ChatGraph`.

    A facade over the unified request-plane runtime: admission, id
    allocation, stats and the reply edge live in the shared
    :class:`~repro.runtime.lifecycle.RequestLifecycle`; worker threads,
    micro-batching, sessions, caches and the catalog binding live in
    the :class:`~repro.runtime.local.LocalBackend`.  Lifecycle:
    :meth:`start` -> submit / request -> :meth:`stop` (or use the
    instance as a context manager).
    """

    def __init__(self, chatgraph: ChatGraph,
                 config: ServeConfig | None = None,
                 catalog: Any = None,
                 clock: Any = None) -> None:
        self.chatgraph = chatgraph
        self.config = config or ServeConfig()
        # imported lazily: repro.runtime imports this module for the
        # request types, so it must finish loading first
        from ..runtime import LocalBackend, RequestLifecycle

        self.backend = LocalBackend(chatgraph, catalog=catalog)
        self.lifecycle = RequestLifecycle(self.config, self.backend,
                                          clock=clock)

    # ------------------------------------------------------------------
    # the runtime's shared surfaces, re-exposed for callers and tests
    # ------------------------------------------------------------------
    @property
    def clock(self) -> Any:
        return self.lifecycle.clock

    @property
    def queue(self) -> Any:
        return self.lifecycle.queue

    @property
    def limiter(self) -> Any:
        return self.lifecycle.limiter

    @property
    def _stats(self) -> Any:
        return self.lifecycle.stats

    @property
    def metrics(self) -> Any:
        return self.lifecycle.metrics

    @property
    def tracer(self) -> Any:
        return self.lifecycle.tracer

    @property
    def breakers(self) -> Any:
        return self.lifecycle.breakers

    @property
    def caches(self) -> Any:
        return self.backend.caches

    @property
    def pipeline_stages(self) -> tuple[str, ...]:
        return self.backend.pipeline_stages

    @property
    def sessions(self) -> Any:
        return self.backend.sessions

    @property
    def batcher(self) -> Any:
        return self.backend.batcher

    @property
    def catalog(self) -> Any:
        return self.backend.catalog

    @property
    def policy(self) -> Any:
        return self.backend.policy

    @property
    def _finish_queue(self) -> Any:
        return self.backend._finish_queue

    @property
    def _finish_thread(self) -> Any:
        return self.backend._finish_thread

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ChatGraphServer":
        self.lifecycle.start()
        return self

    def stop(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Graceful shutdown: stop admitting, then drain or cancel.

        With ``drain`` (default) queued requests are still served;
        otherwise they resolve immediately with a shutdown error.
        """
        self.lifecycle.stop(drain=drain, timeout=timeout)

    def __enter__(self) -> "ChatGraphServer":
        if not self.running:
            self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    @property
    def running(self) -> bool:
        return self.lifecycle.running

    def warm_caches(self, names: Any = None) -> int:
        """Pre-populate pipeline caches from the catalog's named graphs.

        ``names`` restricts warming to specific graphs (the shard
        tier's migration path warms only the graphs whose ring
        ownership moved); None warms every catalog graph.  Returns the
        number of cache entries added.
        """
        return self.backend.warm_named_caches(names)

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(self, request: ServeRequest,
               parent_span_id: str | None = None) -> PendingRequest:
        """Admit ``request`` and return a handle to its future response.

        Raises :class:`~repro.errors.RateLimitError` or
        :class:`~repro.errors.BackpressureError` (both carry
        ``retry_after``) when admission control rejects it.

        ``parent_span_id`` overrides the submitting thread's active
        span as the parent of the request span — the cross-process
        trace handoff: a shard worker passes the coordinator-side span
        id carried in the request wire, so merged traces keep one tree.
        """
        return self.lifecycle.submit(request,
                                     parent_span_id=parent_span_id)

    def request(self, request: ServeRequest,
                timeout: float | None = None) -> ServeResponse:
        """Submit and wait: the synchronous convenience path."""
        return self.lifecycle.request(request, timeout)

    def propose(self, text: str, graph: Graph | None = None,
                **kwargs: Any) -> ServeResponse:
        return self.request(ServeRequest(op="propose", text=text,
                                         graph=graph, **kwargs))

    def ask(self, text: str, graph: Graph | None = None,
            **kwargs: Any) -> ServeResponse:
        return self.request(ServeRequest(op="ask", text=text, graph=graph,
                                         **kwargs))

    def execute(self, pipeline_result: PipelineResult,
                chain: APIChain | None = None,
                **kwargs: Any) -> ServeResponse:
        return self.request(ServeRequest(op="execute",
                                         pipeline_result=pipeline_result,
                                         chain=chain, **kwargs))

    # ------------------------------------------------------------------
    # introspection (one snapshot builder; see repro.runtime.snapshot)
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """One merged snapshot: counters, latency, caches, sessions,
        queue."""
        return self.lifecycle.stats_snapshot()

    def metrics_snapshot(self) -> dict[str, Any]:
        """The observability view: stats + metrics registry + gauges.

        Merges the server's counters and per-stage latency quantiles
        (p50/p95/p99) with the :class:`~repro.obs.MetricsRegistry`'s
        event counters and point-in-time gauges (queue depth, live
        sessions, cache hit rates, open breakers).  Feed the result to
        :func:`repro.obs.render_metrics_markdown` for a report.
        """
        return self.lifecycle.metrics_snapshot()
