"""Request micro-batching: coalesce queued work into shared batches.

A worker that pops one request from the admission queue hands it to the
:class:`MicroBatcher`, which greedily gathers more *batchable* requests
(stateless ``propose``/``ask``) until either the batch is full or the
flush deadline expires.  The whole batch then drives the *same*
declarative stage graph the scalar path uses (see
:mod:`repro.core.stages`), down its vectorized path — one embedding
call, one ANN search, one decode matmul per step — instead of N scalar
passes.

Session-bound and ``execute`` requests never batch: sessions serialize
on their own locks and executions carry per-request state, so they pass
through untouched (the ``passthrough`` list).

The deadline is the tail-latency knob: the first request of a partial
batch waits at most ``deadline_seconds`` for company.  With a deadline
of zero the batcher still coalesces whatever is *already* queued — the
no-added-latency operating point.
"""

from __future__ import annotations

import time
from typing import Any, Callable

from .admission import AdmissionQueue

Clock = Callable[[], float]


class MicroBatcher:
    """Gathers compatible queued requests into bounded batches."""

    def __init__(self, max_batch: int, deadline_seconds: float,
                 clock: Clock = time.monotonic,
                 batchable_fn: "Callable[[Any], bool] | None" = None
                 ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if deadline_seconds < 0:
            raise ValueError("deadline_seconds must be >= 0")
        self.max_batch = max_batch
        self.deadline_seconds = deadline_seconds
        self._clock = clock
        if batchable_fn is not None:
            # instance attribute shadows the class-level rule: the
            # shard coordinator passes ``lambda item: True`` — on its
            # side a "batch" is a scatter frame, and *any* routed
            # request may share one because the receiving shard
            # re-applies the pipeline rule below
            self.batchable = batchable_fn

    @staticmethod
    def batchable(item: Any) -> bool:
        """True when the pending request may join a shared batch."""
        request = item.request
        return (request.op in ("propose", "ask")
                and request.session_id is None)

    def collect(self, queue: AdmissionQueue,
                first: Any) -> tuple[list[Any], list[Any]]:
        """Grow a batch around ``first``; returns (batch, passthrough).

        ``batch`` holds up to ``max_batch`` batchable requests;
        ``passthrough`` holds everything popped along the way that must
        be served individually.  A non-batchable ``first`` short-
        circuits: it is returned alone without waiting.
        """
        if not self.batchable(first):
            return [], [first]
        start = self._clock()
        batch = [first]
        join_times = [start]
        passthrough: list[Any] = []
        deadline = start + self.deadline_seconds
        while len(batch) < self.max_batch:
            before = self._clock()
            remaining = deadline - before
            if remaining <= 0 and len(queue) == 0:
                break
            item = queue.get(timeout=max(0.0, remaining))
            if item is None:
                if queue.closed or remaining <= 0:
                    break
                # distinguish a raced wakeup (another consumer stole
                # the notified item; keep waiting out the remainder)
                # from an elapsed or unmeasurable wait: on a coarse or
                # fake clock the elapsed time reads 0 and ``remaining``
                # would stay positive forever, so clamp the deadline to
                # "now" — the next iteration then drains only what is
                # already queued instead of spinning hot
                waited = self._clock() - before
                if waited <= 0.0 or waited >= remaining:
                    deadline = min(deadline, self._clock())
                continue
            if self.batchable(item):
                batch.append(item)
                join_times.append(self._clock())
            else:
                passthrough.append(item)
        # stamp each member's coalescing wait (flush minus join) with
        # the batcher's own clock: the first request of a deadline
        # flush waited ~deadline_seconds, the member that triggered a
        # size flush ~0 — this is what microbatch_queue_delay reports,
        # distinct from the admission-queue wait
        flush = self._clock()
        for item, joined in zip(batch, join_times):
            try:
                item.batch_wait_seconds = flush - joined
            except AttributeError:  # slotted test doubles
                pass
        return batch, passthrough
