"""repro.serve — the concurrent service runtime around ChatGraph.

The library's :class:`~repro.core.chatgraph.ChatGraph` is a synchronous
single-caller facade; this subsystem makes it a *server*:

* :mod:`engine` — :class:`ChatGraphServer`: worker pool, request
  dispatch, deterministic per-request seeding, graceful shutdown;
* :mod:`admission` — bounded queue with backpressure + per-client
  token-bucket rate limiting;
* :mod:`breaker` — per-API circuit breakers shared by the worker
  pool (closed/open/half-open with failure-rate windows + cooldown);
* :mod:`sessions` — concurrent TTL/LRU session store;
* :mod:`cache` — thread-safe content-addressed LRU caches wired into
  the pipeline's embedding, retrieval and sequentialize stages;
* :mod:`stats` — per-stage counters and latency histograms;
* :mod:`bench` — the throughput/latency harness behind
  ``python -m repro.cli serve-bench`` and ``benchmarks/bench_serve.py``.
"""

from ..config import ObsConfig, ServeConfig
from ..errors import (
    BackpressureError,
    CircuitOpenError,
    RateLimitError,
    ServeError,
)
from .admission import AdmissionQueue, RateLimiter, TokenBucket
from .breaker import BreakerRegistry, BreakerState, CircuitBreaker
from .cache import CacheStats, LRUCache, PipelineCaches
from .engine import (
    ChatGraphServer,
    PendingRequest,
    ServeRequest,
    ServeResponse,
)
from .microbatch import MicroBatcher
from .sessions import SessionEntry, SessionStore
from .stats import LatencyHistogram, ServerStats

__all__ = [
    "AdmissionQueue",
    "BackpressureError",
    "BreakerRegistry",
    "BreakerState",
    "CacheStats",
    "ChatGraphServer",
    "CircuitBreaker",
    "CircuitOpenError",
    "LRUCache",
    "LatencyHistogram",
    "MicroBatcher",
    "ObsConfig",
    "PendingRequest",
    "PipelineCaches",
    "RateLimitError",
    "RateLimiter",
    "ServeConfig",
    "ServeError",
    "ServeRequest",
    "ServeResponse",
    "ServerStats",
    "SessionEntry",
    "SessionStore",
    "TokenBucket",
]
