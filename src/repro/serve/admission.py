"""Admission control: bounded queue with backpressure + rate limiting.

The server never blocks a caller on a full queue.  ``submit`` on a full
:class:`AdmissionQueue` raises :class:`~repro.errors.BackpressureError`
carrying a ``retry_after`` hint derived from the observed service rate
(queue depth x recent seconds-per-request), so well-behaved clients can
back off instead of piling on.  A per-client :class:`TokenBucket` keeps
one chatty client from starving the rest.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Callable

from ..errors import BackpressureError, RateLimitError, ServeError

Clock = Callable[[], float]


class TokenBucket:
    """Classic token bucket: ``capacity`` burst, ``refill`` tokens/s."""

    def __init__(self, capacity: float, refill_per_second: float,
                 clock: Clock = time.monotonic) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be > 0")
        if refill_per_second < 0:
            raise ValueError("refill_per_second must be >= 0")
        self.capacity = float(capacity)
        self.refill_per_second = refill_per_second
        self._clock = clock
        self._tokens = float(capacity)
        self._updated = clock()
        self._lock = threading.Lock()

    def _refill(self) -> None:
        now = self._clock()
        elapsed = max(0.0, now - self._updated)
        self._updated = now
        self._tokens = min(self.capacity,
                           self._tokens + elapsed * self.refill_per_second)

    def try_acquire(self, tokens: float = 1.0) -> bool:
        with self._lock:
            self._refill()
            if self._tokens >= tokens:
                self._tokens -= tokens
                return True
            return False

    def retry_after(self, tokens: float = 1.0) -> float:
        """Seconds until ``tokens`` will be available (inf if never)."""
        with self._lock:
            self._refill()
            missing = tokens - self._tokens
            if missing <= 0:
                return 0.0
            if self.refill_per_second == 0:
                return float("inf")
            return missing / self.refill_per_second

    def peek(self) -> float:
        """Current token count after refill (no tokens consumed)."""
        with self._lock:
            self._refill()
            return self._tokens


class RateLimiter:
    """Per-client token buckets, created lazily on first sight.

    Buckets are evicted once they have sat untouched for
    ``idle_seconds`` *and* refilled back to full capacity — recreating
    such a bucket on the client's next request is semantically
    identical, so eviction only bounds memory (one bucket per client-id
    ever seen would otherwise grow forever).
    """

    def __init__(self, capacity: float, refill_per_second: float,
                 clock: Clock = time.monotonic,
                 idle_seconds: float = 600.0) -> None:
        if idle_seconds <= 0:
            raise ValueError("idle_seconds must be > 0")
        self.capacity = capacity
        self.refill_per_second = refill_per_second
        self.idle_seconds = idle_seconds
        self._clock = clock
        self._buckets: dict[str, TokenBucket] = {}
        self._last_seen: dict[str, float] = {}
        self._last_sweep = clock()
        self._lock = threading.Lock()

    def _sweep(self, now: float) -> None:
        # caller holds the lock; at most one sweep per idle interval
        if now - self._last_sweep < self.idle_seconds:
            return
        self._last_sweep = now
        for client_id in list(self._buckets):
            idle = now - self._last_seen.get(client_id, now)
            if idle < self.idle_seconds:
                continue
            # only drop buckets indistinguishable from fresh ones: a
            # partially-drained bucket with no refill must keep its debt
            if self._buckets[client_id].peek() >= self.capacity:
                del self._buckets[client_id]
                del self._last_seen[client_id]

    def admit(self, client_id: str) -> None:
        """Take one token for ``client_id`` or raise RateLimitError."""
        with self._lock:
            now = self._clock()
            self._sweep(now)
            bucket = self._buckets.get(client_id)
            if bucket is None:
                bucket = TokenBucket(self.capacity,
                                     self.refill_per_second,
                                     clock=self._clock)
                self._buckets[client_id] = bucket
            self._last_seen[client_id] = now
        if not bucket.try_acquire():
            raise RateLimitError(client_id, bucket.retry_after())

    def __len__(self) -> int:
        """Number of live per-client buckets (for stats and tests)."""
        with self._lock:
            return len(self._buckets)


class AdmissionQueue:
    """Bounded FIFO whose producers are rejected, never blocked.

    Consumers (worker threads) block on :meth:`get` with a timeout so
    they can notice shutdown; producers either enqueue immediately or
    get a :class:`~repro.errors.BackpressureError`.
    """

    def __init__(self, maxsize: int, clock: Clock = time.monotonic) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = maxsize
        self._clock = clock
        self._items: deque[Any] = deque()
        self._condition = threading.Condition()
        self._closed = False
        #: Exponential moving average of service seconds per request,
        #: used for the retry_after hint on rejection.
        self._ema_service_seconds = 0.05

    def put(self, item: Any) -> None:
        with self._condition:
            if self._closed:
                raise ServeError("server is not accepting requests")
            if len(self._items) >= self.maxsize:
                retry_after = self.maxsize * self._ema_service_seconds
                raise BackpressureError(retry_after=retry_after,
                                        depth=len(self._items))
            self._items.append(item)
            self._condition.notify()

    def get(self, timeout: float = 0.1) -> Any | None:
        """Next item, or None after ``timeout`` seconds (or when closed
        and drained)."""
        with self._condition:
            if not self._items:
                if self._closed:
                    return None
                self._condition.wait(timeout)
            if self._items:
                return self._items.popleft()
            return None

    def record_service_time(self, seconds: float, alpha: float = 0.2) -> None:
        """Fold one observed request-service time into the EMA."""
        with self._condition:
            self._ema_service_seconds = (
                alpha * seconds + (1 - alpha) * self._ema_service_seconds)

    def close(self) -> None:
        """Stop admitting; wake every blocked consumer."""
        with self._condition:
            self._closed = True
            self._condition.notify_all()

    def reopen(self) -> None:
        with self._condition:
            self._closed = False

    def drain(self) -> list[Any]:
        """Remove and return everything still queued."""
        with self._condition:
            items = list(self._items)
            self._items.clear()
            return items

    @property
    def closed(self) -> bool:
        with self._condition:
            return self._closed

    def __len__(self) -> int:
        with self._condition:
            return len(self._items)
