"""Per-API circuit breakers for the service runtime.

A :class:`CircuitBreaker` tracks the recent outcomes of one API over a
sliding window and walks the classic three-state machine:

* **closed** — calls flow; enough failures at a high enough failure
  rate trip the breaker;
* **open** — calls are refused outright (the executor fails the step
  with :class:`~repro.errors.CircuitOpenError` without invoking the
  API) until ``cooldown_seconds`` elapse;
* **half-open** — after the cooldown a limited number of probe calls
  pass through; one success closes the circuit, one failure re-opens
  it and restarts the cooldown.

:class:`BreakerRegistry` holds one breaker per API name and is shared
by every worker of a :class:`~repro.serve.engine.ChatGraphServer`, so
a persistently failing API is short-circuited for the whole fleet, not
per thread.  Both classes take an injectable ``clock`` so tests drive
the cooldown deterministically.
"""

from __future__ import annotations

import enum
import threading
import time
from collections import deque
from typing import Any, Callable

from ..errors import ConfigError

Clock = Callable[[], float]


class BreakerState(str, enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """Sliding-window failure-rate breaker for one API.

    The circuit trips when the window holds at least
    ``failure_threshold`` failures *and* the windowed failure rate
    reaches ``failure_rate_threshold``.
    """

    def __init__(self, failure_threshold: int = 5,
                 failure_rate_threshold: float = 0.5,
                 window_size: int = 20,
                 cooldown_seconds: float = 30.0,
                 half_open_max_calls: int = 1,
                 clock: Clock = time.monotonic) -> None:
        if failure_threshold < 1:
            raise ConfigError("failure_threshold must be >= 1")
        if not 0.0 < failure_rate_threshold <= 1.0:
            raise ConfigError("failure_rate_threshold must be in (0, 1]")
        if window_size < failure_threshold:
            raise ConfigError("window_size must be >= failure_threshold")
        if cooldown_seconds <= 0:
            raise ConfigError("cooldown_seconds must be > 0")
        if half_open_max_calls < 1:
            raise ConfigError("half_open_max_calls must be >= 1")
        self.failure_threshold = failure_threshold
        self.failure_rate_threshold = failure_rate_threshold
        self.cooldown_seconds = cooldown_seconds
        self.half_open_max_calls = half_open_max_calls
        self._clock = clock
        self._lock = threading.Lock()
        self._window: deque[bool] = deque(maxlen=window_size)  # True = ok
        self._state = BreakerState.CLOSED
        self._opened_at = 0.0
        self._half_open_probes = 0
        self._times_opened = 0

    # ------------------------------------------------------------------
    @property
    def state(self) -> BreakerState:
        with self._lock:
            self._maybe_half_open()
            return self._state

    @property
    def times_opened(self) -> int:
        with self._lock:
            return self._times_opened

    def _maybe_half_open(self) -> None:
        # caller holds the lock
        if self._state is BreakerState.OPEN and \
                self._clock() - self._opened_at >= self.cooldown_seconds:
            self._state = BreakerState.HALF_OPEN
            self._half_open_probes = 0

    def _trip(self) -> None:
        # caller holds the lock
        self._state = BreakerState.OPEN
        self._opened_at = self._clock()
        self._times_opened += 1

    # ------------------------------------------------------------------
    def allow(self) -> bool:
        """Whether a call may proceed right now (may consume a probe)."""
        with self._lock:
            self._maybe_half_open()
            if self._state is BreakerState.OPEN:
                return False
            if self._state is BreakerState.HALF_OPEN:
                if self._half_open_probes >= self.half_open_max_calls:
                    return False
                self._half_open_probes += 1
            return True

    def retry_after(self) -> float:
        """Seconds until the next half-open probe (0 when not open)."""
        with self._lock:
            if self._state is not BreakerState.OPEN:
                return 0.0
            remaining = self.cooldown_seconds - \
                (self._clock() - self._opened_at)
            return max(0.0, remaining)

    def record_success(self) -> None:
        with self._lock:
            if self._state is BreakerState.HALF_OPEN:
                self._state = BreakerState.CLOSED
                self._window.clear()
                return
            self._window.append(True)

    def record_failure(self) -> bool:
        """Record one failure; True when this call opened the circuit."""
        with self._lock:
            if self._state is BreakerState.HALF_OPEN:
                self._trip()
                return True
            if self._state is BreakerState.OPEN:
                return False
            self._window.append(False)
            failures = sum(1 for ok in self._window if not ok)
            rate = failures / len(self._window)
            if failures >= self.failure_threshold and \
                    rate >= self.failure_rate_threshold:
                self._trip()
                return True
            return False

    def trip(self) -> bool:
        """Force the circuit open now; True when this call opened it.

        The window-based path infers failure from call outcomes; this
        is the externally-observed path — the shard coordinator trips a
        dead shard's breaker directly on heartbeat timeout or pipe EOF,
        where no "call" ever failed.
        """
        with self._lock:
            if self._state is BreakerState.OPEN:
                return False
            self._trip()
            return True

    def reset(self) -> None:
        with self._lock:
            self._state = BreakerState.CLOSED
            self._window.clear()
            self._half_open_probes = 0

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            self._maybe_half_open()
            failures = sum(1 for ok in self._window if not ok)
            return {
                "state": self._state.value,
                "window": len(self._window),
                "failures": failures,
                "times_opened": self._times_opened,
            }


class BreakerRegistry:
    """One :class:`CircuitBreaker` per API name, created lazily.

    Implements the duck-typed breaker interface the
    :class:`~repro.apis.executor.ChainExecutor` consumes:
    ``allow(name)``, ``record_success(name)``, ``record_failure(name)``
    (returning True when the circuit opened) and ``retry_after(name)``.
    """

    def __init__(self, failure_threshold: int = 5,
                 failure_rate_threshold: float = 0.5,
                 window_size: int = 20,
                 cooldown_seconds: float = 30.0,
                 half_open_max_calls: int = 1,
                 clock: Clock = time.monotonic) -> None:
        self._kwargs = dict(
            failure_threshold=failure_threshold,
            failure_rate_threshold=failure_rate_threshold,
            window_size=window_size,
            cooldown_seconds=cooldown_seconds,
            half_open_max_calls=half_open_max_calls,
            clock=clock,
        )
        self._breakers: dict[str, CircuitBreaker] = {}
        self._lock = threading.Lock()

    def breaker(self, api_name: str) -> CircuitBreaker:
        with self._lock:
            breaker = self._breakers.get(api_name)
            if breaker is None:
                breaker = CircuitBreaker(**self._kwargs)
                self._breakers[api_name] = breaker
            return breaker

    def allow(self, api_name: str) -> bool:
        return self.breaker(api_name).allow()

    def retry_after(self, api_name: str) -> float:
        return self.breaker(api_name).retry_after()

    def record_success(self, api_name: str) -> None:
        self.breaker(api_name).record_success()

    def record_failure(self, api_name: str) -> bool:
        return self.breaker(api_name).record_failure()

    def trip(self, api_name: str) -> bool:
        """Force ``api_name``'s circuit open; True when it just opened."""
        return self.breaker(api_name).trip()

    def reset_one(self, api_name: str) -> None:
        """Close ``api_name``'s circuit (a replaced shard starts clean)."""
        self.breaker(api_name).reset()

    def reset(self) -> None:
        with self._lock:
            for breaker in self._breakers.values():
                breaker.reset()

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """Per-API breaker states (only APIs that saw traffic)."""
        with self._lock:
            breakers = dict(self._breakers)
        return {name: breaker.snapshot()
                for name, breaker in sorted(breakers.items())}

    def open_names(self) -> list[str]:
        with self._lock:
            breakers = dict(self._breakers)
        return [name for name, breaker in sorted(breakers.items())
                if breaker.state is BreakerState.OPEN]
