"""Concurrent session store: TTL + max-size eviction over ChatSession.

The store owns every :class:`~repro.core.session.ChatSession` the
server hands out.  Each entry carries its own lock — two requests that
name the same ``session_id`` serialize against each other (dialog order
matters) while distinct sessions proceed in parallel.  Idle sessions
expire after ``ttl_seconds``; when the store is full the least recently
used session is evicted first.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable

from ..core.chatgraph import ChatGraph
from ..core.session import ChatSession
from ..errors import SessionError

Clock = Callable[[], float]


@dataclass
class SessionEntry:
    """One live session plus its bookkeeping."""

    session_id: str
    session: ChatSession
    created: float
    last_used: float
    requests: int = 0
    #: Durable-store binding: ``(catalog name, epoch)`` of the graph
    #: view this session last worked against.  The name survives a
    #: server restart (the graph lives in the store, not the session);
    #: the epoch lets compaction evict sessions pinned to pruned state.
    graph_ref: tuple[str, int] | None = None
    #: Serializes requests that target this session.
    lock: threading.Lock = field(default_factory=threading.Lock)


class SessionStore:
    """Thread-safe ``session_id -> ChatSession`` map with eviction.

    Example::

        store = SessionStore(chatgraph, ttl_seconds=600, max_sessions=64)
        entry = store.get_or_create("alice")
        with entry.lock:
            entry.session.send("how many nodes does G have?")
    """

    def __init__(self, chatgraph: ChatGraph, ttl_seconds: float = 600.0,
                 max_sessions: int = 256,
                 clock: Clock = time.monotonic) -> None:
        if ttl_seconds <= 0:
            raise ValueError("ttl_seconds must be > 0")
        if max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")
        self.chatgraph = chatgraph
        self.ttl_seconds = ttl_seconds
        self.max_sessions = max_sessions
        self._clock = clock
        self._entries: OrderedDict[str, SessionEntry] = OrderedDict()
        self._lock = threading.Lock()
        self._created = 0
        self._evicted_ttl = 0
        self._evicted_lru = 0
        self._evicted_epoch = 0

    # ------------------------------------------------------------------
    def get_or_create(self, session_id: str) -> SessionEntry:
        """The entry for ``session_id``, creating (and evicting) as needed."""
        now = self._clock()
        with self._lock:
            self._evict_expired_locked(now)
            entry = self._entries.get(session_id)
            if entry is not None:
                entry.last_used = now
                entry.requests += 1
                self._entries.move_to_end(session_id)
                return entry
            while len(self._entries) >= self.max_sessions:
                self._entries.popitem(last=False)
                self._evicted_lru += 1
            entry = SessionEntry(session_id=session_id,
                                 session=ChatSession(self.chatgraph),
                                 created=now, last_used=now, requests=1)
            self._entries[session_id] = entry
            self._created += 1
            return entry

    def get(self, session_id: str) -> SessionEntry:
        """The entry for ``session_id``; raises SessionError if absent."""
        now = self._clock()
        with self._lock:
            self._evict_expired_locked(now)
            entry = self._entries.get(session_id)
            if entry is None:
                raise SessionError(f"no such session: {session_id!r}")
            entry.last_used = now
            self._entries.move_to_end(session_id)
            return entry

    def drop(self, session_id: str) -> bool:
        """Remove a session; True if it existed."""
        with self._lock:
            return self._entries.pop(session_id, None) is not None

    def pins(self) -> list[tuple[str, str | None]]:
        """(session_id, pinned graph name) pairs for every live session.

        A placement inventory for the shard tier's migration planner:
        deliberately read-only — it must not refresh TTLs or reorder
        the LRU the way :meth:`get` does.
        """
        with self._lock:
            return [(session_id,
                     entry.graph_ref[0] if entry.graph_ref else None)
                    for session_id, entry in self._entries.items()]

    def evict_compacted(self, graph_name: str,
                        live_epochs: list[int]) -> int:
        """Evict sessions pinned to pruned epochs of ``graph_name``.

        Called by the serve engine's catalog compact listener: a
        session whose ``graph_ref`` epoch no longer exists on disk
        would silently keep chatting against vanished state.
        """
        with self._lock:
            stale = [sid for sid, entry in self._entries.items()
                     if entry.graph_ref is not None
                     and entry.graph_ref[0] == graph_name
                     and entry.graph_ref[1] not in live_epochs]
            for session_id in stale:
                del self._entries[session_id]
                self._evicted_epoch += 1
            return len(stale)

    def evict_expired(self) -> int:
        """Evict every session idle for longer than the TTL."""
        with self._lock:
            return self._evict_expired_locked(self._clock())

    def _evict_expired_locked(self, now: float) -> int:
        expired = [sid for sid, entry in self._entries.items()
                   if now - entry.last_used > self.ttl_seconds]
        for session_id in expired:
            del self._entries[session_id]
            self._evicted_ttl += 1
        return len(expired)

    # ------------------------------------------------------------------
    def ids(self) -> list[str]:
        with self._lock:
            return list(self._entries)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, session_id: object) -> bool:
        with self._lock:
            return session_id in self._entries

    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {
                "active": len(self._entries),
                "created": self._created,
                "evicted_ttl": self._evicted_ttl,
                "evicted_lru": self._evicted_lru,
                "evicted_epoch": self._evicted_epoch,
                "max_sessions": self.max_sessions,
                "ttl_seconds": self.ttl_seconds,
            }
