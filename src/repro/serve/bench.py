"""Serving benchmark harness shared by the CLI and benchmarks/.

``run_serve_benchmark`` replays a fixed, deterministic workload (mixed
graph-understanding prompts over a handful of demo graphs) against a
:class:`~repro.serve.engine.ChatGraphServer` at several worker counts,
with the pipeline caches on or off, and reports throughput and latency
quantiles per configuration.

The offline backbone is pure CPU, so the harness defaults to a small
emulated backend round trip (``backend_latency_seconds``) to model the
I/O-bound regime of a real LLM deployment — that is where worker
concurrency, not raw single-thread speed, sets throughput.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from ..benchlib import drive
from ..config import ServeConfig
from ..core.chatgraph import ChatGraph
# the prompt mix and the request builder live with the traffic
# generator now (one seeded source for bench and soak workloads);
# both stay re-exported here for compatibility
from ..testing.workloads import PROMPTS
from .engine import ChatGraphServer, ServeRequest

__all__ = ["PROMPTS", "BenchResult", "build_workload", "run_one",
           "run_serve_benchmark"]


def build_workload(n_requests: int,
                   n_graphs: int = 4) -> list[ServeRequest]:
    """A deterministic list of propose requests over demo graphs.

    Delegates to :func:`repro.loadgen.bench_workload`, which produces
    the byte-identical stream this module built before the load
    generator existed.
    """
    from ..loadgen import bench_workload
    return bench_workload(n_requests, n_graphs=n_graphs)


@dataclass(frozen=True)
class BenchResult:
    """One benchmark configuration's measurements."""

    workers: int
    caches: bool
    n_requests: int
    seconds: float
    p50_seconds: float
    p95_seconds: float
    cache_hit_rate: float

    @property
    def throughput(self) -> float:
        return self.n_requests / self.seconds if self.seconds else 0.0

    def render(self) -> str:
        caches = "on " if self.caches else "off"
        return (f"workers={self.workers} caches={caches} "
                f"n={self.n_requests:>4} "
                f"throughput={self.throughput:8.2f} req/s "
                f"p50={self.p50_seconds * 1000:7.2f}ms "
                f"p95={self.p95_seconds * 1000:7.2f}ms "
                f"hit_rate={self.cache_hit_rate:.2f}")


def run_one(chatgraph: ChatGraph, workload: Sequence[ServeRequest],
            workers: int, caches: bool,
            backend_latency_seconds: float = 0.01,
            warm: bool = False) -> tuple[BenchResult, dict[str, Any]]:
    """Serve ``workload`` once; returns (result, server-stats snapshot)."""
    config = ServeConfig(workers=workers,
                         queue_depth=max(64, 2 * len(workload)),
                         enable_caches=caches,
                         backend_latency_seconds=backend_latency_seconds)
    server = ChatGraphServer(chatgraph, config)
    with server:
        if warm and caches:
            # pre-touch every distinct (text, graph) pair so the timed
            # run measures warm-cache latency
            for request in workload:
                server.request(request)
        seconds, responses = drive(server, workload, timeout=300.0)
        snapshot = server.stats()
    failed = [r for r in responses if not r.ok]
    if failed:
        raise RuntimeError(
            f"{len(failed)} benchmark requests failed; first error: "
            f"{failed[0].error}")
    service = snapshot["latency"].get("total", {})
    cache_stats = snapshot.get("caches") or {}
    retrieval = cache_stats.get("retrieval", {})
    result = BenchResult(
        workers=workers, caches=caches, n_requests=len(workload),
        seconds=seconds,
        p50_seconds=service.get("p50", 0.0),
        p95_seconds=service.get("p95", 0.0),
        cache_hit_rate=retrieval.get("hit_rate", 0.0))
    return result, snapshot


def run_serve_benchmark(chatgraph: ChatGraph, n_requests: int = 48,
                        worker_counts: Sequence[int] = (1, 4, 8),
                        backend_latency_seconds: float = 0.01
                        ) -> dict[str, Any]:
    """The full sweep: worker scaling, then caches on vs off.

    Returns ``{"scaling": [BenchResult...], "caches": [BenchResult...],
    "lines": [str...]}`` — ``lines`` is the rendered table.
    """
    workload = build_workload(n_requests)
    scaling = []
    snapshot: dict[str, Any] = {}
    for workers in worker_counts:
        result, snapshot = run_one(
            chatgraph, workload, workers=workers, caches=True,
            backend_latency_seconds=backend_latency_seconds)
        scaling.append(result)
    # cold vs warm cache at a fixed worker count, no emulated backend
    # pause, so the delta isolates the cached pipeline stages
    cache_off, __ = run_one(chatgraph, workload, workers=1, caches=False,
                            backend_latency_seconds=0.0)
    cache_warm, __ = run_one(chatgraph, workload, workers=1, caches=True,
                             backend_latency_seconds=0.0, warm=True)
    lines = ["-- worker scaling (caches on, emulated backend "
             f"latency {backend_latency_seconds * 1000:.0f}ms) --"]
    lines.extend(result.render() for result in scaling)
    base = scaling[0].throughput
    for result in scaling[1:]:
        lines.append(f"  speedup x{result.workers}: "
                     f"{result.throughput / base:.2f}x over 1 worker")
    lines.append("-- cache ablation (1 worker, no emulated latency) --")
    lines.append("cold  " + cache_off.render())
    lines.append("warm  " + cache_warm.render())
    if cache_warm.p50_seconds:
        lines.append(f"  warm-cache p50 is "
                     f"{cache_off.p50_seconds / cache_warm.p50_seconds:.2f}x"
                     f" faster than cold")
    return {"scaling": scaling, "caches": [cache_off, cache_warm],
            "lines": lines, "snapshot": snapshot}
