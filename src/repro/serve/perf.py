"""The perf-gate benchmark: scalar vs batched inference hot path.

``run_perf_benchmark`` measures the three batched layers this codebase
ships — vectorized decode kernels (:class:`~repro.llm.chain_model.
BatchScorer`), vectorized ANN search, and server micro-batching — each
against its scalar reference on the seeded E13-style workload, and
verifies the batched paths produce *identical chains* before reporting
any speedup.  The result dict is what ``python -m repro.cli bench-perf``
writes to ``BENCH_PR4.json``; CI gates on ``gate.passed``.

Layers measured:

* ``decode`` — greedy chain decoding for a fleet of generation states:
  per-state :func:`~repro.llm.decoding.greedy_decode` loop vs one
  :func:`~repro.llm.decoding.greedy_decode_batch` call per batch;
* ``ann`` — tau-MG retrieval queries with the batched frontier kernel
  on vs off (same index, same queries);
* ``composite`` — the headline decode+retrieval number the >=3x gate
  applies to: per request ``retrieve`` + ``greedy_decode`` vs one
  ``retrieve_batch`` + ``greedy_decode_batch`` per ``batch_size``
  chunk, single worker, caches off;
* ``pipeline`` — the full prompt->chain pipeline per request vs
  ``process_batch`` (**gated** at ``pipeline_min_speedup``, default
  2x: every stage now has a vectorized body, so the end-to-end number
  is an invariant worth defending, not just context);
* ``serve`` — end-to-end :class:`~repro.serve.engine.ChatGraphServer`
  wall time with micro-batching off vs on (gated at
  ``serve_min_speedup``, default 1.0x — the served path must at least
  not regress; queueing/thread noise keeps the floor conservative);
* ``stage_costs`` — per-stage wall seconds from a profiled scalar pass
  vs a profiled batch-``batch_size`` pass, ranked by scalar cost.
  This is the methodology that ordered the vectorization work: profile
  first, batch the most expensive scalar stage next.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..benchlib import (
    chunked as _chunked,
    drive as _drive,
    min_per_unit as _min_per_unit,
    quantiles_ms as _quantiles_ms,
)
from ..config import ServeConfig
from ..core.chatgraph import ChatGraph
from ..llm.chain_model import GenerationState
from ..obs.profile import StageProfiler
from ..llm.decoding import greedy_decode, greedy_decode_batch
from ..llm.intent import CATEGORY_ROUTING
from ..llm.prompts import Prompt
from ..apis.registry import Category
from .bench import build_workload
from .engine import ChatGraphServer, ServeRequest


def _states_from_results(chatgraph: ChatGraph, results) -> list[
        GenerationState]:
    """Rebuild the generation states the pipeline decoded from."""
    states = []
    for result in results:
        categories = CATEGORY_ROUTING.get(result.graph_type or "generic",
                                          tuple(Category))
        allowed = tuple(spec.name for spec in
                        chatgraph.registry.by_category(*categories))
        graph_tokens: tuple[tuple[str, int], ...] = ()
        if result.sequences is not None:
            graph_tokens = GenerationState.graph_tokens_from_counter(
                result.sequences.feature_counts)
        states.append(GenerationState(
            prompt_text=result.prompt.text,
            graph_tokens=graph_tokens,
            retrieved=result.retrieved,
            allowed=allowed))
    return states


def run_perf_benchmark(chatgraph: ChatGraph, n_requests: int = 64,
                       batch_size: int = 16, repeats: int = 3,
                       min_speedup: float = 3.0,
                       pipeline_min_speedup: float = 2.0,
                       serve_min_speedup: float = 1.0,
                       include_serve: bool = True) -> dict[str, Any]:
    """Measure scalar vs batched hot paths; returns the report dict.

    The gate (``gate.passed``) requires the decode+retrieval composite
    speedup to reach ``min_speedup``, the *end-to-end pipeline* speedup
    to reach ``pipeline_min_speedup``, the served path (when measured)
    to reach ``serve_min_speedup``, AND every batched chain to match
    its scalar twin exactly.  Each unit of work (request or chunk) is
    timed over ``repeats`` passes and its fastest time kept — see
    :func:`_min_per_unit` for why that is the stable statistic to
    gate CI on.
    """
    workload = build_workload(n_requests)
    prompts = [Prompt(text=request.text, graph=request.graph,
                      attachments={})
               for request in workload]
    batches = _chunked(prompts, batch_size)
    pipeline = chatgraph.pipeline
    index = chatgraph.retriever.index
    model = chatgraph.require_model()

    # make sure no serve-layer caches leak into the measurement
    chatgraph.enable_caches(None)

    # ------------------------------------------------------------------
    # correctness first: batched execution must yield identical chains
    # ------------------------------------------------------------------
    index.use_batched = False
    scalar_results = [pipeline.process(prompt) for prompt in prompts]
    index.use_batched = True
    batched_results = [result
                       for batch in batches
                       for result in pipeline.process_batch(batch)]
    chains_equal = all(
        a.chain.render() == b.chain.render()
        and a.retrieved == b.retrieved
        for a, b in zip(scalar_results, batched_results))

    # ------------------------------------------------------------------
    # decode kernel: greedy fleet decoding
    # ------------------------------------------------------------------
    states = _states_from_results(chatgraph, scalar_results)
    max_length = chatgraph.config.llm.max_chain_length
    state_batches = _chunked(states, batch_size)

    decode_scalar_lat, scalar_chains = _min_per_unit(
        repeats,
        [lambda s=state: greedy_decode(model, s, max_length)
         for state in states])
    decode_batched_lat, batched_groups = _min_per_unit(
        repeats,
        [lambda g=group: greedy_decode_batch(model, g, max_length)
         for group in state_batches])
    batched_chains = [c for group in batched_groups for c in group]
    decode_scalar_s = sum(decode_scalar_lat)
    decode_batched_s = sum(decode_batched_lat)
    chains_equal = chains_equal and scalar_chains == batched_chains
    n_decodes = len(states)

    # ------------------------------------------------------------------
    # ANN kernel: tau-MG search, batched frontier on vs off
    # ------------------------------------------------------------------
    queries = [chatgraph.retriever._embed_query(p.text) for p in prompts]
    k = chatgraph.config.retrieval.top_k_apis

    index.use_batched = False
    ann_scalar_lat, scalar_hits = _min_per_unit(
        repeats, [lambda q=q: index.search(q, k=k) for q in queries])
    ann_scalar_s = sum(ann_scalar_lat)

    index.use_batched = True
    query_matrix = np.stack(queries)
    ann_batched_lat, batched_out = _min_per_unit(
        repeats, [lambda: index.search_batch(query_matrix, k=k)])
    ann_batched_s = sum(ann_batched_lat)
    batched_hits = batched_out[0]
    chains_equal = chains_equal and scalar_hits == batched_hits

    # ------------------------------------------------------------------
    # decode+retrieval composite (the gated number): the two batched
    # stages exactly as the micro-batched server drives them
    # ------------------------------------------------------------------
    retriever = chatgraph.retriever
    categories_per = [
        CATEGORY_ROUTING.get(result.graph_type or "generic",
                             tuple(Category))
        for result in scalar_results]
    texts = [prompt.text for prompt in prompts]

    def _scalar_unit(i: int, text: str):
        retriever.retrieve(text, k=k, categories=categories_per[i])
        return greedy_decode(model, states[i], max_length)

    # chunk assembly happens at dispatch time in the server, so it
    # stays outside the timed region here
    chunks = [
        (texts[i:i + batch_size], categories_per[i:i + batch_size],
         states[i:i + batch_size])
        for i in range(0, len(texts), batch_size)]

    def _batched_unit(chunk_texts, chunk_cats, chunk_states):
        retriever.retrieve_batch(chunk_texts, k=k,
                                 categories_per=chunk_cats)
        return greedy_decode_batch(model, chunk_states, max_length)

    index.use_batched = False
    comp_scalar_lat, comp_scalar_chains = _min_per_unit(
        repeats,
        [lambda i=i, t=t: _scalar_unit(i, t)
         for i, t in enumerate(texts)])
    comp_scalar_s = sum(comp_scalar_lat)

    index.use_batched = True
    comp_chunk_lat, comp_groups = _min_per_unit(
        repeats, [lambda c=c: _batched_unit(*c) for c in chunks])
    comp_batched_s = sum(comp_chunk_lat)
    comp_batched_chains = [c for group in comp_groups for c in group]
    # every request in a chunk completes when the chunk does
    comp_batched_lat = [
        seconds
        for seconds, (chunk_texts, __, __x) in zip(comp_chunk_lat,
                                                   chunks)
        for __y in chunk_texts]
    chains_equal = (chains_equal
                    and comp_scalar_chains == comp_batched_chains)
    n_composite = len(texts)

    # ------------------------------------------------------------------
    # full pipeline (context, not gated): prompt->chain end to end
    # ------------------------------------------------------------------
    index.use_batched = False
    scalar_latencies, __ = _min_per_unit(
        repeats, [lambda p=p: pipeline.process(p) for p in prompts])
    pipe_scalar_s = sum(scalar_latencies)

    index.use_batched = True
    pipe_batch_lat, __ = _min_per_unit(
        repeats, [lambda b=b: pipeline.process_batch(b) for b in batches])
    pipe_batched_s = sum(pipe_batch_lat)
    batched_latencies = [
        seconds
        for seconds, batch in zip(pipe_batch_lat, batches)
        for __x in batch]
    n_pipeline = len(prompts)

    # ------------------------------------------------------------------
    # stage-cost ranking: profile one scalar pass and one batched pass
    # over the same workload; ranking batch-{batch_size} stage cost is
    # how the vectorization order was (and future work should be)
    # chosen — batch the most expensive remaining scalar stage next
    # ------------------------------------------------------------------
    profiler = StageProfiler()
    pipeline.profiler = profiler
    try:
        index.use_batched = False
        for prompt in prompts:
            pipeline.process(prompt)
        scalar_profile = profiler.report()
        profiler.reset()
        index.use_batched = True
        for batch in batches:
            pipeline.process_batch(batch)
        batched_profile = profiler.report()
    finally:
        pipeline.profiler = None
    stage_rows = []
    for name in pipeline.graph.observed_stage_names:
        scalar_wall = scalar_profile.get(name, {}).get("wall_seconds",
                                                       0.0)
        batched_wall = batched_profile.get(name, {}).get("wall_seconds",
                                                         0.0)
        stage_rows.append({
            "stage": name,
            "scalar_wall_seconds": scalar_wall,
            "batched_wall_seconds": batched_wall,
            "speedup": (scalar_wall / batched_wall
                        if batched_wall > 0 else 0.0),
        })
    stage_rows.sort(key=lambda row: -row["scalar_wall_seconds"])

    report: dict[str, Any] = {
        "benchmark": "end-to-end batched pipeline (PR7)",
        "config": {
            "n_requests": n_requests,
            "batch_size": batch_size,
            "repeats": repeats,
            "min_speedup": min_speedup,
            "pipeline_min_speedup": pipeline_min_speedup,
            "serve_min_speedup": serve_min_speedup,
        },
        "decode": {
            "scalar_seconds": decode_scalar_s,
            "batched_seconds": decode_batched_s,
            "scalar_chains_per_s": n_decodes / decode_scalar_s,
            "batched_chains_per_s": n_decodes / decode_batched_s,
            "speedup": decode_scalar_s / decode_batched_s,
        },
        "ann": {
            "scalar_seconds": ann_scalar_s,
            "batched_seconds": ann_batched_s,
            "scalar_qps": len(queries) / ann_scalar_s,
            "batched_qps": len(queries) / ann_batched_s,
            "speedup": ann_scalar_s / ann_batched_s,
        },
        "composite": {
            "scalar": {
                "seconds": comp_scalar_s,
                "throughput_rps": n_composite / comp_scalar_s,
                **_quantiles_ms(comp_scalar_lat),
            },
            "batched": {
                "seconds": comp_batched_s,
                "throughput_rps": n_composite / comp_batched_s,
                **_quantiles_ms(comp_batched_lat),
            },
            "speedup": comp_scalar_s / comp_batched_s,
        },
        "pipeline": {
            "scalar": {
                "seconds": pipe_scalar_s,
                "throughput_rps": n_pipeline / pipe_scalar_s,
                **_quantiles_ms(scalar_latencies),
            },
            "batched": {
                "seconds": pipe_batched_s,
                "throughput_rps": n_pipeline / pipe_batched_s,
                **_quantiles_ms(batched_latencies),
            },
            "speedup": pipe_scalar_s / pipe_batched_s,
        },
        "stage_costs": {
            "method": ("per-stage wall seconds from a StageProfiler-"
                       "instrumented scalar pass vs one batched pass "
                       "over the same workload, ranked by scalar "
                       "cost; repair is unobserved by design and "
                       "absent"),
            "batch_size": batch_size,
            "stages": stage_rows,
        },
        "chains_equal": chains_equal,
    }

    if include_serve:
        report["serve"] = _serve_comparison(chatgraph, workload,
                                            batch_size)
        chatgraph.enable_caches(None)

    speedup = report["composite"]["speedup"]
    pipeline_speedup = report["pipeline"]["speedup"]
    serve_speedup = (report["serve"]["speedup"]
                     if include_serve else None)
    serve_ok = (serve_speedup is None
                or serve_speedup >= serve_min_speedup)
    report["gate"] = {
        "min_speedup": min_speedup,
        "measured_speedup": speedup,
        "pipeline_min_speedup": pipeline_min_speedup,
        "pipeline_speedup": pipeline_speedup,
        "serve_min_speedup": serve_min_speedup,
        "serve_speedup": serve_speedup,
        "chains_equal": chains_equal,
        "passed": bool(chains_equal and speedup >= min_speedup
                       and pipeline_speedup >= pipeline_min_speedup
                       and serve_ok),
    }
    return report


def _serve_comparison(chatgraph: ChatGraph,
                      workload: list[ServeRequest],
                      batch_size: int) -> dict[str, Any]:
    """End-to-end server wall time, micro-batching off vs on."""

    def run(config: ServeConfig) -> dict[str, float]:
        server = ChatGraphServer(chatgraph, config)
        with server:
            seconds, responses = _drive(server, workload, timeout=600.0)
        failed = [r for r in responses if not r.ok]
        if failed:
            raise RuntimeError(f"{len(failed)} perf requests failed; "
                               f"first: {failed[0].error}")
        totals = [r.queued_seconds + r.service_seconds for r in responses]
        return {
            "seconds": seconds,
            "throughput_rps": len(workload) / seconds,
            **_quantiles_ms(totals),
        }

    scalar = run(ServeConfig(workers=1, enable_caches=False,
                             queue_depth=max(64, 2 * len(workload))))
    batched = run(ServeConfig(workers=1, enable_caches=False,
                              queue_depth=max(64, 2 * len(workload)),
                              microbatch_size=batch_size,
                              microbatch_deadline_seconds=0.02))
    return {
        "scalar": scalar,
        "microbatched": batched,
        "speedup": scalar["seconds"] / batched["seconds"],
    }
