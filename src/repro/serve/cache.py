"""Thread-safe content-addressed LRU caches for the service runtime.

Three hot pipeline stages repeat work across requests:

* prompt-text embedding (the retrieval query vector),
* API retrieval (text + routing -> ranked names),
* graph sequentialization (the length-constrained path cover).

Each gets an :class:`LRUCache` keyed on content hashes — the same text
or the same graph (by :func:`repro.graphs.io.fingerprint`) hits the
cache regardless of which session or worker asks.  The ``retrieval``
cache backs the stage graph's
:class:`~repro.core.stages.CacheMiddleware` (stage-level memoization on
both the scalar and batched paths); the ``embeddings`` and
``sequences`` caches hook the retriever's query embedder and the
sequentializer directly.  Cached values are treated as immutable by
every consumer; hit/miss/eviction counters feed
``ChatGraphServer.stats()``.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Hashable


def text_key(text: str) -> str:
    """Stable digest of a prompt text (cache key component)."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class CacheStats:
    """Point-in-time counters of one :class:`LRUCache`."""

    hits: int
    misses: int
    evictions: int
    size: int
    maxsize: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def to_dict(self) -> dict[str, Any]:
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions, "size": self.size,
                "maxsize": self.maxsize,
                "hit_rate": round(self.hit_rate, 4)}


class LRUCache:
    """Bounded least-recently-used cache safe for concurrent access.

    ``get_or_compute`` runs the compute function *outside* the lock, so
    a slow miss never blocks other workers; under a race the value is
    computed twice (results are deterministic, so either copy is valid)
    and the first writer wins.
    """

    def __init__(self, maxsize: int) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = maxsize
        self._data: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    _MISS = object()

    def get(self, key: Hashable, default: Any = None) -> Any:
        with self._lock:
            value = self._data.get(key, self._MISS)
            if value is self._MISS:
                self._misses += 1
                return default
            self._data.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
                self._data[key] = value
                return
            self._data[key] = value
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self._evictions += 1

    def get_or_compute(self, key: Hashable,
                       compute: Callable[[], Any]) -> Any:
        value = self.get(key, self._MISS)
        if value is not self._MISS:
            return value
        value = compute()
        with self._lock:
            if key not in self._data:
                self._data[key] = value
                while len(self._data) > self.maxsize:
                    self._data.popitem(last=False)
                    self._evictions += 1
            else:
                value = self._data[key]
                self._data.move_to_end(key)
        return value

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._data

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(hits=self._hits, misses=self._misses,
                              evictions=self._evictions,
                              size=len(self._data), maxsize=self.maxsize)


@dataclass
class PipelineCaches:
    """The cache bundle one server (or any caller) plugs into a pipeline.

    Attach with :meth:`repro.core.chatgraph.ChatGraph.enable_caches`;
    detach by enabling ``None``.
    """

    embeddings: LRUCache
    retrieval: LRUCache
    sequences: LRUCache

    @classmethod
    def with_sizes(cls, embedding: int = 2048, retrieval: int = 1024,
                   sequence: int = 256) -> "PipelineCaches":
        return cls(embeddings=LRUCache(embedding),
                   retrieval=LRUCache(retrieval),
                   sequences=LRUCache(sequence))

    def stats(self) -> dict[str, dict[str, Any]]:
        return {"embeddings": self.embeddings.stats().to_dict(),
                "retrieval": self.retrieval.stats().to_dict(),
                "sequences": self.sequences.stats().to_dict()}

    def clear(self) -> None:
        self.embeddings.clear()
        self.retrieval.clear()
        self.sequences.clear()
