"""Serving metrics: counters and fixed-bucket latency histograms.

The runtime records one histogram per stage — ``queued`` (admission to
dispatch), the pipeline stages (``retrieval``, ``sequentialize``,
``generate``, ...), ``execute`` and end-to-end ``total`` — plus plain
counters (admitted/rejected/failed, fallbacks).  Everything is cheap
enough to stay on by default; ``ServerStats.snapshot()`` renders a
plain-dict view for logging, tests and the ``serve-bench`` CLI.
"""

from __future__ import annotations

import bisect
import threading
from collections import Counter
from typing import Any

#: Geometric bucket upper bounds (seconds): 50us .. ~52s, then +inf.
_BUCKET_BOUNDS: tuple[float, ...] = tuple(
    5e-05 * (2.0 ** i) for i in range(21))


class LatencyHistogram:
    """Fixed-bucket histogram with quantile estimates.

    Quantiles are read from bucket upper bounds, so they are estimates
    with bounded relative error (each bucket spans a factor of two);
    ``min``/``max``/``mean`` are exact.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts = [0] * (len(_BUCKET_BOUNDS) + 1)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0

    def observe(self, seconds: float) -> None:
        index = bisect.bisect_left(_BUCKET_BOUNDS, seconds)
        with self._lock:
            self._counts[index] += 1
            self.count += 1
            self.total += seconds
            if seconds < self.min:
                self.min = seconds
            if seconds > self.max:
                self.max = seconds

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile in seconds (0 when empty)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        with self._lock:
            if self.count == 0:
                return 0.0
            target = q * self.count
            cumulative = 0
            for index, bucket_count in enumerate(self._counts):
                cumulative += bucket_count
                if cumulative >= target and bucket_count:
                    if index >= len(_BUCKET_BOUNDS):
                        return self.max
                    return min(_BUCKET_BOUNDS[index], self.max)
            return self.max

    @property
    def mean(self) -> float:
        with self._lock:
            return self.total / self.count if self.count else 0.0

    def summary(self) -> dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "min": 0.0 if self.count == 0 else self.min,
            "max": self.max,
        }


#: Executor event kinds mirrored 1:1 into server counters (the
#: robustness layer's recovery signals; see repro.apis.executor).
ROBUSTNESS_EVENT_COUNTERS: dict[str, str] = {
    "step_retried": "step_retried",
    "step_timed_out": "step_timed_out",
    "breaker_opened": "breaker_opened",
    "step_failed": "step_failed",
}


class ServerStats:
    """Counters + per-stage histograms with an atomic-enough snapshot."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Counter = Counter()
        self._histograms: dict[str, LatencyHistogram] = {}

    def on_execution_event(self, event: Any) -> None:
        """Executor listener: count retry/timeout/breaker events.

        Attach with ``chatgraph.executor.add_listener(
        stats.on_execution_event)`` — every chain the server runs then
        surfaces its recovery activity in :meth:`snapshot`.
        """
        name = ROBUSTNESS_EVENT_COUNTERS.get(getattr(event, "kind", ""))
        if name is not None:
            self.incr(name)

    def incr(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] += amount

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters[name]

    def observe(self, stage: str, seconds: float) -> None:
        with self._lock:
            histogram = self._histograms.get(stage)
            if histogram is None:
                histogram = self._histograms[stage] = LatencyHistogram()
        histogram.observe(seconds)

    def histogram(self, stage: str) -> LatencyHistogram | None:
        with self._lock:
            return self._histograms.get(stage)

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            counters = dict(self._counters)
            histograms = dict(self._histograms)
        return {
            "counters": counters,
            "latency": {stage: hist.summary()
                        for stage, hist in sorted(histograms.items())},
        }
