"""Serving metrics: counters and fixed-bucket latency histograms.

The runtime records one histogram per stage — ``queued`` (admission to
dispatch), one per pipeline stage, ``execute`` and end-to-end
``total`` — plus plain counters (admitted/rejected/failed, fallbacks).
The pipeline-stage histogram names are *derived* from the stage graph
(each :class:`~repro.core.pipeline.PipelineResult` carries timings
keyed by the graph's observed stage names; the server also snapshots
``pipeline.graph.observed_stage_names``), so adding a stage to the
graph grows the histograms without touching this module.  Everything is
cheap enough to stay on by default; ``ServerStats.snapshot()`` renders
a plain-dict view for logging, tests and the ``serve-bench`` CLI.

The histogram primitive now lives in :mod:`repro.obs.metrics` (the
observability layer owns it); ``LatencyHistogram`` stays as an alias
so existing imports keep working.
"""

from __future__ import annotations

import threading
from collections import Counter
from typing import Any

from ..obs.metrics import Histogram as LatencyHistogram


#: Executor event kinds mirrored 1:1 into server counters (the
#: robustness layer's recovery signals; see repro.apis.executor).
ROBUSTNESS_EVENT_COUNTERS: dict[str, str] = {
    "step_retried": "step_retried",
    "step_timed_out": "step_timed_out",
    "breaker_opened": "breaker_opened",
    "step_failed": "step_failed",
}


class ServerStats:
    """Counters + per-stage histograms with an atomic-enough snapshot."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Counter = Counter()
        self._histograms: dict[str, LatencyHistogram] = {}

    def on_execution_event(self, event: Any) -> None:
        """Executor listener: count retry/timeout/breaker events.

        Attach with ``chatgraph.executor.add_listener(
        stats.on_execution_event)`` — every chain the server runs then
        surfaces its recovery activity in :meth:`snapshot`.
        """
        name = ROBUSTNESS_EVENT_COUNTERS.get(getattr(event, "kind", ""))
        if name is not None:
            self.incr(name)

    def incr(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] += amount

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters[name]

    def observe(self, stage: str, seconds: float) -> None:
        # fast path without the stats lock: dict reads are atomic under
        # the GIL and a histogram, once created, is never replaced, so
        # the common case contends only on that histogram's own lock —
        # the stats lock is taken solely to create a missing histogram
        histogram = self._histograms.get(stage)
        if histogram is None:
            with self._lock:
                histogram = self._histograms.get(stage)
                if histogram is None:
                    histogram = self._histograms[stage] = \
                        LatencyHistogram()
        histogram.observe(seconds)

    def histogram(self, stage: str) -> LatencyHistogram | None:
        return self._histograms.get(stage)

    def snapshot(self) -> dict[str, Any]:
        # copy the tables under the lock, render outside it: a summary
        # is each histogram's own single-lock snapshot (see
        # obs.metrics.Histogram.summary), so taking a server snapshot
        # never blocks workers mid-observe on the stats lock
        with self._lock:
            counters = dict(self._counters)
            histograms = dict(self._histograms)
        return {
            "counters": counters,
            "latency": {stage: hist.summary()
                        for stage, hist in sorted(histograms.items())},
        }
