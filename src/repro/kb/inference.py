"""Knowledge inference: detect incorrect edges, predict missing edges.

The cleaning scenario (paper Fig. 6) first invokes knowledge inference
APIs to flag wrong facts and propose absent ones, then asks the user to
confirm before graph-edit APIs apply the changes.  Detection combines
mined type signatures (a fact violating its relation's high-confidence
signature is suspect) with a duplication check; prediction fires mined
2-hop path rules.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from .rules import PathRule, RuleMiner, TypeSignature
from .triples import Triple, TripleStore


@dataclass(frozen=True)
class EdgeFinding:
    """One suspected-incorrect or predicted-missing fact."""

    triple: Triple
    #: "incorrect" or "missing".
    kind: str
    #: In [0, 1]; how sure the inferencer is.
    confidence: float
    reason: str

    def render(self) -> str:
        return (f"[{self.kind} {self.confidence:.2f}] "
                f"{self.triple.render()} — {self.reason}")


class KnowledgeInferencer:
    """Mines rules once, then answers detection/prediction queries.

    Example::

        inferencer = KnowledgeInferencer.fit(store)
        wrong = inferencer.detect_incorrect_edges()
        absent = inferencer.predict_missing_edges()
    """

    def __init__(self, store: TripleStore,
                 signatures: dict[str, TypeSignature],
                 rules: list[PathRule]) -> None:
        self.store = store
        self.signatures = signatures
        self.rules = rules

    @classmethod
    def fit(cls, store: TripleStore,
            miner: RuleMiner | None = None) -> "KnowledgeInferencer":
        miner = miner or RuleMiner()
        return cls(store=store,
                   signatures=miner.mine_type_signatures(store),
                   rules=miner.mine_path_rules(store))

    # ------------------------------------------------------------------
    def detect_incorrect_edges(self,
                               min_confidence: float = 0.5
                               ) -> list[EdgeFinding]:
        """Facts violating a learned high-confidence type signature."""
        findings: list[EdgeFinding] = []
        for triple in self.store:
            signature = self.signatures.get(triple.relation)
            if signature is None:
                continue
            if signature.matches(self.store, triple):
                continue
            head_type = self.store.entity_type(triple.head) or "?"
            tail_type = self.store.entity_type(triple.tail) or "?"
            confidence = signature.confidence
            if confidence < min_confidence:
                continue
            findings.append(EdgeFinding(
                triple=triple,
                kind="incorrect",
                confidence=confidence,
                reason=(f"{triple.relation} links {head_type}->{tail_type} "
                        f"but {signature.confidence:.0%} of facts link "
                        f"{signature.head_type}->{signature.tail_type}"),
            ))
        findings.sort(key=lambda f: (-f.confidence, f.triple))
        return findings

    # ------------------------------------------------------------------
    def infer_entity_types(self) -> dict[str, tuple[str, float]]:
        """Type untyped entities from the signatures of their relations.

        Each fact votes: if ``works_at`` has signature person ->
        organization (confidence c), its head votes "person" with weight
        c and its tail votes "organization".  Returns
        ``entity -> (type, normalized vote share)`` for entities without
        a declared type that received any votes.
        """
        votes: dict[str, dict[str, float]] = {}
        for triple in self.store:
            signature = self.signatures.get(triple.relation)
            if signature is None:
                continue
            for entity, etype in ((triple.head, signature.head_type),
                                  (triple.tail, signature.tail_type)):
                if self.store.entity_type(entity) is not None:
                    continue
                votes.setdefault(entity, {})
                votes[entity][etype] = votes[entity].get(etype, 0.0) \
                    + signature.confidence
        inferred: dict[str, tuple[str, float]] = {}
        for entity, ballot in votes.items():
            total = sum(ballot.values())
            best_type, weight = max(ballot.items(),
                                    key=lambda kv: (kv[1], kv[0]))
            inferred[entity] = (best_type, weight / total)
        return inferred

    # ------------------------------------------------------------------
    def predict_missing_edges(self, min_confidence: float = 0.5,
                              limit: int | None = None) -> list[EdgeFinding]:
        """Head triples of firing path rules that are absent from the store.

        A prediction must also satisfy the head relation's type signature
        (when one was mined), which suppresses rule-noise predictions.
        """
        out_edges: dict[str, list[tuple[str, str]]] = defaultdict(list)
        for triple in self.store:
            out_edges[triple.head].append((triple.relation, triple.tail))

        best: dict[Triple, tuple[float, PathRule]] = {}
        for rule in self.rules:
            if rule.confidence < min_confidence:
                continue
            for x, firsts in out_edges.items():
                for r1, z in firsts:
                    if r1 != rule.body_first:
                        continue
                    for r2, y in out_edges.get(z, ()):
                        if r2 != rule.body_second or x == y:
                            continue
                        candidate = Triple(x, rule.head_relation, y)
                        if candidate in self.store:
                            continue
                        signature = self.signatures.get(rule.head_relation)
                        if signature is not None and not signature.matches(
                                self.store, candidate):
                            continue
                        current = best.get(candidate)
                        if current is None or rule.confidence > current[0]:
                            best[candidate] = (rule.confidence, rule)

        findings = [EdgeFinding(
            triple=triple, kind="missing", confidence=confidence,
            reason=f"implied by rule {rule.render()}")
            for triple, (confidence, rule) in best.items()]
        findings.sort(key=lambda f: (-f.confidence, f.triple))
        if limit is not None:
            findings = findings[:limit]
        return findings
