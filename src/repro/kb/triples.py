"""Triple store: the knowledge-graph representation used for cleaning."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from ..errors import KnowledgeBaseError
from ..graphs.graph import DiGraph


@dataclass(frozen=True, order=True)
class Triple:
    """One fact: ``relation(head, tail)``."""

    head: str
    relation: str
    tail: str

    def render(self) -> str:
        return f"({self.head}) -[{self.relation}]-> ({self.tail})"


class TripleStore:
    """A set of triples with entity types and relation indexes.

    Example::

        store = TripleStore()
        store.set_entity_type("alice", "person")
        store.add(Triple("alice", "works_at", "acme"))
    """

    def __init__(self) -> None:
        self._triples: set[Triple] = set()
        self._by_relation: dict[str, set[Triple]] = {}
        self._by_head: dict[str, set[Triple]] = {}
        self._by_tail: dict[str, set[Triple]] = {}
        self._entity_types: dict[str, str] = {}

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add(self, triple: Triple) -> None:
        if triple in self._triples:
            return
        self._triples.add(triple)
        self._by_relation.setdefault(triple.relation, set()).add(triple)
        self._by_head.setdefault(triple.head, set()).add(triple)
        self._by_tail.setdefault(triple.tail, set()).add(triple)

    def remove(self, triple: Triple) -> None:
        if triple not in self._triples:
            raise KnowledgeBaseError(f"triple not in store: {triple.render()}")
        self._triples.discard(triple)
        self._by_relation[triple.relation].discard(triple)
        self._by_head[triple.head].discard(triple)
        self._by_tail[triple.tail].discard(triple)

    def set_entity_type(self, entity: str, entity_type: str) -> None:
        self._entity_types[entity] = entity_type

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __contains__(self, triple: object) -> bool:
        return triple in self._triples

    def __len__(self) -> int:
        return len(self._triples)

    def __iter__(self) -> Iterator[Triple]:
        return iter(sorted(self._triples))

    def relations(self) -> list[str]:
        return sorted(r for r, ts in self._by_relation.items() if ts)

    def entities(self) -> list[str]:
        seen = set(self._by_head) | set(self._by_tail) \
            | set(self._entity_types)
        return sorted(e for e in seen
                      if self._by_head.get(e) or self._by_tail.get(e)
                      or e in self._entity_types)

    def entity_type(self, entity: str) -> str | None:
        return self._entity_types.get(entity)

    def by_relation(self, relation: str) -> list[Triple]:
        return sorted(self._by_relation.get(relation, ()))

    def outgoing(self, entity: str) -> list[Triple]:
        return sorted(self._by_head.get(entity, ()))

    def incoming(self, entity: str) -> list[Triple]:
        return sorted(self._by_tail.get(entity, ()))

    def copy(self) -> "TripleStore":
        clone = TripleStore()
        for triple in self._triples:
            clone.add(triple)
        clone._entity_types.update(self._entity_types)
        return clone

    # ------------------------------------------------------------------
    # graph conversion
    # ------------------------------------------------------------------
    @classmethod
    def from_graph(cls, graph: DiGraph) -> "TripleStore":
        """Build a store from a digraph whose arcs carry ``relation``.

        Node ``entity_type`` attributes become entity types.
        """
        if not isinstance(graph, DiGraph):
            raise KnowledgeBaseError("knowledge graphs must be directed")
        store = cls()
        for node in graph.nodes():
            etype = graph.get_node_attr(node, "entity_type")
            if etype is not None:
                store.set_entity_type(str(node), str(etype))
        for u, v in graph.edges():
            relation = graph.get_edge_attr(u, v, "relation", "related_to")
            store.add(Triple(str(u), str(relation), str(v)))
        return store

    def to_graph(self) -> DiGraph:
        """Digraph view: arcs labeled ``relation``, nodes ``entity_type``."""
        graph = DiGraph(name="knowledge_graph")
        for entity in self.entities():
            attrs = {"kind": "entity"}
            etype = self.entity_type(entity)
            if etype is not None:
                attrs["entity_type"] = etype
            graph.add_node(entity, **attrs)
        for triple in self:
            graph.add_edge(triple.head, triple.tail,
                           relation=triple.relation)
        return graph

    @classmethod
    def from_triples(cls, triples: Iterable[tuple[str, str, str]],
                     entity_types: dict[str, str] | None = None
                     ) -> "TripleStore":
        store = cls()
        for head, relation, tail in triples:
            store.add(Triple(head, relation, tail))
        for entity, etype in (entity_types or {}).items():
            store.set_entity_type(entity, etype)
        return store
