"""Cleaning plans: confirm-then-edit, plus noise injection for evaluation."""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable

from ..errors import KnowledgeBaseError
from .inference import EdgeFinding
from .triples import Triple, TripleStore


@dataclass
class CleaningPlan:
    """Proposed edits to a knowledge graph, pending user confirmation."""

    removals: list[EdgeFinding] = field(default_factory=list)
    additions: list[EdgeFinding] = field(default_factory=list)

    @property
    def n_edits(self) -> int:
        return len(self.removals) + len(self.additions)

    def render(self) -> str:
        lines = [f"cleaning plan: {len(self.removals)} removals, "
                 f"{len(self.additions)} additions"]
        lines.extend("  - remove " + f.render() for f in self.removals)
        lines.extend("  - add    " + f.render() for f in self.additions)
        return "\n".join(lines)


def apply_cleaning_plan(store: TripleStore, plan: CleaningPlan,
                        confirm: Callable[[str, EdgeFinding], bool]
                        | None = None) -> TripleStore:
    """Apply ``plan`` to a copy of ``store``.

    ``confirm(question, finding)`` is asked per edit (paper Fig. 6 shows
    this confirmation loop); ``None`` approves everything.  Returns the
    cleaned copy; the input store is never mutated.
    """
    cleaned = store.copy()
    for finding in plan.removals:
        if finding.kind != "incorrect":
            raise KnowledgeBaseError(
                f"removal plan holds non-incorrect finding {finding.kind!r}")
        if confirm is not None and not confirm(
                f"Remove suspected-wrong fact {finding.triple.render()}?",
                finding):
            continue
        if finding.triple in cleaned:
            cleaned.remove(finding.triple)
    for finding in plan.additions:
        if finding.kind != "missing":
            raise KnowledgeBaseError(
                f"addition plan holds non-missing finding {finding.kind!r}")
        if confirm is not None and not confirm(
                f"Add inferred fact {finding.triple.render()}?", finding):
            continue
        cleaned.add(finding.triple)
    return cleaned


def corrupt_store(store: TripleStore, corruption_rate: float = 0.05,
                  removal_rate: float = 0.05,
                  seed: int = 0) -> tuple[TripleStore, set[Triple],
                                          set[Triple]]:
    """Inject noise for cleaning evaluation.

    Returns ``(noisy_store, injected_wrong, removed_true)``:

    * a fraction ``corruption_rate`` of facts get their tail replaced by
      a random entity of a *different* type (type-violating noise);
    * a fraction ``removal_rate`` of facts are deleted (recoverable by
      rule-based prediction when redundancy exists).
    """
    if not 0.0 <= corruption_rate <= 1.0 or not 0.0 <= removal_rate <= 1.0:
        raise KnowledgeBaseError("rates must be in [0, 1]")
    rng = random.Random(seed)
    noisy = store.copy()
    triples = sorted(store)
    entities = store.entities()
    rng.shuffle(triples)

    n_corrupt = int(len(triples) * corruption_rate)
    n_remove = int(len(triples) * removal_rate)
    injected: set[Triple] = set()
    removed: set[Triple] = set()

    # (head, tail) pairs already present; the property-graph view holds
    # one relation per node pair, so injected noise must not collide
    used_pairs = {(t.head, t.tail) for t in store}

    for triple in triples[:n_corrupt]:
        tail_type = store.entity_type(triple.tail)
        others = [e for e in entities
                  if store.entity_type(e) not in (None, tail_type)
                  and e != triple.head
                  and (triple.head, e) not in used_pairs]
        if not others:
            continue
        bad = Triple(triple.head, triple.relation, rng.choice(others))
        if bad in noisy:
            continue
        used_pairs.add((bad.head, bad.tail))
        noisy.remove(triple)
        noisy.add(bad)
        injected.add(bad)
        removed.add(triple)

    for triple in triples[n_corrupt:n_corrupt + n_remove]:
        if triple in noisy:
            noisy.remove(triple)
            removed.add(triple)
    return noisy, injected, removed
