"""Knowledge-graph substrate for the cleaning scenario (paper Fig. 6).

Triples + typed entities (:mod:`triples`), rule mining over them
(:mod:`rules`: relation type signatures and 2-hop path rules), error
detection / missing-link prediction (:mod:`inference`), and the
confirm-then-edit cleaning plan (:mod:`cleaning`).
"""

from .triples import Triple, TripleStore
from .rules import PathRule, RuleMiner, TypeSignature
from .inference import EdgeFinding, KnowledgeInferencer
from .cleaning import CleaningPlan, apply_cleaning_plan, corrupt_store

__all__ = [
    "Triple",
    "TripleStore",
    "PathRule",
    "RuleMiner",
    "TypeSignature",
    "EdgeFinding",
    "KnowledgeInferencer",
    "CleaningPlan",
    "apply_cleaning_plan",
    "corrupt_store",
]
