"""Rule mining over a triple store (AMIE-lite).

Two rule families feed the cleaning scenario:

* :class:`TypeSignature` — per-relation dominant (head type, tail type)
  pairs with confidence; facts violating a high-confidence signature are
  suspect.
* :class:`PathRule` — 2-hop implications ``r(x, y) <= r1(x, z), r2(z, y)``
  with support and standard confidence; firing rules whose head triple is
  absent predicts missing edges.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass

from .triples import Triple, TripleStore


@dataclass(frozen=True)
class TypeSignature:
    """Dominant type signature of one relation."""

    relation: str
    head_type: str
    tail_type: str
    #: Fraction of the relation's facts matching the signature.
    confidence: float
    #: Number of facts the signature was learned from.
    support: int

    def matches(self, store: TripleStore, triple: Triple) -> bool:
        return (store.entity_type(triple.head) == self.head_type
                and store.entity_type(triple.tail) == self.tail_type)


@dataclass(frozen=True)
class PathRule:
    """``head_relation(x, y) <= r1(x, z), r2(z, y)``."""

    head_relation: str
    body_first: str
    body_second: str
    #: Number of (x, y) pairs where body and head both hold.
    support: int
    #: support / number of pairs where the body holds.
    confidence: float

    def render(self) -> str:
        return (f"{self.head_relation}(x, y) <= "
                f"{self.body_first}(x, z), {self.body_second}(z, y) "
                f"[supp={self.support}, conf={self.confidence:.2f}]")


class RuleMiner:
    """Mine type signatures and path rules from a triple store."""

    def __init__(self, min_signature_confidence: float = 0.7,
                 min_rule_support: int = 2,
                 min_rule_confidence: float = 0.5) -> None:
        self.min_signature_confidence = min_signature_confidence
        self.min_rule_support = min_rule_support
        self.min_rule_confidence = min_rule_confidence

    # ------------------------------------------------------------------
    def mine_type_signatures(self,
                             store: TripleStore) -> dict[str, TypeSignature]:
        """Dominant (head type, tail type) per relation, when confident."""
        signatures: dict[str, TypeSignature] = {}
        for relation in store.relations():
            facts = store.by_relation(relation)
            typed = [(store.entity_type(t.head), store.entity_type(t.tail))
                     for t in facts]
            typed = [(h, t) for h, t in typed if h is not None
                     and t is not None]
            if not typed:
                continue
            (head_type, tail_type), count = \
                Counter(typed).most_common(1)[0]
            confidence = count / len(typed)
            if confidence >= self.min_signature_confidence:
                signatures[relation] = TypeSignature(
                    relation=relation, head_type=head_type,
                    tail_type=tail_type, confidence=confidence,
                    support=len(typed))
        return signatures

    # ------------------------------------------------------------------
    def mine_path_rules(self, store: TripleStore) -> list[PathRule]:
        """2-hop path rules with enough support and confidence."""
        # index: head entity -> list of (relation, tail)
        out_edges: dict[str, list[tuple[str, str]]] = defaultdict(list)
        pair_relations: dict[tuple[str, str], set[str]] = defaultdict(set)
        for triple in store:
            out_edges[triple.head].append((triple.relation, triple.tail))
            pair_relations[(triple.head, triple.tail)].add(triple.relation)

        # body instantiation counts: (r1, r2) -> set of (x, y)
        body_pairs: dict[tuple[str, str], set[tuple[str, str]]] = \
            defaultdict(set)
        for x, firsts in out_edges.items():
            for r1, z in firsts:
                for r2, y in out_edges.get(z, ()):
                    if x != y:
                        body_pairs[(r1, r2)].add((x, y))

        rules: list[PathRule] = []
        for (r1, r2), pairs in body_pairs.items():
            head_hits: Counter = Counter()
            for x, y in pairs:
                for head_relation in pair_relations.get((x, y), ()):
                    head_hits[head_relation] += 1
            for head_relation, support in head_hits.items():
                confidence = support / len(pairs)
                if support >= self.min_rule_support \
                        and confidence >= self.min_rule_confidence:
                    rules.append(PathRule(
                        head_relation=head_relation, body_first=r1,
                        body_second=r2, support=support,
                        confidence=confidence))
        rules.sort(key=lambda r: (-r.confidence, -r.support,
                                  r.head_relation, r.body_first,
                                  r.body_second))
        return rules
