"""The shard worker process: ``python -m repro.shard.worker``.

One worker is one OS process hosting a private
:class:`~repro.serve.engine.ChatGraphServer` — its own finetuned model
(rebuilt deterministically from the init spec, so every shard computes
byte-identical results for the same content-seeded request), its own
session store, pipeline caches, per-API breakers, and catalog handle
over the shared ``store_root``.  The process boundary is the point:
each shard owns a whole CPU core's worth of decode/ANN work instead of
sharing one GIL.

Protocol (see :mod:`repro.shard.protocol`): stdin carries ``init`` /
``batch`` / ``stats`` / ``shutdown`` frames plus the migration RPCs
(``sessions`` / ``adopt`` / ``evict`` / ``warm``); stdout carries
``hello`` / ``batch_reply`` / ``stats_reply`` / ``heartbeat`` and the
matching ``*_reply`` frames.  stdout belongs to
the protocol exclusively — ``main`` repoints ``sys.stdout`` at stderr
before any library code runs, so a stray ``print`` can never corrupt a
frame.  A clean EOF on stdin (coordinator gone) is the shutdown
signal; the worker drains and exits.
"""

from __future__ import annotations

import dataclasses
import os
import sys
import threading
import time
from typing import Any, BinaryIO

from ..config import ChatGraphConfig, ObsConfig, ServeConfig
from ..errors import ChatGraphError
from .protocol import (
    ShardProtocolError,
    read_frame,
    request_from_wire,
    response_to_wire,
    write_frame,
)

__all__ = ["ShardWorker", "main", "serve_config_from_wire",
           "serve_config_to_wire"]

#: Upper bound a worker waits on one locally-submitted request before
#: failing that reply slot (the coordinator's heartbeat timeout governs
#: hung *processes*; this governs hung *requests*).
RESULT_TIMEOUT_SECONDS = 120.0


def serve_config_to_wire(config: ServeConfig) -> dict[str, Any]:
    """A JSON-able dict round-tripping through ``serve_config_from_wire``."""
    wire = dataclasses.asdict(config)
    wire["shard_hot_graphs"] = list(config.shard_hot_graphs)
    return wire


def serve_config_from_wire(wire: dict[str, Any]) -> ServeConfig:
    data = dict(wire)
    obs = ObsConfig(**data.pop("obs"))
    data["shard_hot_graphs"] = tuple(data.get("shard_hot_graphs") or ())
    return ServeConfig(**data, obs=obs)


def build_shard_chatgraph(model: dict[str, Any]) -> Any:
    """Deterministically rebuild the model a shard serves.

    The spec carries only values (corpus size, seed, objective, config
    dict) — never objects — so any process that applies it produces the
    same finetuned weights, which is what makes sharded responses
    byte-identical to the single-process server's.
    """
    from ..core.chatgraph import ChatGraph

    config = None
    if model.get("config") is not None:
        config = ChatGraphConfig.from_dict(model["config"])
    return ChatGraph.pretrained(
        config=config,
        corpus_size=int(model.get("corpus_size", 600)),
        objective=str(model.get("objective", "token")),
        seed=int(model.get("seed", 0)))


class ShardWorker:
    """Protocol loop around one local :class:`ChatGraphServer`."""

    def __init__(self, init: dict[str, Any], stdin: BinaryIO,
                 stdout: BinaryIO) -> None:
        self.shard = int(init["shard"])
        self.name = f"shard-{self.shard}"
        self._stdin = stdin
        self._stdout = stdout
        self._write_lock = threading.Lock()
        self._stop = threading.Event()
        config = serve_config_from_wire(init["serve"])
        #: Admission control lives in the coordinator: the shard must
        #: never second-guess it, so per-client limiting is off and the
        #: local queue is deep enough for every in-flight scatter batch.
        scatter = max(1, config.shard_scatter_batch)
        self.config = dataclasses.replace(
            config,
            rate_limit_capacity=0,
            rate_limit_refill_per_second=0.0,
            queue_depth=max(config.queue_depth,
                            2 * config.shard_inflight * scatter + 8))
        started = time.perf_counter()
        from ..serve.engine import ChatGraphServer

        chatgraph = build_shard_chatgraph(init["model"])
        self.server = ChatGraphServer(chatgraph, self.config)
        self.server.start()
        self.startup_seconds = time.perf_counter() - started
        self._heartbeat = threading.Thread(
            target=self._heartbeat_loop, name=f"{self.name}-heartbeat",
            daemon=True)

    # ------------------------------------------------------------------
    # frame plumbing
    # ------------------------------------------------------------------
    def _write(self, frame: dict[str, Any]) -> None:
        try:
            with self._write_lock:
                write_frame(self._stdout, frame)
        except (OSError, ValueError):
            # coordinator is gone; stop pumping and let the main loop
            # wind down on stdin EOF
            self._stop.set()

    def _heartbeat_loop(self) -> None:
        seq = 0
        while not self._stop.wait(self.config.shard_heartbeat_seconds):
            seq += 1
            self._write({"type": "heartbeat", "shard": self.shard,
                         "seq": seq})

    # ------------------------------------------------------------------
    # frame handlers
    # ------------------------------------------------------------------
    def _handle_batch(self, frame: dict[str, Any]) -> None:
        items = frame.get("items") or []
        submitted: list[tuple[dict[str, Any], Any, Exception | None]] = []
        for wire in items:
            try:
                request = request_from_wire(wire)
                pending = self.server.submit(
                    request, parent_span_id=wire.get("parent_span"))
                submitted.append((wire, pending, None))
            except Exception as exc:  # noqa: BLE001 - fail one slot only
                submitted.append((wire, None, exc))
        replies: list[dict[str, Any]] = []
        for wire, pending, error in submitted:
            if pending is None:
                replies.append({
                    "request_id": wire.get("request_id", 0),
                    "op": wire.get("op", ""), "ok": False,
                    "error": str(error),
                    "error_type": type(error).__name__,
                    "worker": self.name, "seed": 0,
                    "service_seconds": 0.0, "value": None,
                })
                continue
            try:
                response = pending.result(timeout=RESULT_TIMEOUT_SECONDS)
                reply = response_to_wire(response)
            except Exception as exc:  # noqa: BLE001 - fail one slot only
                reply = {
                    "request_id": 0, "op": wire.get("op", ""),
                    "ok": False, "error": str(exc),
                    "error_type": type(exc).__name__,
                    "worker": self.name, "seed": 0,
                    "service_seconds": 0.0, "value": None,
                }
            #: The coordinator matches replies to items by position but
            #: reconciles ids; the worker's lane name is prefixed so
            #: merged stats can attribute work to a shard.
            reply["request_id"] = wire.get("request_id", 0)
            reply["worker"] = f"{self.name}/{reply.get('worker', '')}"
            replies.append(reply)
        self._write({"type": "batch_reply", "shard": self.shard,
                     "batch_id": frame.get("batch_id", 0),
                     "replies": replies})

    def _handle_stats(self, frame: dict[str, Any]) -> None:
        payload: dict[str, Any] = {
            "type": "stats_reply", "shard": self.shard,
            "stats_id": frame.get("stats_id", 0),
            "stats": self.server.stats(),
            "metrics": self.server.metrics.dump(),
        }
        tracer = self.server.tracer
        if frame.get("include_spans") and tracer is not None:
            payload["spans"] = [span.to_dict(canonical=True)
                                for span in tracer.finished_spans()]
        self._write(payload)

    # ------------------------------------------------------------------
    # migration RPCs (see repro.runtime.shard's ring-change path)
    # ------------------------------------------------------------------
    def _handle_sessions(self, frame: dict[str, Any]) -> None:
        """Inventory of pinned sessions; the planner's placement input."""
        self._write({
            "type": "sessions_reply", "shard": self.shard,
            "rpc_id": frame.get("rpc_id", 0),
            "sessions": [{"session_id": session_id, "graph_name": name}
                         for session_id, name
                         in self.server.sessions.pins()],
        })

    def _handle_adopt(self, frame: dict[str, Any]) -> None:
        """Take ownership of sessions moving here on a ring change.

        Re-binds each session to its named graph's current epoch view
        from the shared store; a bad graph reference fails only that
        one session's adoption, never the frame.
        """
        adopted = 0
        for wire in frame.get("sessions") or []:
            session_id = wire.get("session_id")
            if not session_id:
                continue
            try:
                entry = self.server.sessions.get_or_create(session_id)
                name = wire.get("graph_name")
                if name and self.server.catalog is not None:
                    view = self.server.catalog.view(name)
                    with entry.lock:
                        entry.session.upload_graph(view.graph)
                        entry.graph_ref = (view.name, view.epoch)
                adopted += 1
            except ChatGraphError:
                continue
        self._write({"type": "adopt_reply", "shard": self.shard,
                     "rpc_id": frame.get("rpc_id", 0),
                     "adopted": adopted})

    def _handle_evict(self, frame: dict[str, Any]) -> None:
        """Drop sessions whose ownership moved to another shard."""
        evicted = sum(
            1 for session_id in frame.get("session_ids") or []
            if self.server.sessions.drop(session_id))
        self._write({"type": "evict_reply", "shard": self.shard,
                     "rpc_id": frame.get("rpc_id", 0),
                     "evicted": evicted})

    def _handle_warm(self, frame: dict[str, Any]) -> None:
        """Pre-warm caches for graphs whose ring ownership moved here."""
        try:
            warmed = self.server.warm_caches(
                names=list(frame.get("names") or []))
        except ChatGraphError:
            warmed = 0
        self._write({"type": "warm_reply", "shard": self.shard,
                     "rpc_id": frame.get("rpc_id", 0),
                     "warmed": warmed})

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def run(self) -> int:
        self._write({"type": "hello", "shard": self.shard,
                     "pid": os.getpid(),
                     "startup_seconds": self.startup_seconds})
        self._heartbeat.start()
        batch_threads: list[threading.Thread] = []
        try:
            while not self._stop.is_set():
                frame = read_frame(self._stdin)
                if frame is None or frame["type"] == "shutdown":
                    break
                if frame["type"] == "batch":
                    # serve off-thread so the loop keeps reading: the
                    # coordinator pipelines shard_inflight batches and
                    # expects them to overlap, and a long batch must
                    # not starve heartbeats or stats polls
                    thread = threading.Thread(
                        target=self._handle_batch, args=(frame,),
                        name=f"{self.name}-batch", daemon=True)
                    thread.start()
                    batch_threads.append(thread)
                    batch_threads = [t for t in batch_threads
                                     if t.is_alive()]
                elif frame["type"] == "stats":
                    self._handle_stats(frame)
                elif frame["type"] == "sessions":
                    self._handle_sessions(frame)
                elif frame["type"] == "adopt":
                    self._handle_adopt(frame)
                elif frame["type"] == "evict":
                    self._handle_evict(frame)
                elif frame["type"] == "warm":
                    self._handle_warm(frame)
                elif frame["type"] != "heartbeat":
                    raise ShardProtocolError(
                        f"unexpected frame type {frame['type']!r}")
        except (ShardProtocolError, OSError) as exc:
            print(f"{self.name}: protocol error: {exc}",
                  file=sys.stderr)
            return 1
        finally:
            self._stop.set()
            for thread in batch_threads:
                thread.join(timeout=RESULT_TIMEOUT_SECONDS)
            try:
                self.server.stop(drain=True, timeout=10.0)
            except ChatGraphError:
                pass
        return 0


def main() -> int:
    stdin = sys.stdin.buffer
    stdout = sys.stdout.buffer
    # the protocol owns the real stdout; anything library code prints
    # from here on lands on stderr instead of inside a frame
    sys.stdout = sys.stderr
    init = read_frame(stdin)
    if init is None:
        return 0
    if init.get("type") != "init":
        raise ShardProtocolError(
            f"expected an init frame, got {init.get('type')!r}")
    worker = ShardWorker(init, stdin, stdout)
    return worker.run()


if __name__ == "__main__":
    raise SystemExit(main())
