"""Consistent-hash routing for the sharded serving tier.

A :class:`HashRing` places ``vnodes`` virtual points per shard on a
2^64 ring (sha256 of ``"<shard>:<replica>"``) and routes each key to
the first point clockwise of the key's own hash.  The properties the
coordinator relies on:

* **determinism** — the same key always lands on the same shard for a
  fixed shard set (routing never depends on arrival order);
* **stability** — removing one shard only remaps keys that shard
  owned; every other key keeps its owner, so session and cache
  locality survive membership churn (``tests/test_shard_ring.py``
  drives this under hypothesis);
* **preference walks** — :meth:`preference` yields all shards in ring
  order from the key's position, which gives both the replica set of a
  hot graph (its first N entries) and the failover order when the
  owner is dead (the next live entry).
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, Iterator

from ..errors import ConfigError

__all__ = ["HashRing"]


def _hash64(material: str) -> int:
    digest = hashlib.sha256(material.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Consistent-hash ring over integer shard ids."""

    def __init__(self, shards: Iterable[int] = (),
                 vnodes: int = 64) -> None:
        if vnodes < 1:
            raise ConfigError("vnodes must be >= 1")
        self.vnodes = vnodes
        self._shards: set[int] = set()
        #: Sorted (point, shard) pairs; rebuilt-free add/remove via
        #: bisect keeps membership churn O(vnodes log n).
        self._points: list[tuple[int, int]] = []
        for shard in shards:
            self.add(shard)

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def _shard_points(self, shard: int) -> list[tuple[int, int]]:
        return [(_hash64(f"shard:{shard}:{replica}"), shard)
                for replica in range(self.vnodes)]

    def add(self, shard: int) -> None:
        if shard in self._shards:
            raise ConfigError(f"shard {shard} already on the ring")
        self._shards.add(shard)
        for point in self._shard_points(shard):
            bisect.insort(self._points, point)

    def remove(self, shard: int) -> None:
        if shard not in self._shards:
            raise ConfigError(f"shard {shard} not on the ring")
        self._shards.remove(shard)
        self._points = [point for point in self._points
                        if point[1] != shard]

    @property
    def shards(self) -> tuple[int, ...]:
        return tuple(sorted(self._shards))

    def __len__(self) -> int:
        return len(self._shards)

    def __contains__(self, shard: int) -> bool:
        return shard in self._shards

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def lookup(self, key: str) -> int:
        """The shard owning ``key`` (first point clockwise)."""
        for shard in self.preference(key):
            return shard
        raise ConfigError("lookup on an empty ring")

    def preference(self, key: str) -> Iterator[int]:
        """Every shard in ring order from ``key``'s position.

        Distinct shards only, in the order their first virtual point
        appears walking clockwise — the canonical replica/failover
        order for ``key``.
        """
        if not self._points:
            return
        start = bisect.bisect_right(self._points,
                                    (_hash64(key), 1 << 65))
        seen: set[int] = set()
        n = len(self._points)
        for offset in range(n):
            shard = self._points[(start + offset) % n][1]
            if shard not in seen:
                seen.add(shard)
                yield shard
                if len(seen) == len(self._shards):
                    return

    def preferred(self, key: str, count: int) -> list[int]:
        """The first ``count`` distinct shards of the preference walk."""
        out: list[int] = []
        for shard in self.preference(key):
            out.append(shard)
            if len(out) >= count:
                break
        return out
