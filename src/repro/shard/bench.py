"""``bench-shard``: the sharded serving tier's four gate families.

* **scaling** — the same distinct-key propose workload served at
  increasing shard counts in the I/O-bound regime
  (``backend_latency_seconds`` models the remote-LLM round trip, one
  worker thread per shard, micro-batching off).  The gate is the
  ISSUE's contract: >= 3x throughput at 4 shards over 1 shard
  (>= 5x at 8 shards, only attempted on a machine with >= 8 cores —
  a single-core runner cannot demonstrate CPU-bound scaling, so the
  regime makes shards overlap *waiting*, which is exactly what the
  process boundary buys when decode is remote).
* **parity** — the same content-seeded requests served by a sharded
  fleet and by a single-process :class:`ChatGraphServer` must produce
  byte-identical canonical wire forms (:func:`value_to_wire` flattens
  both sides), because every shard rebuilds identical weights from the
  value-only :class:`ShardModelSpec`.
* **spike soak** — a :class:`StepSpike` schedule under the fake-clock
  discipline with one shard SIGKILLed mid-spike
  (:class:`TriggerClock` fires the kill when virtual time crosses the
  trigger).  Gates: the death was detected and the ``shard:<i>``
  breaker tripped, orphans failed over (zero lost requests — the
  runner's books reconcile exactly against coordinator counters), the
  background restart brought the fleet back to full strength, and the
  standard SLO gates (shed load bounded, p95 bounded) held.
* **live migration** — a steady sessioned soak (fake clock) while the
  fleet is reshaped under it: ``add_shard`` one third in,
  ``remove_shard(0)`` two thirds in.  Pinned sessions and named-graph
  affinity move along ring preference (planner:
  :func:`repro.runtime.migration.plan_migration`), no session is
  stranded, zero requests are lost (exact ledger reconciliation, zero
  errors), and the fleet ends healthy on the final ring.

``python -m repro.cli bench-shard`` writes the combined report to
``BENCH_PR9.json``; any failed gate exits non-zero.
"""

from __future__ import annotations

import tempfile
import time
from typing import Any, Callable

from ..benchlib import (
    drive,
    eight_shard_gate_decision,
    gate as _gate,
    host_info,
    say as _say,
)
from ..config import ServeConfig
from ..loadgen.arrivals import ConstantRate, StepSpike
from ..loadgen.personas import default_pool
from ..loadgen.runner import SoakRunner, VirtualClock
from ..loadgen.schedule import build_schedule
from ..loadgen.slo import SLOGate, SLOSpec, evaluate_slo
from ..serve.engine import ChatGraphServer, ServeRequest
from ..testing.workloads import PROMPTS, bench_graphs
from .coordinator import ShardModelSpec, ShardedChatGraphServer
from .protocol import dumps_canonical, value_to_wire

__all__ = ["TriggerClock", "run_shard_benchmark"]

RESULT_TIMEOUT_SECONDS = 300.0
#: Real-time ceiling on post-soak fleet recovery (restart is a real
#: process spawn + model rebuild; the virtual clock cannot compress it).
RECOVERY_TIMEOUT_SECONDS = 60.0


class TriggerClock(VirtualClock):
    """A :class:`VirtualClock` that fires a callback crossing ``at``.

    The chaos hook for fake-clock sharded soaks: the kill must land at
    a *virtual* instant (mid-spike), so the clock itself watches for
    the crossing.  The callback runs outside the clock lock, exactly
    once.
    """

    def __init__(self, at: float, callback: Callable[[], None],
                 start: float = 0.0) -> None:
        super().__init__(start)
        self.at = float(at)
        self._callback = callback
        self._fired = False

    def _maybe_fire(self, now: float) -> float:
        if not self._fired and now >= self.at:
            self._fired = True
            self._callback()
        return now

    def advance(self, seconds: float) -> float:
        return self._maybe_fire(super().advance(seconds))

    def advance_to(self, target: float) -> float:
        return self._maybe_fire(super().advance_to(target))


# ----------------------------------------------------------------------
# scaling
# ----------------------------------------------------------------------
def _scaling_requests(n: int) -> list[ServeRequest]:
    """``n`` propose requests with ``n`` distinct routing keys.

    Every request carries a unique text, so the consistent-hash ring
    spreads the workload near-uniformly — the scaling curve measures
    the tier, not one hot key.
    """
    graphs = bench_graphs(4)
    return [
        ServeRequest(op="propose",
                     text=f"{PROMPTS[i % len(PROMPTS)]} [variant {i}]",
                     graph=graphs[i % len(graphs)],
                     client_id=f"client-{i % 8}")
        for i in range(n)
    ]


def _drive(server: Any, requests: Any) -> tuple[float, list[Any]]:
    return drive(server, requests, timeout=RESULT_TIMEOUT_SECONDS)


def _scaling_section(seed: int, quick: bool, corpus_size: int
                     ) -> dict[str, Any]:
    latency = 0.06
    n = 32 if quick else 64
    counts = [1, 2] if quick else [1, 2, 4]
    eight = eight_shard_gate_decision(quick=quick)
    if eight["armed"]:
        counts.append(8)
    _say(f"scaling: 8-shard gate "
         f"{'ARMED' if eight['armed'] else 'disarmed'} "
         f"({eight['reason']})")
    requests = _scaling_requests(n)
    spec = ShardModelSpec(corpus_size=corpus_size, seed=seed)

    from ..core.chatgraph import ChatGraph
    _say(f"scaling: single-process reference ({n} requests, "
         f"{latency * 1000:.0f}ms emulated backend)...")
    chatgraph = ChatGraph.pretrained(corpus_size=corpus_size, seed=seed)
    single_config = ServeConfig(workers=1, queue_depth=2 * n,
                                backend_latency_seconds=latency)
    with ChatGraphServer(chatgraph, single_config) as server:
        single_seconds, responses = _drive(server, requests)
    failed = sum(1 for r in responses if not r.ok)

    rows: list[dict[str, Any]] = []
    for shards in counts:
        _say(f"scaling: {shards} shard(s)...")
        config = ServeConfig(shards=shards, workers=1,
                             queue_depth=2 * n,
                             backend_latency_seconds=latency)
        server = ShardedChatGraphServer(spec, config)
        with server:
            seconds, responses = _drive(server, requests)
            stats = server.stats()
        shard_failed = sum(1 for r in responses if not r.ok)
        failed += shard_failed
        per_shard = stats["shards"]["per_shard"]
        rows.append({
            "shards": shards,
            "seconds": round(seconds, 4),
            "throughput": round(n / seconds, 2),
            "failed": shard_failed,
            "routed": {index: entry["routed"]
                       for index, entry in sorted(per_shard.items())},
        })
    base = rows[0]["throughput"]
    for row in rows:
        row["speedup"] = round(row["throughput"] / base, 2)
        _say(f"scaling: {row['shards']} shard(s): "
             f"{row['throughput']:.1f} req/s ({row['speedup']}x)")

    by_count = {row["shards"]: row for row in rows}
    gates = [_gate("no failed requests", failed == 0, failed=failed)]
    if quick:
        gates.append(_gate(
            "throughput at 2 shards >= 1.5x over 1 shard",
            by_count[2]["speedup"] >= 1.5, speedup=by_count[2]["speedup"]))
    else:
        gates.append(_gate(
            "throughput at 4 shards >= 3x over 1 shard",
            by_count[4]["speedup"] >= 3.0, speedup=by_count[4]["speedup"]))
        if 8 in by_count:
            gates.append(_gate(
                "throughput at 8 shards >= 5x over 1 shard",
                by_count[8]["speedup"] >= 5.0,
                speedup=by_count[8]["speedup"]))
    return {
        "n_requests": n,
        "backend_latency_seconds": latency,
        "single_process": {
            "seconds": round(single_seconds, 4),
            "throughput": round(n / single_seconds, 2),
        },
        "rows": rows,
        #: The armed/disarmed decision plus its reason — a report read
        #: on any machine documents whether the 8-shard gate could run.
        "eight_shard_gate": eight,
        "gates": gates,
        "passed": all(gate["passed"] for gate in gates),
    }


# ----------------------------------------------------------------------
# parity
# ----------------------------------------------------------------------
def _parity_section(seed: int, quick: bool, corpus_size: int
                    ) -> dict[str, Any]:
    n_texts = 2 if quick else 4
    texts = list(PROMPTS[:n_texts])
    graphs = bench_graphs(2)
    cases = [(op, text, graph)
             for op in ("ask", "propose")
             for text in texts
             for graph in graphs]
    spec = ShardModelSpec(corpus_size=corpus_size, seed=seed)

    from ..core.chatgraph import ChatGraph
    _say(f"parity: {len(cases)} cases, 3-shard fleet vs "
         f"single process...")
    chatgraph = ChatGraph.pretrained(corpus_size=corpus_size, seed=seed)
    single = ChatGraphServer(chatgraph, ServeConfig(workers=1,
                                                    queue_depth=64))
    sharded = ShardedChatGraphServer(
        spec, ServeConfig(shards=3, workers=1, queue_depth=64))
    mismatches: list[dict[str, Any]] = []
    compared = 0
    with single, sharded:
        for op, text, graph in cases:
            request = ServeRequest(op=op, text=text, graph=graph)
            local = single.request(request)
            remote = sharded.request(
                ServeRequest(op=op, text=text, graph=graph))
            if not (local.ok and remote.ok):
                mismatches.append({"op": op, "text": text,
                                   "graph": graph.name,
                                   "local_ok": local.ok,
                                   "remote_ok": remote.ok})
                continue
            local_bytes = dumps_canonical(value_to_wire(op, local.value))
            remote_bytes = dumps_canonical(
                value_to_wire(op, remote.value))
            compared += 1
            if local_bytes != remote_bytes:
                mismatches.append({
                    "op": op, "text": text, "graph": graph.name,
                    "local": local_bytes.decode("ascii"),
                    "remote": remote_bytes.decode("ascii"),
                })
    gates = [
        _gate("every case compared", compared == len(cases),
              compared=compared, expected=len(cases)),
        _gate("responses byte-identical to single-process",
              not mismatches, mismatches=len(mismatches)),
    ]
    _say(f"parity: {compared}/{len(cases)} byte-identical"
         + (f", {len(mismatches)} MISMATCHES" if mismatches else ""))
    return {
        "cases": len(cases),
        "compared": compared,
        "mismatches": mismatches[:5],
        "gates": gates,
        "passed": all(gate["passed"] for gate in gates),
    }


# ----------------------------------------------------------------------
# kill-a-shard spike soak
# ----------------------------------------------------------------------
def _soak_section(seed: int, quick: bool, corpus_size: int
                  ) -> dict[str, Any]:
    duration = 75.0 if quick else 120.0
    spike_start = 25.0 if quick else 30.0
    spike_end = spike_start + 15.0
    kill_at = (spike_start + spike_end) / 2.0
    arrival = StepSpike(base_rate=0.25, spike_rate=8.0,
                        spike_start=spike_start, spike_end=spike_end)
    pool = default_pool()
    spec = ShardModelSpec(corpus_size=corpus_size, seed=seed)

    tmpdir = tempfile.TemporaryDirectory(prefix="bench-shard-store-")
    try:
        from ..store.catalog import GraphCatalog
        catalog = GraphCatalog(tmpdir.name)
        catalog_names = []
        for key in ("social-m", "kg-m"):
            name = f"demo-{key}"
            handle = catalog.create(name, directed=pool[key].directed)
            handle.ingest(pool[key])
            catalog_names.append(name)
        catalog.close()
        schedule = build_schedule(arrival, duration, seed=seed,
                                  pool=pool,
                                  catalog_names=tuple(catalog_names))
        config = ServeConfig(
            shards=3, workers=1, queue_depth=8,
            shard_inflight=1, shard_scatter_batch=4,
            store_root=tmpdir.name,
            shard_hot_graphs=tuple(catalog_names),
            shard_replicas=2)
        clock = TriggerClock(kill_at, lambda: None)
        server = ShardedChatGraphServer(spec, config, clock=clock)
        clock._callback = lambda: server.kill_shard(0)
        _say(f"soak: spike {spike_start:.0f}-{spike_end:.0f}s of "
             f"{duration:.0f}s, shard 0 SIGKILLed at t={kill_at:.0f}s "
             f"(virtual)...")
        runner = SoakRunner(server, schedule, window_seconds=15.0,
                            clock=clock)
        recovery: dict[str, Any] = {}
        with server:
            report = runner.run()
            # the restart is a real process spawn: give the fleet
            # bounded real time to return to full strength before
            # reading the recovery gates
            deadline = time.monotonic() + RECOVERY_TIMEOUT_SECONDS
            while time.monotonic() < deadline:
                alive = sum(1 for h in server.handles if h.alive)
                open_names = sorted(server.breakers.open_names())
                if alive == config.shards and not open_names:
                    break
                time.sleep(0.1)
            recovery = {
                "alive": sum(1 for h in server.handles if h.alive),
                "shards": config.shards,
                "open_breakers": sorted(server.breakers.open_names()),
                "waited_seconds": round(
                    RECOVERY_TIMEOUT_SECONDS
                    - max(0.0, deadline - time.monotonic()), 2),
            }
            final_stats = server.stats()
    finally:
        tmpdir.cleanup()

    counters = report["counters"]
    slo = evaluate_slo(report, SLOSpec(name="shard-spike", gates=(
        SLOGate(metric="error_rate", max_value=0.02),
        SLOGate(metric="rejection_rate", min_value=0.001,
                max_value=0.9),
        SLOGate(metric="p95_latency", max_value=1.0),
    )))
    shard_gates = [
        _gate("exactly one shard death", counters.get(
            "shard_deaths", 0) == 1,
            deaths=counters.get("shard_deaths", 0)),
        _gate("breaker tripped on the death",
              counters.get("breaker_opened", 0) >= 1,
              opened=counters.get("breaker_opened", 0)),
        _gate("orphans failed over",
              counters.get("shard_failovers", 0) >= 1,
              failovers=counters.get("shard_failovers", 0)),
        _gate("shard restarted",
              counters.get("shard_restarts", 0) >= 1,
              restarts=counters.get("shard_restarts", 0)),
        _gate("fleet back to full strength",
              recovery["alive"] == recovery["shards"], **recovery),
        _gate("no breaker open after recovery",
              not recovery["open_breakers"]),
        _gate("runner books reconcile exactly",
              report["reconciliation"]["exact"],
              reconciliation=report["reconciliation"]),
    ]
    passed = slo["passed"] and all(g["passed"] for g in shard_gates)
    overall = report["overall"]
    _say(f"soak: {overall['submitted']} submitted, {overall['ok']} ok, "
         f"{overall['rejected']} rejected, {overall['errors']} errors; "
         f"deaths={counters.get('shard_deaths', 0)} "
         f"failovers={counters.get('shard_failovers', 0)} "
         f"restarts={counters.get('shard_restarts', 0)}")
    return {
        "duration": duration,
        "spike": [spike_start, spike_end],
        "kill_at": kill_at,
        "schedule_sha256": report["schedule_sha256"],
        "overall": overall,
        "counters": counters,
        "reconciliation": report["reconciliation"],
        "recovery": recovery,
        "final_shards": {
            "alive": final_stats["shards"]["alive"],
            "count": final_stats["shards"]["count"],
        },
        "slo": slo,
        "gates": shard_gates,
        "passed": passed,
    }


# ----------------------------------------------------------------------
# live-migration soak: add a shard mid-run, then remove one
# ----------------------------------------------------------------------
class _TriggerSequenceClock(VirtualClock):
    """A :class:`VirtualClock` firing ``(at, callback)`` pairs in order.

    The multi-event sibling of :class:`TriggerClock`: each callback
    fires exactly once, outside the clock lock, as virtual time crosses
    its instant — how both fleet reshapes land mid-soak at scripted
    virtual times.
    """

    def __init__(self, triggers: list[tuple[float, Callable[[], None]]],
                 start: float = 0.0) -> None:
        super().__init__(start)
        self._triggers = sorted(triggers, key=lambda pair: pair[0])
        self._fired = 0

    def _maybe_fire(self, now: float) -> float:
        while (self._fired < len(self._triggers)
               and now >= self._triggers[self._fired][0]):
            callback = self._triggers[self._fired][1]
            self._fired += 1
            callback()
        return now

    def advance(self, seconds: float) -> float:
        return self._maybe_fire(super().advance(seconds))

    def advance_to(self, target: float) -> float:
        return self._maybe_fire(super().advance_to(target))


def _migration_section(seed: int, quick: bool, corpus_size: int
                       ) -> dict[str, Any]:
    """The ring-change gate: reshape the fleet live under load.

    A 2-shard fleet serves a steady sessioned soak; one third in, a
    third shard joins (``add_shard``); two thirds in, shard 0 leaves
    (``remove_shard``).  Pinned sessions and named-graph affinity must
    follow ring preference both times with zero lost requests — the
    runner's ledger reconciles exactly against coordinator counters,
    and no admitted request errors.
    """
    duration = 45.0 if quick else 90.0
    add_at = duration / 3.0
    remove_at = 2.0 * duration / 3.0
    arrival = ConstantRate(rate=1.5 if quick else 2.0)
    pool = default_pool()
    spec = ShardModelSpec(corpus_size=corpus_size, seed=seed)
    reports: dict[str, dict[str, Any]] = {}

    tmpdir = tempfile.TemporaryDirectory(prefix="bench-shard-migrate-")
    try:
        from ..store.catalog import GraphCatalog
        catalog = GraphCatalog(tmpdir.name)
        catalog_names = []
        for key in ("social-m", "kg-m"):
            name = f"demo-{key}"
            handle = catalog.create(name, directed=pool[key].directed)
            handle.ingest(pool[key])
            catalog_names.append(name)
        catalog.close()
        schedule = build_schedule(arrival, duration, seed=seed,
                                  pool=pool,
                                  catalog_names=tuple(catalog_names))
        config = ServeConfig(
            shards=2, workers=1, queue_depth=32,
            shard_inflight=1, shard_scatter_batch=4,
            store_root=tmpdir.name,
            shard_hot_graphs=tuple(catalog_names),
            shard_replicas=2)
        server = ShardedChatGraphServer(spec, config)
        clock = _TriggerSequenceClock([
            (add_at,
             lambda: reports.setdefault("add", server.add_shard())),
            (remove_at,
             lambda: reports.setdefault("remove",
                                        server.remove_shard(0))),
        ])
        _say(f"migration: {duration:.0f}s soak on 2 shards; "
             f"add_shard at t={add_at:.0f}s, remove_shard(0) at "
             f"t={remove_at:.0f}s (virtual)...")
        runner = SoakRunner(server, schedule, window_seconds=15.0,
                            clock=clock)
        with server:
            report = runner.run()
            final_stats = server.stats()
            ring = list(server.ring.shards)
            alive = sum(1 for h in server.handles
                        if h.alive and not h.retired)
            open_breakers = sorted(server.breakers.open_names())
    finally:
        tmpdir.cleanup()

    counters = report["counters"]
    add_report = reports.get("add") or {}
    remove_report = reports.get("remove") or {}
    moves = (add_report.get("planned_moves", 0)
             + remove_report.get("planned_moves", 0))
    slo = evaluate_slo(report, SLOSpec(name="shard-migration", gates=(
        SLOGate(metric="error_rate", max_value=0.0),
        SLOGate(metric="p95_latency", max_value=1.0),
    )))
    overall = report["overall"]
    gates = [
        _gate("both reshapes ran mid-soak",
              set(reports) == {"add", "remove"}, ran=sorted(reports)),
        _gate("sessions moved along ring preference", moves >= 1,
              planned_moves=moves,
              sessions_migrated=counters.get("sessions_migrated", 0)),
        _gate("no session stranded",
              add_report.get("stranded", 1) == 0
              and remove_report.get("stranded", 1) == 0,
              stranded=[add_report.get("stranded"),
                        remove_report.get("stranded")]),
        _gate("zero lost requests (books reconcile exactly)",
              report["reconciliation"]["exact"],
              reconciliation=report["reconciliation"]),
        _gate("no admitted request errored",
              overall["errors"] == 0, errors=overall["errors"]),
        _gate("fleet healthy on the final ring",
              ring == sorted(ring) and alive == len(ring)
              and not open_breakers,
              ring=ring, alive=alive, open_breakers=open_breakers),
    ]
    passed = slo["passed"] and all(g["passed"] for g in gates)
    _say(f"migration: {overall['submitted']} submitted, "
         f"{overall['ok']} ok, {overall['rejected']} rejected, "
         f"{overall['errors']} errors; moves={moves} "
         f"migrated={counters.get('sessions_migrated', 0)} "
         f"ring={ring}")
    return {
        "duration": duration,
        "add_at": add_at,
        "remove_at": remove_at,
        "schedule_sha256": report["schedule_sha256"],
        "overall": overall,
        "counters": counters,
        "reconciliation": report["reconciliation"],
        "add": add_report,
        "remove": remove_report,
        "final_ring": ring,
        "final_shards": {
            "alive": alive,
            "count": final_stats["shards"]["count"],
            "retired": final_stats["shards"]["retired"],
        },
        "slo": slo,
        "gates": gates,
        "passed": passed,
    }


# ----------------------------------------------------------------------
# the whole benchmark
# ----------------------------------------------------------------------
def run_shard_benchmark(seed: int = 0, quick: bool = False,
                        corpus_size: int = 200,
                        skip_soak: bool = False) -> dict[str, Any]:
    """All four gate families; the ``bench-shard`` CLI body."""
    report: dict[str, Any] = {
        "bench": "bench-shard",
        "seed": seed,
        "quick": quick,
        "corpus_size": corpus_size,
        "cpu_count": host_info()["cpu_count"],
        "scaling": _scaling_section(seed, quick, corpus_size),
        "parity": _parity_section(seed, quick, corpus_size),
    }
    if skip_soak:
        report["soak"] = {"skipped": True, "passed": True}
        report["migration"] = {"skipped": True, "passed": True}
    else:
        report["soak"] = _soak_section(seed, quick, corpus_size)
        report["migration"] = _migration_section(seed, quick,
                                                 corpus_size)
    report["passed"] = all(
        report[section]["passed"]
        for section in ("scaling", "parity", "soak", "migration"))
    for section in ("scaling", "parity", "soak", "migration"):
        for gate in report[section].get("gates", ()):
            status = "PASS" if gate["passed"] else "FAIL"
            _say(f"  {status}  [{section}] {gate['gate']}")
        for gate in report[section].get("slo", {}).get("gates", ()):
            status = "PASS" if gate["passed"] else "FAIL"
            _say(f"  {status}  [{section}] {gate['gate']}")
    return report
