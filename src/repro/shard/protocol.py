"""The coordinator <-> shard-worker pipe protocol.

Frames are length-prefixed canonical JSON: a 4-byte big-endian length
followed by ``json.dumps(obj, sort_keys=True, separators=(",", ":"))``
in UTF-8.  Pickle-free by design — a shard worker is a separate OS
process fed over stdin/stdout, and the protocol must never let one
side execute bytes the other produced.  Canonical encoding also makes
frames byte-stable, so tests can diff them.

Frame types (``"type"`` field):

* coordinator -> worker: ``init`` (model spec + serve config),
  ``batch`` (scatter: a list of request wires), ``stats`` (snapshot
  poll, optionally with spans), the migration RPCs ``sessions``
  (placement inventory), ``adopt`` / ``evict`` (session ownership
  transfer on a ring change), ``warm`` (pre-warm caches for moved
  graph affinity), and ``shutdown``;
* worker -> coordinator: ``hello`` (model built, serving),
  ``batch_reply`` (gather: response wires in item order),
  ``stats_reply``, ``sessions_reply`` / ``adopt_reply`` /
  ``evict_reply`` / ``warm_reply`` (each echoing its request's
  ``rpc_id``), ``heartbeat``.

Requests and responses cross the boundary as plain dicts built by
:func:`request_to_wire` / :func:`value_to_wire`; the coordinator
rehydrates responses into :class:`~repro.serve.engine.ServeResponse`
objects whose ``value`` is a :class:`ShardValue` — a light shim
exposing the same ``answer`` / ``chain`` / ``record.is_degraded``
surface the soak runner and callers read, without shipping live
pipeline objects between processes.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from typing import Any, BinaryIO

from ..errors import ServeError
from ..graphs.io import from_dict, to_dict
from ..serve.engine import ServeRequest, ServeResponse

__all__ = [
    "MAX_FRAME_BYTES",
    "ShardProtocolError",
    "ShardRecord",
    "ShardValue",
    "dumps_canonical",
    "read_frame",
    "request_from_wire",
    "request_to_wire",
    "response_from_wire",
    "response_to_wire",
    "value_to_wire",
    "write_frame",
]

#: Hard cap on one frame (a scatter batch of large inline graphs stays
#: far below this; anything bigger is a protocol bug, not data).
MAX_FRAME_BYTES = 64 * 1024 * 1024

_LENGTH = struct.Struct(">I")


class ShardProtocolError(ServeError):
    """A malformed, oversized, or truncated protocol frame."""


def dumps_canonical(obj: Any) -> bytes:
    """Canonical JSON bytes (sorted keys, no whitespace, ASCII)."""
    try:
        return json.dumps(obj, sort_keys=True, separators=(",", ":"),
                          ensure_ascii=True).encode("ascii")
    except (TypeError, ValueError) as exc:
        raise ShardProtocolError(
            f"frame is not JSON-serializable: {exc}") from exc


def write_frame(stream: BinaryIO, obj: Any) -> None:
    """Write one length-prefixed frame and flush.

    Callers serialize concurrent writers themselves (the worker's
    heartbeat thread and reply path share one lock) — a frame must
    never interleave with another.
    """
    payload = dumps_canonical(obj)
    if len(payload) > MAX_FRAME_BYTES:
        raise ShardProtocolError(
            f"frame of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte cap")
    stream.write(_LENGTH.pack(len(payload)) + payload)
    stream.flush()


def _read_exact(stream: BinaryIO, n: int) -> bytes | None:
    """``n`` bytes, or None on clean EOF; raises on a torn frame."""
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        chunk = stream.read(remaining)
        if not chunk:
            if remaining == n and not chunks:
                return None
            raise ShardProtocolError(
                f"stream ended {remaining} bytes short of a frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(stream: BinaryIO) -> dict[str, Any] | None:
    """The next frame as a dict, or ``None`` on clean EOF."""
    header = _read_exact(stream, _LENGTH.size)
    if header is None:
        return None
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ShardProtocolError(
            f"frame header announces {length} bytes (cap "
            f"{MAX_FRAME_BYTES}); stream is corrupt")
    payload = _read_exact(stream, length)
    if payload is None:
        raise ShardProtocolError("stream ended before the frame body")
    try:
        frame = json.loads(payload)
    except json.JSONDecodeError as exc:
        raise ShardProtocolError(f"bad frame JSON: {exc}") from exc
    if not isinstance(frame, dict) or "type" not in frame:
        raise ShardProtocolError(
            f"frame must be an object with a 'type', got {frame!r}")
    return frame


# ----------------------------------------------------------------------
# requests across the boundary
# ----------------------------------------------------------------------
def request_to_wire(request: ServeRequest, request_id: int,
                    parent_span: str | None = None) -> dict[str, Any]:
    """Serialize one request for a scatter frame.

    ``execute`` never crosses the boundary (a
    :class:`~repro.core.pipeline.PipelineResult` holds live pipeline
    objects); the coordinator rejects it at submit time.
    """
    if request.op == "execute":
        raise ShardProtocolError(
            "op 'execute' cannot cross the shard boundary")
    return {
        "request_id": request_id,
        "op": request.op,
        "text": request.text,
        "graph": (None if request.graph is None
                  else to_dict(request.graph)),
        "graph_name": request.graph_name,
        "session_id": request.session_id,
        "client_id": request.client_id,
        "attachments": dict(request.attachments),
        #: Span-context handoff: the submitting thread's span id
        #: becomes the parent of the shard-side request span, so merged
        #: traces keep one tree across the process boundary.
        "parent_span": parent_span,
    }


def request_from_wire(wire: dict[str, Any]) -> ServeRequest:
    graph = wire.get("graph")
    return ServeRequest(
        op=wire["op"],
        text=wire.get("text", ""),
        graph=None if graph is None else from_dict(graph),
        graph_name=wire.get("graph_name"),
        session_id=wire.get("session_id"),
        client_id=wire.get("client_id", "anonymous"),
        attachments=dict(wire.get("attachments") or {}),
    )


# ----------------------------------------------------------------------
# responses across the boundary
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShardRecord:
    """Execution-outcome surface of a gathered ``ask`` response."""

    is_degraded: bool = False
    n_steps: int = 0


@dataclass(frozen=True)
class ShardValue:
    """Gathered response payload (the wire twin of a pipeline value).

    Exposes the attribute surface callers and the soak runner read
    from in-process responses: ``answer``, ``chain`` (rendered),
    ``retrieved``, ``record.is_degraded``.
    """

    kind: str
    answer: str = ""
    chain: str = ""
    intent: str = ""
    graph_type: str | None = None
    retrieved: tuple[str, ...] = ()
    used_fallback: bool = False
    record: ShardRecord | None = None


def value_to_wire(op: str, value: Any) -> dict[str, Any] | None:
    """Canonical JSON form of a served value.

    Shared by the shard worker (serializing its local results) and the
    parity gate (serializing single-process results): both sides
    flatten through this one function, so "byte-identical responses"
    compares the rendered chain, retrieved APIs, answer text, and
    degradation flags of the *actual* pipeline outputs.
    """
    if value is None:
        return None
    if isinstance(value, ShardValue):
        # already a gathered wire twin: re-emit it unchanged, so a
        # sharded response round-trips to the same bytes a local value
        # serializes to (what the parity gate diffs)
        wire: dict[str, Any] = {
            "kind": value.kind,
            "chain": value.chain,
            "intent": value.intent,
            "graph_type": value.graph_type,
            "retrieved": list(value.retrieved),
            "used_fallback": bool(value.used_fallback),
        }
        if value.kind != "propose":
            record = value.record or ShardRecord()
            wire["answer"] = value.answer
            wire["degraded"] = bool(record.is_degraded)
            wire["n_steps"] = int(record.n_steps)
        return wire
    if op == "propose":
        return {
            "kind": "propose",
            "chain": value.chain.render(),
            "intent": value.intent,
            "graph_type": value.graph_type,
            "retrieved": list(value.retrieved),
            "used_fallback": bool(value.used_fallback),
        }
    record = value.record
    return {
        "kind": "ask",
        "answer": value.answer,
        "chain": value.pipeline.chain.render(),
        "intent": value.pipeline.intent,
        "graph_type": value.pipeline.graph_type,
        "retrieved": list(value.pipeline.retrieved),
        "used_fallback": bool(value.pipeline.used_fallback),
        "degraded": bool(record.is_degraded) if record else False,
        "n_steps": len(record.steps) if record else 0,
    }


def response_to_wire(response: ServeResponse) -> dict[str, Any]:
    return {
        "request_id": response.request_id,
        "op": response.op,
        "ok": response.ok,
        "error": response.error,
        "error_type": response.error_type,
        "worker": response.worker,
        "seed": response.seed,
        "service_seconds": response.service_seconds,
        "value": value_to_wire(response.op, response.value),
    }


def response_from_wire(wire: dict[str, Any]) -> ServeResponse:
    value = wire.get("value")
    shim: ShardValue | None = None
    if value is not None:
        record = None
        if value["kind"] == "ask":
            record = ShardRecord(
                is_degraded=bool(value.get("degraded", False)),
                n_steps=int(value.get("n_steps", 0)))
        shim = ShardValue(
            kind=value["kind"],
            answer=value.get("answer", ""),
            chain=value.get("chain", ""),
            intent=value.get("intent", ""),
            graph_type=value.get("graph_type"),
            retrieved=tuple(value.get("retrieved") or ()),
            used_fallback=bool(value.get("used_fallback", False)),
            record=record)
    return ServeResponse(
        request_id=wire["request_id"],
        op=wire["op"],
        ok=bool(wire["ok"]),
        value=shim,
        error=wire.get("error", ""),
        error_type=wire.get("error_type", ""),
        worker=wire.get("worker", ""),
        seed=int(wire.get("seed", 0)),
        service_seconds=float(wire.get("service_seconds", 0.0)),
    )
