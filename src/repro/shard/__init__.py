"""repro.shard — multi-process sharded serving.

The scale-out tier over :mod:`repro.serve`: the GIL caps one Python
process near a single core no matter how many worker threads it runs,
so production throughput means *processes*.  This package partitions
serving across shard workers and keeps the caller surface identical to
the in-process server:

* :mod:`ring` — consistent-hash routing (:class:`HashRing`): stable
  shard ownership for sessions, named graphs, and repeated queries;
* :mod:`protocol` — the length-prefixed canonical-JSON pipe protocol
  (pickle-free by design) plus the request/response wire forms;
* :mod:`worker` — the shard worker process (``python -m
  repro.shard.worker``): a private
  :class:`~repro.serve.engine.ChatGraphServer` rebuilt
  deterministically from a :class:`ShardModelSpec`;
* :mod:`coordinator` — :class:`ShardedChatGraphServer`: admission,
  scatter/gather, hot-graph replicas, heartbeat-driven failure
  detection, breaker-guarded failover, and background restart;
* :mod:`bench` — the ``bench-shard`` CLI body: scaling curve, parity
  gate, and the kill-a-shard spike soak behind BENCH_PR9.json.

Example::

    from repro.config import ServeConfig
    from repro.shard import ShardModelSpec, ShardedChatGraphServer

    server = ShardedChatGraphServer(
        ShardModelSpec(corpus_size=200),
        ServeConfig(shards=4, workers=1))
    with server:
        response = server.ask("how many nodes are there", graph=g)
    print(server.stats()["shards"]["alive"])
"""

from .coordinator import ShardedChatGraphServer, ShardModelSpec
from .protocol import (
    ShardProtocolError,
    ShardRecord,
    ShardValue,
    read_frame,
    request_from_wire,
    request_to_wire,
    response_from_wire,
    response_to_wire,
    value_to_wire,
    write_frame,
)
from .ring import HashRing

__all__ = [
    "HashRing",
    "ShardModelSpec",
    "ShardProtocolError",
    "ShardRecord",
    "ShardValue",
    "ShardedChatGraphServer",
    "read_frame",
    "request_from_wire",
    "request_to_wire",
    "response_from_wire",
    "response_to_wire",
    "value_to_wire",
    "write_frame",
]
