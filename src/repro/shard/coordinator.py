"""The sharded serving tier: routing, scatter/gather, failure handling.

:class:`ShardedChatGraphServer` fronts N shard worker *processes* (see
:mod:`repro.shard.worker`) behind the exact submit/stats surface of the
in-process :class:`~repro.serve.engine.ChatGraphServer`, so the soak
runner and callers drive either one unchanged.  The pieces:

* **admission** — the coordinator owns the only
  :class:`~repro.serve.admission.AdmissionQueue` and
  :class:`~repro.serve.admission.RateLimiter`; shards never
  second-guess it.  A bounded *outstanding-work* counter back-pressures
  the router so a traffic spike fills the admission queue and sheds
  (clients see the same BackpressureError they would single-process)
  instead of silently piling up inside per-shard queues.
* **routing** — a consistent-hash :class:`~repro.shard.ring.HashRing`
  on the session / graph-name / query key keeps each session and each
  graph's cache locality on one shard.  Graphs named in
  ``ServeConfig.shard_hot_graphs`` are *hot*: any of their first
  ``shard_replicas`` ring shards may serve a stateless read, picked by
  least outstanding work.
* **scatter/gather** — a per-shard dispatcher coalesces routed
  requests into scatter frames (reusing
  :class:`~repro.serve.microbatch.MicroBatcher` with an accept-all
  predicate) and pipelines up to ``shard_inflight`` frames per shard;
  a per-shard reader gathers replies and resolves each caller's
  :class:`~repro.serve.engine.PendingRequest` individually — one slow
  or failed request never blocks its frame-mates' resolution order
  guarantees.
* **failure** — missed heartbeats or a dropped pipe mark the shard
  dead: its ``shard:<i>`` circuit in the shared
  :class:`~repro.serve.breaker.BreakerRegistry` is tripped, every
  orphaned in-flight and queued request fails over along its ring
  preference to live shards, and (by default) a background restart
  replaces the process, resets the breaker, and rejoins it to the
  ring's live set.
"""

from __future__ import annotations

import os
import subprocess
import sys
import threading
import time
from dataclasses import dataclass
from typing import Any

from ..config import ServeConfig
from ..errors import ChatGraphError, ServeError
from ..obs.export import merge_traces
from ..obs.metrics import MetricsRegistry, merge_metrics_dumps
from ..obs.trace import Tracer
from ..serve.admission import AdmissionQueue, RateLimiter
from ..serve.breaker import BreakerRegistry
from ..serve.engine import PendingRequest, ServeRequest, ServeResponse
from ..serve.microbatch import MicroBatcher
from ..serve.stats import ServerStats
from .protocol import (
    read_frame,
    request_to_wire,
    response_from_wire,
    write_frame,
)
from .ring import HashRing
from .worker import serve_config_to_wire

__all__ = ["ShardModelSpec", "ShardedChatGraphServer"]

#: Ceiling on one worker-process model build + server start.
SPAWN_TIMEOUT_SECONDS = 180.0
#: Ceiling on one stats round trip to a live shard.
STATS_TIMEOUT_SECONDS = 15.0


@dataclass(frozen=True)
class ShardModelSpec:
    """Value-only recipe every shard uses to rebuild the same model.

    Carrying values instead of objects is what makes the tier
    deterministic: each process applies the same pretraining recipe and
    arrives at identical weights, so any shard's answer to a
    content-seeded request is byte-identical to any other's (and to the
    single-process server's).
    """

    corpus_size: int = 600
    objective: str = "token"
    seed: int = 0
    #: Optional ``ChatGraphConfig.to_dict()`` override; None = defaults.
    config: dict[str, Any] | None = None

    def to_wire(self) -> dict[str, Any]:
        return {"corpus_size": self.corpus_size,
                "objective": self.objective,
                "seed": self.seed,
                "config": self.config}


class _ShardHandle:
    """Coordinator-side state of one shard worker process."""

    def __init__(self, index: int, dispatch_depth: int,
                 inflight_limit: int) -> None:
        self.index = index
        self.name = f"shard:{index}"
        self.lock = threading.Lock()
        self.proc: subprocess.Popen | None = None
        self.pid = 0
        self.alive = False
        #: Bumped on every death; readers/writers born under an older
        #: generation see the mismatch and stand down, which makes the
        #: death path idempotent against racing EOF + heartbeat timeout.
        self.generation = 0
        self.write_lock = threading.Lock()
        #: Requests routed here, waiting for a scatter slot.  An
        #: AdmissionQueue (never rejected in practice: the router's
        #: outstanding limit bounds its depth) so MicroBatcher.collect
        #: can assemble scatter frames straight from it.
        self.dispatch = AdmissionQueue(dispatch_depth)
        self.inflight_limit = inflight_limit
        #: Pipelining throttle: one permit per un-replied scatter frame.
        self.sem = threading.BoundedSemaphore(inflight_limit)
        #: batch_id -> (generation, items, dispatched_at)
        self.inflight: dict[int, tuple[int, list[PendingRequest],
                                       float]] = {}
        #: Real-time stamp of the last frame seen from the process
        #: (heartbeats included).  Liveness is a property of the real
        #: process, so this stays on time.monotonic even when the
        #: serving clock is virtual.
        self.last_beat = 0.0
        #: Requests routed here and not yet resolved (replica routing
        #: picks the least-loaded by this number).
        self.pending_count = 0
        self.routed = 0
        self.deaths = 0
        self.restarts = 0
        self.startup_seconds = 0.0
        #: stats_id -> [threading.Event, reply-frame-or-None]
        self.stats_waiters: dict[int, list[Any]] = {}
        #: Last stats_reply payload (rendered for dead shards).
        self.last_stats: dict[str, Any] | None = None


class ShardedChatGraphServer:
    """Scatter/gather front end over shard worker processes.

    Drop-in for :class:`~repro.serve.engine.ChatGraphServer` from the
    caller's side: same ``submit``/``request``/``ask``/``propose``,
    same admission errors, same ``stats()`` sections (plus a live
    ``"shards"`` section).  ``op="execute"`` is the one surface that
    does not shard — a :class:`~repro.core.pipeline.PipelineResult`
    holds live pipeline objects that cannot cross a process boundary —
    and is rejected at submit.
    """

    def __init__(self, model: ShardModelSpec,
                 config: ServeConfig | None = None,
                 clock: Any = None) -> None:
        self.model = model
        self.config = config or ServeConfig(shards=2)
        if self.config.shards < 1:
            raise ServeError(
                "ShardedChatGraphServer needs ServeConfig.shards >= 1")
        self.clock = time.monotonic if clock is None else clock
        self.queue = AdmissionQueue(self.config.queue_depth,
                                    clock=self.clock)
        self.limiter: RateLimiter | None = None
        if self.config.rate_limit_capacity > 0:
            self.limiter = RateLimiter(
                self.config.rate_limit_capacity,
                self.config.rate_limit_refill_per_second,
                clock=self.clock,
                idle_seconds=self.config.rate_limit_idle_seconds)
        self._stats = ServerStats()
        self.metrics = MetricsRegistry()
        self.tracer: Tracer | None = None
        if self.config.obs.enable_tracing:
            self.tracer = Tracer(seed=self.config.seed,
                                 max_spans=self.config.obs.max_spans)
        #: One ``shard:<i>`` circuit per shard in the registry shape the
        #: soak runner's SLO gates already read (open_names etc.).
        self.breakers = BreakerRegistry(
            failure_threshold=self.config.breaker_failure_threshold,
            failure_rate_threshold=self.config.breaker_failure_rate,
            window_size=self.config.breaker_window,
            cooldown_seconds=self.config.breaker_cooldown_seconds,
            clock=self.clock)
        self.ring = HashRing(range(self.config.shards))
        scatter = max(1, self.config.shard_scatter_batch)
        #: Work admitted past the router but not yet resolved, fleet
        #: wide.  Capping it at full pipeline occupancy (every shard's
        #: every inflight slot holding a full scatter frame, plus one
        #: frame assembling per dispatcher) is what lets the admission
        #: queue fill and shed during spikes.
        self._outstanding_limit = (self.config.shards
                                   * (self.config.shard_inflight + 1)
                                   * scatter)
        self._outstanding = 0
        self._outstanding_cond = threading.Condition()
        dispatch_depth = self._outstanding_limit + scatter
        self.handles = [
            _ShardHandle(index, dispatch_depth,
                         self.config.shard_inflight)
            for index in range(self.config.shards)]
        self._hot = set(self.config.shard_hot_graphs)
        self._router_thread: threading.Thread | None = None
        self._threads: list[threading.Thread] = []
        self._running = False
        self._stopping = False
        self._id_lock = threading.Lock()
        self._next_id = 0
        self._next_batch = 0
        self._next_stats = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ShardedChatGraphServer":
        if self._running:
            raise ServeError("server already started")
        self._stopping = False
        errors: list[tuple[int, BaseException]] = []

        def boot(handle: _ShardHandle) -> None:
            try:
                self._spawn_shard(handle)
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append((handle.index, exc))

        # model builds dominate startup, so boot every shard in
        # parallel: the fleet comes up in one model-build time, not N
        boots = [threading.Thread(target=boot, args=(handle,),
                                  name=f"shard-boot-{handle.index}")
                 for handle in self.handles]
        for thread in boots:
            thread.start()
        for thread in boots:
            thread.join(SPAWN_TIMEOUT_SECONDS)
        if errors:
            self._kill_all()
            index, exc = errors[0]
            raise ServeError(
                f"shard {index} failed to start: {exc}") from exc
        self.queue.reopen()
        self._router_thread = threading.Thread(
            target=self._router_loop, name="shard-router", daemon=True)
        self._threads = [self._router_thread]
        for handle in self.handles:
            self._threads.append(threading.Thread(
                target=self._dispatcher_loop, args=(handle,),
                name=f"shard-dispatch-{handle.index}", daemon=True))
        self._threads.append(threading.Thread(
            target=self._heartbeat_monitor, name="shard-heartbeats",
            daemon=True))
        self._running = True
        for thread in self._threads:
            thread.start()
        return self

    def stop(self, drain: bool = True, timeout: float = 30.0) -> None:
        if not self._running:
            return
        self.queue.close()
        deadline = time.monotonic() + timeout
        if not drain:
            for item in self.queue.drain():
                self._resolve_failure(
                    item, ServeError("server stopped before the request "
                                     "was served"), counted=False)
        # the router exits once the closed queue is empty *and* its last
        # pop finished routing, so joining it (rather than sampling the
        # queue length) closes the popped-but-not-yet-counted window
        if self._router_thread is not None:
            self._router_thread.join(
                max(0.1, deadline - time.monotonic()))
        if drain:
            while time.monotonic() < deadline:
                with self._outstanding_cond:
                    if self._outstanding == 0:
                        break
                time.sleep(0.01)
        self._stopping = True
        for handle in self.handles:
            handle.dispatch.close()
            with handle.lock:
                proc = handle.proc if handle.alive else None
            if proc is not None:
                try:
                    with handle.write_lock:
                        write_frame(proc.stdin, {"type": "shutdown"})
                except (OSError, ValueError, ChatGraphError):
                    pass
        for handle in self.handles:
            with handle.lock:
                proc = handle.proc
            if proc is None:
                continue
            try:
                proc.wait(max(0.1, deadline - time.monotonic()))
            except subprocess.TimeoutExpired:
                proc.kill()
        self._running = False
        with self._outstanding_cond:
            self._outstanding_cond.notify_all()
        for thread in self._threads:
            thread.join(max(0.1, deadline - time.monotonic()))
        self._threads = []

    def __enter__(self) -> "ShardedChatGraphServer":
        if not self._running:
            self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    @property
    def running(self) -> bool:
        return self._running

    # ------------------------------------------------------------------
    # process management
    # ------------------------------------------------------------------
    def _spawn_shard(self, handle: _ShardHandle) -> None:
        """Start one worker process and wait for its hello."""
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.shard.worker"],
            stdin=subprocess.PIPE, stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL, env=dict(os.environ))
        try:
            write_frame(proc.stdin, {
                "type": "init", "shard": handle.index,
                "model": self.model.to_wire(),
                "serve": serve_config_to_wire(self.config)})
            hello = read_frame(proc.stdout)
        except (OSError, ValueError, ChatGraphError) as exc:
            proc.kill()
            raise ServeError(
                f"shard {handle.index} died during startup: {exc}"
            ) from exc
        if hello is None or hello.get("type") != "hello":
            proc.kill()
            raise ServeError(
                f"shard {handle.index} sent {hello!r} instead of hello")
        with handle.lock:
            handle.proc = proc
            handle.pid = int(hello.get("pid", proc.pid))
            handle.startup_seconds = float(
                hello.get("startup_seconds", 0.0))
            handle.alive = True
            handle.generation += 1
            handle.sem = threading.BoundedSemaphore(handle.inflight_limit)
            handle.last_beat = time.monotonic()
            generation = handle.generation
        reader = threading.Thread(
            target=self._reader_loop, args=(handle, generation, proc),
            name=f"shard-reader-{handle.index}-g{generation}",
            daemon=True)
        reader.start()

    def _kill_all(self) -> None:
        for handle in self.handles:
            with handle.lock:
                proc, handle.proc, handle.alive = handle.proc, None, False
            if proc is not None:
                proc.kill()

    def kill_shard(self, index: int) -> None:
        """Hard-kill one worker (chaos hook; SIGKILL, no goodbye).

        Recovery is the normal death path: the reader sees EOF, the
        breaker trips, orphans fail over, and (unless ``shard_restart``
        is off) a replacement process comes up in the background.
        """
        handle = self.handles[index]
        with handle.lock:
            proc = handle.proc
        if proc is not None:
            proc.kill()

    def _restart_shard(self, handle: _ShardHandle) -> None:
        try:
            self._spawn_shard(handle)
        except ChatGraphError:
            self.metrics.incr("shard_restart_failed")
            return
        handle.restarts += 1
        self._stats.incr("shard_restarts")
        self.metrics.incr("shard_restarts")
        # the replacement is a fresh process: its circuit starts closed
        self.breakers.reset_one(handle.name)

    # ------------------------------------------------------------------
    # submission (the ChatGraphServer surface)
    # ------------------------------------------------------------------
    def submit(self, request: ServeRequest,
               parent_span_id: str | None = None) -> PendingRequest:
        """Admit ``request``; same contract as the in-process server."""
        if not self._running:
            raise ServeError("server is not running; call start()")
        request.validate()
        if request.op == "execute":
            raise ServeError(
                "op 'execute' is not shardable (PipelineResult holds "
                "live pipeline objects); use the in-process server for "
                "the propose/confirm/execute loop")
        if self.limiter is not None:
            try:
                self.limiter.admit(request.client_id)
            except ChatGraphError:
                self._stats.incr("rejected_rate_limit")
                raise
        with self._id_lock:
            self._next_id += 1
            request_id = self._next_id
        pending = PendingRequest(request, request_id,
                                 time.perf_counter())
        if parent_span_id is not None:
            pending.parent_span_id = parent_span_id
        elif self.tracer is not None:
            pending.parent_span_id = self.tracer.current_id()
        pending._tried = set()
        try:
            self.queue.put(pending)
        except ChatGraphError:
            self._stats.incr("rejected_backpressure")
            raise
        self._stats.incr("admitted")
        return pending

    def request(self, request: ServeRequest,
                timeout: float | None = None) -> ServeResponse:
        return self.submit(request).result(timeout)

    def propose(self, text: str, graph: Any = None,
                **kwargs: Any) -> ServeResponse:
        return self.request(ServeRequest(op="propose", text=text,
                                         graph=graph, **kwargs))

    def ask(self, text: str, graph: Any = None,
            **kwargs: Any) -> ServeResponse:
        return self.request(ServeRequest(op="ask", text=text,
                                         graph=graph, **kwargs))

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    @staticmethod
    def routing_key(request: ServeRequest) -> str:
        """The consistent-hash key of one request.

        Sessions pin to their shard (dialog state lives there); named
        graphs pin to theirs (epoch-pinned views and warm caches);
        inline-graph one-shots key on graph name + text so repeats of
        the same question reuse the same shard's caches.
        """
        if request.session_id is not None:
            return f"s:{request.session_id}"
        if request.graph_name is not None:
            return f"g:{request.graph_name}"
        graph_name = request.graph.name if request.graph is not None \
            else ""
        return f"q:{graph_name}|{request.text}"

    def _live(self, index: int, tried: set[int]) -> bool:
        if index in tried:
            return False
        handle = self.handles[index]
        return handle.alive and handle.name not in \
            self.breakers.open_names()

    def _pick_shard(self, item: PendingRequest) -> _ShardHandle | None:
        request = item.request
        key = self.routing_key(request)
        tried: set[int] = item._tried
        if (request.graph_name in self._hot
                and request.session_id is None):
            # hot named graph: stateless reads spread over the replica
            # set (the first shard_replicas shards of the preference
            # walk), least loaded first
            replicas = [i for i in self.ring.preferred(
                key, self.config.shard_replicas)
                if self._live(i, tried)]
            if replicas:
                return self.handles[min(
                    replicas,
                    key=lambda i: self.handles[i].pending_count)]
        for index in self.ring.preference(key):
            if self._live(index, tried):
                return self.handles[index]
        # last resort: every preferred shard is dead or already tried —
        # any live shard beats failing the request (all state needed to
        # serve is rebuilt from the shared store / request content)
        for index in self.ring.shards:
            if self._live(index, tried):
                return self.handles[index]
        return None

    def _route(self, item: PendingRequest, failover: bool = False) -> None:
        if not failover:
            # count the item outstanding *before* picking a shard: every
            # path below either parks it on a dispatch queue or resolves
            # it (which decrements), so the counter can never leak
            with self._outstanding_cond:
                self._outstanding += 1
        handle = self._pick_shard(item)
        if handle is None:
            self._resolve_failure(
                item, ServeError("no live shard available"),
                counted=True)
            return
        handle.routed += 1
        with self._outstanding_cond:
            handle.pending_count += 1
        try:
            handle.dispatch.put(item)
        except ChatGraphError as exc:
            # dispatch queues are sized past the outstanding limit, so
            # this only fires at shutdown; fail the item cleanly
            with self._outstanding_cond:
                handle.pending_count -= 1
            self._resolve_failure(item, exc, counted=True)

    def _router_loop(self) -> None:
        while True:
            with self._outstanding_cond:
                while (self._running
                       and self._outstanding >= self._outstanding_limit):
                    self._outstanding_cond.wait(0.1)
            item = self.queue.get(timeout=0.05)
            if item is None:
                if self.queue.closed and len(self.queue) == 0:
                    return
                if not self._running:
                    return
                continue
            self._route(item)

    # ------------------------------------------------------------------
    # scatter
    # ------------------------------------------------------------------
    def _dispatcher_loop(self, handle: _ShardHandle) -> None:
        batcher = MicroBatcher(
            max(1, self.config.shard_scatter_batch),
            self.config.shard_scatter_deadline_seconds,
            batchable_fn=lambda item: True)
        while True:
            item = handle.dispatch.get(timeout=0.05)
            if item is None:
                if handle.dispatch.closed and len(handle.dispatch) == 0:
                    return
                continue
            batch, passthrough = batcher.collect(handle.dispatch, item)
            # accept-all predicate -> everything lands in the batch
            self._send_batch(handle, batch + passthrough)

    def _send_batch(self, handle: _ShardHandle,
                    items: list[PendingRequest]) -> None:
        if not items:
            return
        # bounded pipelining: block this shard's dispatcher (not the
        # router, not callers) until a frame slot frees; re-check
        # liveness each second so a death releases us via failover
        sem = handle.sem
        while not sem.acquire(timeout=1.0):
            if not handle.alive or handle.sem is not sem:
                # the shard died while we waited (its sem was replaced):
                # this batch was never inflight, so re-route it whole
                for item in items:
                    self._failover_item(item, handle.index)
                return
        with self._id_lock:
            self._next_batch += 1
            batch_id = self._next_batch
        wires = []
        for item in items:
            wires.append(request_to_wire(item.request, item.request_id,
                                         parent_span=item.parent_span_id))
        dispatched_at = time.perf_counter()
        for item in items:
            item.dispatched_at = dispatched_at
        # registration happens under the handle lock with a liveness
        # re-check: once the entry is in ``inflight``, a concurrent
        # death is guaranteed to see and fail it over
        with handle.lock:
            if not handle.alive or handle.sem is not sem:
                dead = True
            else:
                dead = False
                generation = handle.generation
                proc = handle.proc
                handle.inflight[batch_id] = (generation, items,
                                             dispatched_at)
        if dead:
            for item in items:
                self._failover_item(item, handle.index)
            return
        try:
            with handle.write_lock:
                write_frame(proc.stdin, {
                    "type": "batch", "batch_id": batch_id,
                    "items": wires})
        except (OSError, ValueError, ChatGraphError):
            self._on_shard_down(handle, generation)
            # the death path usually fails the batch over; if it raced
            # us and already ran, the entry is ours to clean up
            with handle.lock:
                entry = handle.inflight.pop(batch_id, None)
            if entry is not None:
                for item in entry[1]:
                    self._failover_item(item, handle.index)
            return
        self.metrics.observe("scatter_batch_size", float(len(items)))

    # ------------------------------------------------------------------
    # gather
    # ------------------------------------------------------------------
    def _reader_loop(self, handle: _ShardHandle, generation: int,
                     proc: subprocess.Popen) -> None:
        try:
            while True:
                with handle.lock:
                    if handle.generation != generation:
                        return  # superseded; the new reader owns the pipe
                try:
                    frame = read_frame(proc.stdout)
                except ChatGraphError:
                    return
                if frame is None:
                    return
                handle.last_beat = time.monotonic()
                kind = frame.get("type")
                if kind == "batch_reply":
                    self._gather(handle, generation, frame)
                elif kind == "stats_reply":
                    self._accept_stats(handle, frame)
                # heartbeats only refresh last_beat
        finally:
            self._on_shard_down(handle, generation)

    def _gather(self, handle: _ShardHandle, generation: int,
                frame: dict[str, Any]) -> None:
        with handle.lock:
            entry = handle.inflight.pop(frame.get("batch_id"), None)
        if entry is None or entry[0] != generation:
            return
        __, items, dispatched_at = entry
        service = time.perf_counter() - dispatched_at
        replies = frame.get("replies") or []
        by_id = {wire.get("request_id"): wire for wire in replies}
        try:
            handle.sem.release()
        except ValueError:
            pass
        with self._outstanding_cond:
            handle.pending_count -= len(items)
        for item in items:
            wire = by_id.get(item.request_id)
            if wire is None:
                self._resolve_failure(item, ServeError(
                    f"shard {handle.index} dropped request "
                    f"{item.request_id} from its reply"), counted=True)
                continue
            response = response_from_wire(wire)
            self._resolve_item(item, response, service)

    def _resolve_item(self, item: PendingRequest,
                      response: ServeResponse, service: float) -> None:
        """The single resolution path: stats, timings, caller wake-up."""
        queued = item.dispatched_at - item.enqueued_at
        response.queued_seconds = queued
        response.service_seconds = service
        if not response.ok:
            self._stats.incr("failed")
        self._stats.observe("queued", queued)
        self._stats.observe("service", service)
        self._stats.observe("total", queued + service)
        self._stats.incr(f"op_{item.request.op}")
        self.queue.record_service_time(service)
        item._resolve(response)
        self._settle_outstanding()

    def _resolve_failure(self, item: PendingRequest, exc: Exception,
                         counted: bool) -> None:
        """Fail one request.  ``counted`` = it was routed (outstanding).

        Un-routed items (a non-drain shutdown draining the admission
        queue) resolve without touching the failure counters or the
        outstanding counter, mirroring the in-process server's
        shutdown drain.
        """
        if counted:
            self._stats.incr("failed")
            self._stats.incr(f"op_{item.request.op}")
        item._resolve(ServeResponse(
            request_id=item.request_id, op=item.request.op, ok=False,
            error=str(exc), error_type=type(exc).__name__))
        if counted:
            self._settle_outstanding()

    def _settle_outstanding(self) -> None:
        with self._outstanding_cond:
            self._outstanding -= 1
            self._outstanding_cond.notify_all()

    # ------------------------------------------------------------------
    # failure handling
    # ------------------------------------------------------------------
    def _failover_item(self, item: PendingRequest, from_shard: int) -> None:
        """Re-route one orphaned request after its shard died."""
        item._tried.add(from_shard)
        with self._outstanding_cond:
            self.handles[from_shard].pending_count -= 1
        self._stats.incr("shard_failovers")
        self.metrics.incr("shard_failovers")
        self._route(item, failover=True)

    def _on_shard_down(self, handle: _ShardHandle,
                       generation: int) -> None:
        stopping = self._stopping
        with handle.lock:
            if handle.generation != generation or not handle.alive:
                return
            handle.alive = False
            proc, handle.proc = handle.proc, None
            # replace the semaphore so blocked dispatchers notice and
            # new sends against the next generation start with a full
            # pipeline budget
            handle.sem = threading.BoundedSemaphore(handle.inflight_limit)
            orphans: list[PendingRequest] = []
            for batch_id in [b for b, entry in handle.inflight.items()
                             if entry[0] == generation]:
                entry = handle.inflight.pop(batch_id, None)
                if entry is not None:
                    orphans.extend(entry[1])
            if not stopping:
                handle.deaths += 1
        if proc is not None:
            proc.kill()
        if not stopping:
            # a worker EOF-ing during coordinated shutdown is a clean
            # exit, not a death: no counters, no breaker, no restart
            self._stats.incr("shard_deaths")
            self.metrics.incr("shard_deaths")
            if self.breakers.trip(handle.name):
                # surface through the same counter the robustness
                # layer uses, so existing SLO gates see the trip
                self._stats.incr("breaker_opened")
        # queued-but-unsent work follows the inflight orphans
        orphans.extend(handle.dispatch.drain())
        for item in orphans:
            self._failover_item(item, handle.index)
        # fail any stats poll blocked on this shard
        with handle.lock:
            waiters = list(handle.stats_waiters.values())
            handle.stats_waiters.clear()
        for waiter in waiters:
            waiter[0].set()
        if (self.config.shard_restart and not stopping
                and not self._stopping):
            threading.Thread(
                target=self._restart_shard, args=(handle,),
                name=f"shard-restart-{handle.index}",
                daemon=True).start()

    def _heartbeat_monitor(self) -> None:
        interval = self.config.shard_heartbeat_seconds
        timeout = self.config.shard_heartbeat_timeout_seconds
        while self._running:
            time.sleep(interval)
            now = time.monotonic()
            for handle in self.handles:
                with handle.lock:
                    alive = handle.alive
                    stale = now - handle.last_beat
                    generation = handle.generation
                    proc = handle.proc
                if alive and stale > timeout:
                    # the process is wedged (a clean exit would have
                    # EOF'd the reader first): kill it so the reader
                    # unblocks and runs the death path
                    self.metrics.incr("shard_heartbeat_timeouts")
                    if proc is not None:
                        proc.kill()
                    self._on_shard_down(handle, generation)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def _poll_shards(self, include_spans: bool = False,
                     timeout: float = STATS_TIMEOUT_SECONDS
                     ) -> dict[int, dict[str, Any]]:
        """One stats round trip to every live shard (dead ones skip)."""
        waiting: list[tuple[_ShardHandle, int, list[Any]]] = []
        for handle in self.handles:
            with handle.lock:
                if not handle.alive:
                    continue
                proc = handle.proc
                with self._id_lock:
                    self._next_stats += 1
                    stats_id = self._next_stats
                waiter = [threading.Event(), None]
                handle.stats_waiters[stats_id] = waiter
            try:
                with handle.write_lock:
                    write_frame(proc.stdin, {
                        "type": "stats", "stats_id": stats_id,
                        "include_spans": bool(include_spans)})
            except (OSError, ValueError, ChatGraphError):
                with handle.lock:
                    handle.stats_waiters.pop(stats_id, None)
                continue
            waiting.append((handle, stats_id, waiter))
        deadline = time.monotonic() + timeout
        replies: dict[int, dict[str, Any]] = {}
        for handle, stats_id, waiter in waiting:
            waiter[0].wait(max(0.0, deadline - time.monotonic()))
            with handle.lock:
                handle.stats_waiters.pop(stats_id, None)
            if waiter[1] is not None:
                replies[handle.index] = waiter[1]
                handle.last_stats = waiter[1]
        return replies

    def _accept_stats(self, handle: _ShardHandle,
                      frame: dict[str, Any]) -> None:
        with handle.lock:
            waiter = handle.stats_waiters.get(frame.get("stats_id"))
        if waiter is not None:
            waiter[1] = frame
            waiter[0].set()

    def stats(self) -> dict[str, Any]:
        """Coordinator-authoritative counters + a live shard map.

        Top-level ``counters``/``latency`` come from the coordinator
        alone — every admitted request resolves exactly once here, so
        reconciliation against a workload ledger is exact and nothing
        a shard also counted is double-reported.  Shard-side detail
        (their own counters, caches, stores) lives under
        ``"shards"]["per_shard"]``; sessions and caches are merged
        fleet-wide views.
        """
        replies = self._poll_shards()
        snapshot = self._stats.snapshot()
        snapshot["queue"] = {"depth": self.queue.maxsize,
                             "size": len(self.queue)}
        active = 0
        cache_totals: dict[str, dict[str, Any]] = {}
        per_shard: dict[str, dict[str, Any]] = {}
        epochs: dict[str, dict[str, int]] = {}
        for handle in self.handles:
            reply = replies.get(handle.index)
            stats = (reply or handle.last_stats or {}).get("stats", {})
            entry: dict[str, Any] = {
                "alive": handle.alive,
                "pid": handle.pid,
                "generation": handle.generation,
                "routed": handle.routed,
                "pending": handle.pending_count,
                "inflight_batches": len(handle.inflight),
                "dispatch_queue": len(handle.dispatch),
                "deaths": handle.deaths,
                "restarts": handle.restarts,
                "startup_seconds": round(handle.startup_seconds, 3),
                "breaker": self.breakers.breaker(
                    handle.name).snapshot(),
            }
            if stats:
                entry["counters"] = stats.get("counters", {})
                entry["sessions"] = stats.get("sessions", {})
                entry["caches"] = stats.get("caches", {})
                entry["store"] = stats.get("store", {})
                active += stats.get("sessions", {}).get("active", 0)
                for cache, values in stats.get("caches", {}).items():
                    totals = cache_totals.setdefault(
                        cache, {"hits": 0, "misses": 0, "evictions": 0,
                                "size": 0})
                    for field in totals:
                        totals[field] += values.get(field, 0)
                for name, graph_stats in stats.get("store", {}).items():
                    epochs.setdefault(name, {})[str(handle.index)] = \
                        graph_stats.get("epoch", 0)
            per_shard[str(handle.index)] = entry
        for totals in cache_totals.values():
            seen = totals["hits"] + totals["misses"]
            totals["hit_rate"] = round(
                totals["hits"] / seen, 4) if seen else 0.0
        snapshot["sessions"] = {"active": active}
        snapshot["caches"] = cache_totals
        snapshot["breakers"] = self.breakers.snapshot()
        snapshot["rate_limiter"] = {
            "clients": len(self.limiter)
            if self.limiter is not None else 0}
        snapshot["workers"] = self.config.workers
        snapshot["pipeline_stages"] = []
        #: Epoch pinning across processes: every shard reports each
        #: named graph's epoch; skew means a shard has not yet observed
        #: a compaction/ingest another shard has.
        snapshot["store"] = {
            "epochs": epochs,
            "epoch_skew": sorted(
                name for name, by_shard in epochs.items()
                if len(set(by_shard.values())) > 1),
        }
        snapshot["shards"] = {
            "count": len(self.handles),
            "alive": sum(1 for h in self.handles if h.alive),
            "per_shard": per_shard,
        }
        return snapshot

    def metrics_snapshot(self) -> dict[str, Any]:
        """Fleet-wide metrics: coordinator + every shard's registry.

        Shard registries are merged losslessly (counters sum,
        histograms merge at the bucket level — see
        :func:`repro.obs.merge_metrics_dumps`).
        """
        replies = self._poll_shards()
        dumps = [self.metrics.dump()]
        dumps.extend(reply["metrics"] for reply in replies.values()
                     if reply.get("metrics"))
        merged = merge_metrics_dumps(dumps)
        base = self._stats.snapshot()
        return {
            "counters": {**base["counters"], **merged["counters"]},
            "gauges": merged["gauges"],
            "latency": base["latency"],
            "histograms": merged["histograms"],
            "caches": self.stats()["caches"],
            "breakers": self.breakers.snapshot(),
            "trace": (self.tracer.stats()
                      if self.tracer is not None else {}),
        }

    def collect_spans(self) -> list[dict[str, Any]]:
        """One merged structural trace across the process boundary.

        Shard-side request spans parent under the coordinator-side
        caller spans (the handoff travels in each request wire), so the
        merged view reads as one tree.
        """
        replies = self._poll_shards(include_spans=True)
        own: list[Any] = []
        if self.tracer is not None:
            own = [span.to_dict(canonical=True)
                   for span in self.tracer.finished_spans()]
        shard_spans = [reply.get("spans") or []
                       for reply in replies.values()]
        return merge_traces(own, *shard_spans)
