"""The sharded serving facade over the unified request-plane runtime.

:class:`ShardedChatGraphServer` fronts N shard worker *processes* (see
:mod:`repro.shard.worker`) behind the exact submit/stats surface of the
in-process :class:`~repro.serve.engine.ChatGraphServer`, so the soak
runner and callers drive either one unchanged.  Both facades run on
the same :class:`~repro.runtime.lifecycle.RequestLifecycle`; this one
plugs in the :class:`~repro.runtime.shard.ShardBackend`, which owns
the consistent-hash routing, scatter/gather dispatch, failure handling
and live fleet reshaping (see that module for the mechanics).

Admission, rate limiting, stats and the reply edge are the lifecycle's
— a traffic spike fills the one admission queue and sheds with the
same BackpressureError a single-process caller would see, and every
admitted request resolves exactly once through the shared reply path,
which is what makes ledger reconciliation against a workload exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..config import ServeConfig
from ..errors import ServeError
from ..serve.engine import PendingRequest, ServeRequest, ServeResponse

__all__ = ["ShardModelSpec", "ShardedChatGraphServer"]


@dataclass(frozen=True)
class ShardModelSpec:
    """Value-only recipe every shard uses to rebuild the same model.

    Carrying values instead of objects is what makes the tier
    deterministic: each process applies the same pretraining recipe and
    arrives at identical weights, so any shard's answer to a
    content-seeded request is byte-identical to any other's (and to the
    single-process server's).
    """

    corpus_size: int = 600
    objective: str = "token"
    seed: int = 0
    #: Optional ``ChatGraphConfig.to_dict()`` override; None = defaults.
    config: dict[str, Any] | None = None

    def to_wire(self) -> dict[str, Any]:
        return {"corpus_size": self.corpus_size,
                "objective": self.objective,
                "seed": self.seed,
                "config": self.config}


class ShardedChatGraphServer:
    """Scatter/gather front end over shard worker processes.

    Drop-in for :class:`~repro.serve.engine.ChatGraphServer` from the
    caller's side: same ``submit``/``request``/``ask``/``propose``,
    same admission errors, same ``stats()`` sections (plus a live
    ``"shards"`` section).  ``op="execute"`` is the one surface that
    does not shard — a :class:`~repro.core.pipeline.PipelineResult`
    holds live pipeline objects that cannot cross a process boundary —
    and is rejected at submit.

    :meth:`add_shard` / :meth:`remove_shard` reshape the fleet live:
    pinned sessions and named-graph affinity migrate to their new
    ring-preferred shards with zero lost requests (see
    :mod:`repro.runtime.migration`).
    """

    def __init__(self, model: ShardModelSpec,
                 config: ServeConfig | None = None,
                 clock: Any = None) -> None:
        self.model = model
        self.config = config or ServeConfig(shards=2)
        if self.config.shards < 1:
            raise ServeError(
                "ShardedChatGraphServer needs ServeConfig.shards >= 1")
        from ..runtime import RequestLifecycle, ShardBackend

        self.backend = ShardBackend(model.to_wire())
        self.lifecycle = RequestLifecycle(self.config, self.backend,
                                          clock=clock)

    # ------------------------------------------------------------------
    # the runtime's shared surfaces, re-exposed for callers and tests
    # ------------------------------------------------------------------
    @property
    def clock(self) -> Any:
        return self.lifecycle.clock

    @property
    def queue(self) -> Any:
        return self.lifecycle.queue

    @property
    def limiter(self) -> Any:
        return self.lifecycle.limiter

    @property
    def _stats(self) -> Any:
        return self.lifecycle.stats

    @property
    def metrics(self) -> Any:
        return self.lifecycle.metrics

    @property
    def tracer(self) -> Any:
        return self.lifecycle.tracer

    @property
    def breakers(self) -> Any:
        return self.lifecycle.breakers

    @property
    def ring(self) -> Any:
        return self.backend.ring

    @property
    def handles(self) -> list[Any]:
        return self.backend.handles

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ShardedChatGraphServer":
        self.lifecycle.start()
        return self

    def stop(self, drain: bool = True, timeout: float = 30.0) -> None:
        self.lifecycle.stop(drain=drain, timeout=timeout)

    def __enter__(self) -> "ShardedChatGraphServer":
        if not self.running:
            self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    @property
    def running(self) -> bool:
        return self.lifecycle.running

    # ------------------------------------------------------------------
    # submission (the ChatGraphServer surface)
    # ------------------------------------------------------------------
    def submit(self, request: ServeRequest,
               parent_span_id: str | None = None) -> PendingRequest:
        """Admit ``request``; same contract as the in-process server."""
        return self.lifecycle.submit(request,
                                     parent_span_id=parent_span_id)

    def request(self, request: ServeRequest,
                timeout: float | None = None) -> ServeResponse:
        return self.lifecycle.request(request, timeout)

    def propose(self, text: str, graph: Any = None,
                **kwargs: Any) -> ServeResponse:
        return self.request(ServeRequest(op="propose", text=text,
                                         graph=graph, **kwargs))

    def ask(self, text: str, graph: Any = None,
            **kwargs: Any) -> ServeResponse:
        return self.request(ServeRequest(op="ask", text=text,
                                         graph=graph, **kwargs))

    # ------------------------------------------------------------------
    # routing / fleet management
    # ------------------------------------------------------------------
    @staticmethod
    def routing_key(request: ServeRequest) -> str:
        """The consistent-hash key of one request (see the backend)."""
        from ..runtime import ShardBackend

        return ShardBackend.routing_key(request)

    def kill_shard(self, index: int) -> None:
        """Hard-kill one worker (chaos hook; SIGKILL, no goodbye)."""
        self.backend.kill_shard(index)

    def add_shard(self) -> dict[str, Any]:
        """Grow the fleet by one shard, live.  Returns the migration
        report (planned moves, sessions migrated, warmed caches)."""
        return self.backend.add_shard()

    def remove_shard(self, index: int) -> dict[str, Any]:
        """Shrink the fleet by one shard, live, after migrating its
        pinned sessions to the survivors.  Returns the migration
        report."""
        return self.backend.remove_shard(index)

    # ------------------------------------------------------------------
    # introspection (one snapshot builder; see repro.runtime.snapshot)
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """Coordinator-authoritative counters + a live shard map.

        Top-level ``counters``/``latency`` come from the coordinator
        alone — every admitted request resolves exactly once here, so
        reconciliation against a workload ledger is exact and nothing
        a shard also counted is double-reported.  Shard-side detail
        (their own counters, caches, stores) lives under
        ``["shards"]["per_shard"]``; sessions and caches are merged
        fleet-wide views.
        """
        return self.lifecycle.stats_snapshot()

    def metrics_snapshot(self) -> dict[str, Any]:
        """Fleet-wide metrics: coordinator + every shard's registry.

        Shard registries are merged losslessly (counters sum,
        histograms merge at the bucket level — see
        :func:`repro.obs.merge_metrics_dumps`).
        """
        return self.lifecycle.metrics_snapshot()

    def collect_spans(self) -> list[dict[str, Any]]:
        """One merged structural trace across the process boundary."""
        return self.backend.collect_spans()
