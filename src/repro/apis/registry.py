"""API specifications and the registry.

Every analysis capability of ChatGraph is an :class:`APISpec`: a named,
categorized, natural-language-described callable.  The description is
what the retrieval module embeds; the category is what graph-type
routing (scenario 1) filters on; the callable is what the executor runs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterator

from ..errors import APIError, UnknownAPIError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .executor import ChainContext


class Category(str, enum.Enum):
    """API categories; used to route by predicted graph type."""

    GENERIC = "generic"
    SOCIAL = "social"
    MOLECULE = "molecule"
    KNOWLEDGE = "knowledge"
    EDIT = "edit"
    REPORT = "report"


@dataclass(frozen=True)
class APISpec:
    """One registered analysis API.

    ``func`` receives the live :class:`~repro.apis.executor.ChainContext`
    plus the node's keyword parameters and returns a JSON-able result.
    """

    name: str
    description: str
    category: Category
    func: Callable[..., Any]
    #: Names of chain-level inputs the API reads from the context
    #: (documentation + validation aid), e.g. ``("graph",)``.
    requires: tuple[str, ...] = ("graph",)
    #: Parameter names accepted as chain-node params, with defaults.
    params: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "").isalnum():
            raise APIError(f"bad API name {self.name!r}")
        if not self.description.strip():
            raise APIError(f"API {self.name!r} needs a description")

    def call(self, context: "ChainContext", **overrides: Any) -> Any:
        """Invoke the API with defaults merged under ``overrides``."""
        unknown = set(overrides) - set(self.params)
        if unknown:
            raise APIError(
                f"API {self.name!r} got unknown params {sorted(unknown)}")
        kwargs = {**self.params, **overrides}
        return self.func(context, **kwargs)


class APIRegistry:
    """Name-indexed collection of :class:`APISpec` objects."""

    def __init__(self) -> None:
        self._specs: dict[str, APISpec] = {}

    def register(self, spec: APISpec) -> APISpec:
        if spec.name in self._specs:
            raise APIError(f"API {spec.name!r} already registered")
        self._specs[spec.name] = spec
        return spec

    def get(self, name: str) -> APISpec:
        try:
            return self._specs[name]
        except KeyError:
            raise UnknownAPIError(name) from None

    def __contains__(self, name: object) -> bool:
        return name in self._specs

    def __len__(self) -> int:
        return len(self._specs)

    def __iter__(self) -> Iterator[APISpec]:
        return iter(self._specs.values())

    def names(self) -> list[str]:
        """All API names in registration order."""
        return list(self._specs)

    def by_category(self, *categories: Category) -> list[APISpec]:
        """APIs belonging to any of ``categories``."""
        wanted = set(categories)
        return [spec for spec in self._specs.values()
                if spec.category in wanted]

    def descriptions(self) -> dict[str, str]:
        """Map name -> description (what the retrieval module embeds)."""
        return {spec.name: spec.description for spec in self._specs.values()}


def default_registry() -> APIRegistry:
    """The full ChatGraph catalog (fresh registry each call)."""
    from .catalog import register_all
    registry = APIRegistry()
    register_all(registry)
    return registry
