"""Monitored execution of API chains (paper scenario 4).

The executor walks a validated chain step by step, feeding each API the
shared :class:`ChainContext`, and emits :class:`ExecutionEvent` objects
to registered listeners — the chat session renders these as the progress
monitor the paper demonstrates in Fig. 7.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable

from ..errors import ChainExecutionError
from ..graphs.graph import Graph
from .chain import APIChain
from .registry import APIRegistry


@dataclass
class ChainContext:
    """Shared state visible to every API in a chain.

    APIs read the prompt ``graph``, optional substrates (the molecule
    ``database``, the knowledge-base ``rules``), the results of earlier
    steps, and may replace ``graph`` (edit APIs do).
    """

    #: The graph uploaded with the prompt (edit APIs mutate/replace it).
    graph: Graph | None = None
    #: Molecule database for similarity search (scenario 2).
    database: Any = None
    #: Extra substrate objects keyed by name.
    extras: dict[str, Any] = field(default_factory=dict)
    #: Results of completed steps: step index -> result.
    results: dict[int, Any] = field(default_factory=dict)
    #: API names of completed steps: step index -> name.
    step_names: dict[int, str] = field(default_factory=dict)
    #: Optional user-confirmation callback (cleaning scenario): receives
    #: a question string and a payload, returns True to proceed.
    confirm: Callable[[str, Any], bool] | None = None

    def latest(self, api_name: str) -> Any:
        """Most recent result produced by ``api_name`` (None if absent)."""
        for index in sorted(self.results, reverse=True):
            if self.step_names.get(index) == api_name:
                return self.results[index]
        return None

    def ask(self, question: str, payload: Any) -> bool:
        """Route a confirmation to the user; default-approve if no hook."""
        if self.confirm is None:
            return True
        return self.confirm(question, payload)


@dataclass(frozen=True)
class ExecutionEvent:
    """One progress event; the session's monitor panel renders these."""

    kind: str              # chain_started | step_started | step_finished
    #                      # | step_failed | chain_finished | chain_failed
    step_index: int | None
    api_name: str | None
    elapsed_seconds: float
    detail: str = ""
    #: Total steps of the chain (set on ``chain_started``); consumers
    #: should prefer this over parsing ``detail``.
    n_steps: int | None = None

    def render(self) -> str:
        where = "" if self.step_index is None else \
            f" step {self.step_index} ({self.api_name})"
        suffix = f": {self.detail}" if self.detail else ""
        return f"[{self.elapsed_seconds:7.3f}s] {self.kind}{where}{suffix}"


@dataclass
class StepRecord:
    """Outcome of one executed step."""

    index: int
    api_name: str
    result: Any
    seconds: float
    ok: bool
    error: str = ""


@dataclass
class ChainExecutionRecord:
    """Outcome of a whole chain execution."""

    chain: APIChain
    steps: list[StepRecord] = field(default_factory=list)
    ok: bool = True
    total_seconds: float = 0.0

    @property
    def final_result(self) -> Any:
        for step in reversed(self.steps):
            if step.ok:
                return step.result
        return None

    def results_by_name(self) -> dict[str, Any]:
        """Map api_name -> last successful result."""
        out: dict[str, Any] = {}
        for step in self.steps:
            if step.ok:
                out[step.api_name] = step.result
        return out


Listener = Callable[[ExecutionEvent], None]


class ChainExecutor:
    """Execute validated API chains with progress monitoring.

    Example::

        executor = ChainExecutor(registry)
        executor.add_listener(print_event)
        record = executor.execute(chain, ChainContext(graph=g))
    """

    def __init__(self, registry: APIRegistry) -> None:
        self.registry = registry
        self._listeners: list[Listener] = []

    def add_listener(self, listener: Listener) -> None:
        self._listeners.append(listener)

    def remove_listener(self, listener: Listener) -> None:
        self._listeners.remove(listener)

    def listeners(self) -> tuple[Listener, ...]:
        """Snapshot of the registered listeners."""
        return tuple(self._listeners)

    def _emit(self, kind: str, start: float, step_index: int | None = None,
              api_name: str | None = None, detail: str = "",
              n_steps: int | None = None) -> None:
        event = ExecutionEvent(
            kind=kind,
            step_index=step_index,
            api_name=api_name,
            elapsed_seconds=time.perf_counter() - start,
            detail=detail,
            n_steps=n_steps,
        )
        for listener in self._listeners:
            listener(event)

    def execute(self, chain: APIChain, context: ChainContext,
                stop_on_error: bool = True) -> ChainExecutionRecord:
        """Run every step of ``chain`` against ``context``.

        With ``stop_on_error`` (default) a failing step aborts the chain
        and raises :class:`ChainExecutionError`; otherwise the failure is
        recorded and execution continues.
        """
        chain.validate(self.registry)
        record = ChainExecutionRecord(chain=chain.copy())
        start = time.perf_counter()
        self._emit("chain_started", start,
                   detail=f"{len(chain)} steps: {chain.render()}",
                   n_steps=len(chain))
        for index, node in enumerate(chain):
            spec = self.registry.get(node.api_name)
            self._emit("step_started", start, index, node.api_name)
            step_start = time.perf_counter()
            try:
                result = spec.call(context, **node.params)
            except Exception as exc:  # noqa: BLE001 - APIs are user code
                seconds = time.perf_counter() - step_start
                record.steps.append(StepRecord(
                    index=index, api_name=node.api_name, result=None,
                    seconds=seconds, ok=False, error=str(exc)))
                record.ok = False
                self._emit("step_failed", start, index, node.api_name,
                           detail=str(exc))
                if stop_on_error:
                    record.total_seconds = time.perf_counter() - start
                    self._emit("chain_failed", start, index, node.api_name)
                    raise ChainExecutionError(node.api_name, exc) from exc
                continue
            seconds = time.perf_counter() - step_start
            context.results[index] = result
            context.step_names[index] = node.api_name
            record.steps.append(StepRecord(
                index=index, api_name=node.api_name, result=result,
                seconds=seconds, ok=True))
            self._emit("step_finished", start, index, node.api_name,
                       detail=_summarize(result))
        record.total_seconds = time.perf_counter() - start
        self._emit("chain_finished", start,
                   detail=f"{sum(s.ok for s in record.steps)}/"
                          f"{len(record.steps)} steps ok")
        return record


def _summarize(result: Any, limit: int = 70) -> str:
    text = repr(result)
    if len(text) > limit:
        text = text[:limit - 3] + "..."
    return text
