"""Monitored execution of API chains (paper scenario 4).

The executor walks a validated chain step by step, feeding each API the
shared :class:`ChainContext`, and emits :class:`ExecutionEvent` objects
to registered listeners — the chat session renders these as the progress
monitor the paper demonstrates in Fig. 7.

Execution is hardened by per-step policies (:class:`StepPolicy`): a
wall-clock timeout, bounded retries with exponential backoff and
deterministic seeded jitter, and an optional fallback API.  A failing
step that exhausts its budget either aborts the chain
(``stop_on_error=True`` and the policy marks it critical) or is folded
into the record's machine-readable ``degraded`` report and execution
continues.  An optional circuit-breaker registry (duck-typed; see
:mod:`repro.serve.breaker`) short-circuits calls to APIs that keep
failing across chains.
"""

from __future__ import annotations

import random
import threading
import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from ..errors import (
    ChainExecutionError,
    ChatGraphError,
    CircuitOpenError,
    StepTimeoutError,
)
from ..graphs.graph import Graph
from ..obs.trace import NULL_SPAN
from .chain import APIChain, ChainNode
from .registry import APIRegistry, APISpec


@dataclass
class ChainContext:
    """Shared state visible to every API in a chain.

    APIs read the prompt ``graph``, optional substrates (the molecule
    ``database``, the knowledge-base ``rules``), the results of earlier
    steps, and may replace ``graph`` (edit APIs do).
    """

    #: The graph uploaded with the prompt (edit APIs mutate/replace it).
    graph: Graph | None = None
    #: Molecule database for similarity search (scenario 2).
    database: Any = None
    #: Extra substrate objects keyed by name.
    extras: dict[str, Any] = field(default_factory=dict)
    #: Results of completed steps: step index -> result.
    results: dict[int, Any] = field(default_factory=dict)
    #: API names of completed steps: step index -> name.  A step served
    #: by its fallback API keeps the *chain's* declared name, so
    #: downstream :meth:`latest` lookups keep working.
    step_names: dict[int, str] = field(default_factory=dict)
    #: Optional user-confirmation callback (cleaning scenario): receives
    #: a question string and a payload, returns True to proceed.
    confirm: Callable[[str, Any], bool] | None = None

    def latest(self, api_name: str) -> Any:
        """Most recent result produced by ``api_name`` (None if absent)."""
        for index in sorted(self.results, reverse=True):
            if self.step_names.get(index) == api_name:
                return self.results[index]
        return None

    def ask(self, question: str, payload: Any) -> bool:
        """Route a confirmation to the user; default-approve if no hook."""
        if self.confirm is None:
            return True
        return self.confirm(question, payload)


@dataclass(frozen=True)
class ExecutionEvent:
    """One progress event; the session's monitor panel renders these."""

    kind: str              # chain_started | step_started | step_finished
    #                      # | step_failed | chain_finished | chain_failed
    #                      # | step_retried | step_timed_out
    #                      # | breaker_opened
    step_index: int | None
    api_name: str | None
    elapsed_seconds: float
    detail: str = ""
    #: Total steps of the chain (set on ``chain_started``); consumers
    #: should prefer this over parsing ``detail``.
    n_steps: int | None = None
    #: Attempt number about to run (set on ``step_retried``).
    attempt: int | None = None

    def render(self) -> str:
        where = "" if self.step_index is None else \
            f" step {self.step_index} ({self.api_name})"
        suffix = f": {self.detail}" if self.detail else ""
        return f"[{self.elapsed_seconds:7.3f}s] {self.kind}{where}{suffix}"


@dataclass(frozen=True)
class StepPolicy:
    """Robustness budget of one chain step.

    ``max_retries`` extra attempts follow a failed or timed-out call,
    each after an exponential backoff with deterministic seeded jitter;
    a ``fallback_api`` (if set) gets one shot after the primary API's
    budget is exhausted.  ``critical=False`` marks a step whose final
    failure should degrade the chain instead of aborting it even under
    ``stop_on_error=True``.
    """

    #: Wall-clock limit per attempt; ``None`` disables the timeout.
    timeout_seconds: float | None = None
    #: Extra attempts after the first failure.
    max_retries: int = 0
    #: Backoff before retry ``k`` (0-based): ``base * multiplier**k``.
    backoff_base_seconds: float = 0.05
    backoff_multiplier: float = 2.0
    #: Multiplies the backoff by ``1 + jitter_fraction * u`` with ``u``
    #: drawn from a seeded RNG, so workloads are deterministic yet
    #: retries de-synchronize.
    jitter_fraction: float = 0.1
    #: API invoked once (same timeout, no retries) when the primary API
    #: exhausts its budget or its breaker is open.
    fallback_api: str | None = None
    #: Whether exhausting the budget aborts a ``stop_on_error`` chain.
    critical: bool = True

    def __post_init__(self) -> None:
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise ChatGraphError("timeout_seconds must be > 0 or None")
        if self.max_retries < 0:
            raise ChatGraphError("max_retries must be >= 0")
        if self.backoff_base_seconds < 0:
            raise ChatGraphError("backoff_base_seconds must be >= 0")
        if self.backoff_multiplier < 1.0:
            raise ChatGraphError("backoff_multiplier must be >= 1")
        if not 0.0 <= self.jitter_fraction <= 1.0:
            raise ChatGraphError("jitter_fraction must be in [0, 1]")

    def backoff_seconds(self, retry_index: int, rng: random.Random) -> float:
        """Delay before retry ``retry_index`` (0-based), jittered."""
        delay = self.backoff_base_seconds * \
            self.backoff_multiplier ** retry_index
        if self.jitter_fraction > 0:
            delay *= 1.0 + self.jitter_fraction * rng.random()
        return delay


@dataclass
class ExecutionPolicy:
    """Per-API step policies with a chain-wide default.

    ``seed`` drives the backoff jitter: the RNG for a step is derived
    from ``(seed, api_name, step_index)``, so a fixed workload retries
    with identical delays run after run.
    """

    default: StepPolicy = field(default_factory=StepPolicy)
    per_api: dict[str, StepPolicy] = field(default_factory=dict)
    seed: int = 0

    def for_api(self, api_name: str) -> StepPolicy:
        return self.per_api.get(api_name, self.default)

    def jitter_rng(self, api_name: str, step_index: int) -> random.Random:
        return random.Random(f"{self.seed}\x1f{api_name}\x1f{step_index}")


@dataclass
class StepRecord:
    """Outcome of one executed step."""

    index: int
    api_name: str
    result: Any
    seconds: float
    ok: bool
    error: str = ""
    #: Attempts made against the primary API (>= 1 unless the breaker
    #: short-circuited the step before any call).
    attempts: int = 1
    #: Whether the last failure was a wall-clock timeout.
    timed_out: bool = False
    #: Whether the recorded result came from the policy's fallback API.
    used_fallback: bool = False


@dataclass(frozen=True)
class DegradedStep:
    """One entry of a record's machine-readable ``degraded`` report."""

    index: int
    api_name: str
    #: ``retries_exhausted`` | ``timeout`` | ``breaker_open``
    reason: str
    attempts: int
    error: str
    #: Fallback API that was tried (and also failed), if any.
    fallback_api: str | None = None

    def to_dict(self) -> dict[str, Any]:
        return {"index": self.index, "api_name": self.api_name,
                "reason": self.reason, "attempts": self.attempts,
                "error": self.error, "fallback_api": self.fallback_api}


@dataclass
class ChainExecutionRecord:
    """Outcome of a whole chain execution."""

    chain: APIChain
    steps: list[StepRecord] = field(default_factory=list)
    ok: bool = True
    total_seconds: float = 0.0
    #: Steps that exhausted their robustness budget but did not abort
    #: the chain (graceful degradation).  Empty for a clean run.
    degraded: list[DegradedStep] = field(default_factory=list)

    @property
    def final_result(self) -> Any:
        for step in reversed(self.steps):
            if step.ok:
                return step.result
        return None

    @property
    def is_degraded(self) -> bool:
        return bool(self.degraded)

    def results_by_name(self) -> dict[str, Any]:
        """Map api_name -> last successful result."""
        out: dict[str, Any] = {}
        for step in self.steps:
            if step.ok:
                out[step.api_name] = step.result
        return out

    def degraded_report(self) -> dict[str, Any]:
        """JSON-able degradation summary for clients and logs."""
        return {
            "degraded": self.is_degraded,
            "steps": [entry.to_dict() for entry in self.degraded],
            "retries": sum(max(0, s.attempts - 1) for s in self.steps),
            "timeouts": sum(1 for s in self.steps if s.timed_out),
        }


Listener = Callable[[ExecutionEvent], None]


def _call_with_timeout(thunk: Callable[[], Any], api_name: str,
                       timeout_seconds: float | None) -> Any:
    """Run ``thunk``, cutting it off after ``timeout_seconds``.

    The call runs on a daemon thread only when a timeout is set; an
    overrunning call keeps running in the background but its result is
    discarded and :class:`StepTimeoutError` is raised to the chain.
    """
    if timeout_seconds is None:
        return thunk()
    outcome: dict[str, Any] = {}

    def runner() -> None:
        try:
            outcome["result"] = thunk()
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            outcome["error"] = exc

    thread = threading.Thread(target=runner, daemon=True,
                              name=f"chain-step-{api_name}")
    thread.start()
    thread.join(timeout_seconds)
    if thread.is_alive():
        raise StepTimeoutError(api_name, timeout_seconds)
    if "error" in outcome:
        raise outcome["error"]
    return outcome.get("result")


class _StepFailure(Exception):
    """Internal: a step exhausted its whole robustness budget."""

    def __init__(self, reason: str, error: Exception, attempts: int,
                 timed_out: bool, fallback_api: str | None) -> None:
        super().__init__(str(error))
        self.reason = reason
        self.error = error
        self.attempts = attempts
        self.timed_out = timed_out
        self.fallback_api = fallback_api


class ChainExecutor:
    """Execute validated API chains with progress monitoring.

    Example::

        executor = ChainExecutor(registry)
        executor.add_listener(print_event)
        record = executor.execute(chain, ChainContext(graph=g))

    ``policy`` supplies default per-step robustness budgets (overridable
    per :meth:`execute` call); ``breakers`` is an optional per-API
    circuit-breaker registry shared across executors (any object with
    ``allow/record_success/record_failure(api_name)``, e.g.
    :class:`repro.serve.breaker.BreakerRegistry`); ``sleep`` is
    injectable so tests retry without waiting.
    """

    def __init__(self, registry: APIRegistry,
                 policy: ExecutionPolicy | None = None,
                 breakers: Any | None = None,
                 sleep: Callable[[float], None] = time.sleep,
                 tracer: Any | None = None) -> None:
        self.registry = registry
        self.policy = policy
        self.breakers = breakers
        self._sleep = sleep
        #: Optional :class:`repro.obs.Tracer`; executions then emit a
        #: ``chain`` span with ``step`` children and one ``attempt``
        #: child per call (retries included).
        self.tracer = tracer
        self._listeners: list[Listener] = []

    def _tspan(self, name: str, kind: str, **attrs: Any):
        """A tracer span, or a no-op context when tracing is unwired."""
        if self.tracer is None:
            return nullcontext(NULL_SPAN)
        return self.tracer.span(name, kind=kind, **attrs)

    def add_listener(self, listener: Listener) -> None:
        self._listeners.append(listener)

    def remove_listener(self, listener: Listener) -> None:
        self._listeners.remove(listener)

    def listeners(self) -> tuple[Listener, ...]:
        """Snapshot of the registered listeners."""
        return tuple(self._listeners)

    def _emit(self, kind: str, start: float, step_index: int | None = None,
              api_name: str | None = None, detail: str = "",
              n_steps: int | None = None,
              attempt: int | None = None) -> None:
        event = ExecutionEvent(
            kind=kind,
            step_index=step_index,
            api_name=api_name,
            elapsed_seconds=time.perf_counter() - start,
            detail=detail,
            n_steps=n_steps,
            attempt=attempt,
        )
        # iterate a snapshot: a listener may remove itself (or another
        # thread may call remove_listener) while the event fans out
        for listener in self.listeners():
            listener(event)

    # ------------------------------------------------------------------
    # hardened single-step execution
    # ------------------------------------------------------------------
    def _guarded_call(self, spec: APISpec, context: ChainContext,
                      params: Mapping[str, Any], step_policy: StepPolicy,
                      start: float, index: int) -> Any:
        """One call: breaker gate, timeout, breaker bookkeeping."""
        name = spec.name
        if self.breakers is not None and not self.breakers.allow(name):
            raise CircuitOpenError(name, self.breakers.retry_after(name))
        try:
            result = _call_with_timeout(
                lambda: spec.call(context, **dict(params)), name,
                step_policy.timeout_seconds)
        except Exception:
            if self.breakers is not None and \
                    self.breakers.record_failure(name):
                self._emit("breaker_opened", start, index, name,
                           detail=f"circuit for {name!r} opened")
            raise
        if self.breakers is not None:
            self.breakers.record_success(name)
        return result

    def _run_step(self, index: int, node: ChainNode, spec: APISpec,
                  context: ChainContext, policy: ExecutionPolicy,
                  start: float) -> tuple[Any, int, bool]:
        """Run one step under its policy.

        Returns ``(result, attempts, used_fallback)`` or raises
        :class:`_StepFailure` once every attempt and the fallback (if
        any) are exhausted.
        """
        step_policy = policy.for_api(node.api_name)
        rng = policy.jitter_rng(node.api_name, index)
        max_attempts = 1 + step_policy.max_retries
        attempts = 0
        last_error: Exception = ChatGraphError("step never attempted")
        reason = "retries_exhausted"
        timed_out = False
        while attempts < max_attempts:
            try:
                with self._tspan("attempt", "attempt",
                                 api=node.api_name, step_index=index,
                                 attempt=attempts + 1):
                    result = self._guarded_call(spec, context,
                                                node.params, step_policy,
                                                start, index)
                return result, attempts + 1, False
            except CircuitOpenError as exc:
                # retrying before the cooldown elapses cannot succeed;
                # fail (or fall back) immediately
                last_error, reason = exc, "breaker_open"
                break
            except StepTimeoutError as exc:
                attempts += 1
                last_error, reason, timed_out = exc, "timeout", True
                self._emit("step_timed_out", start, index, node.api_name,
                           detail=f"attempt {attempts} exceeded "
                                  f"{exc.timeout_seconds:.3f}s")
            except Exception as exc:  # noqa: BLE001 - APIs are user code
                attempts += 1
                last_error, timed_out = exc, False
                reason = "retries_exhausted"
            if attempts < max_attempts:
                delay = step_policy.backoff_seconds(attempts - 1, rng)
                self._emit(
                    "step_retried", start, index, node.api_name,
                    detail=f"attempt {attempts + 1}/{max_attempts} after "
                           f"{type(last_error).__name__}: {last_error}; "
                           f"backoff {delay:.3f}s",
                    attempt=attempts + 1)
                if delay > 0:
                    self._sleep(delay)
        fallback = step_policy.fallback_api
        if fallback is not None and fallback in self.registry:
            fallback_spec = self.registry.get(fallback)
            try:
                with self._tspan("attempt", "attempt", api=fallback,
                                 step_index=index, attempt=attempts + 1,
                                 fallback=True):
                    result = self._guarded_call(fallback_spec, context,
                                                {}, step_policy, start,
                                                index)
                self._emit("step_retried", start, index, node.api_name,
                           detail=f"fallback {fallback!r} served the "
                                  f"step", attempt=attempts + 1)
                return result, max(attempts, 1), True
            except Exception as exc:  # noqa: BLE001 - fallback is last
                last_error = exc
        raise _StepFailure(reason, last_error, max(attempts, 1),
                           timed_out, fallback)

    # ------------------------------------------------------------------
    # chain execution
    # ------------------------------------------------------------------
    def execute(self, chain: APIChain, context: ChainContext,
                stop_on_error: bool = True,
                policy: ExecutionPolicy | None = None
                ) -> ChainExecutionRecord:
        """Run every step of ``chain`` against ``context``.

        With ``stop_on_error`` (default) a failing *critical* step
        aborts the chain and raises :class:`ChainExecutionError`; a
        failing non-critical step (see :class:`StepPolicy`) — or any
        failure under ``stop_on_error=False`` — is folded into the
        record's ``degraded`` report and execution continues.
        """
        chain.validate(self.registry)
        policy = policy or self.policy or ExecutionPolicy()
        with self._tspan("chain", "chain",
                         n_steps=len(chain)) as chain_span:
            record = self._execute(chain, context, stop_on_error, policy,
                                   chain_span)
            chain_span.set(ok=record.ok, degraded=record.is_degraded,
                           steps_ok=sum(s.ok for s in record.steps))
        return record

    def _execute(self, chain: APIChain, context: ChainContext,
                 stop_on_error: bool, policy: ExecutionPolicy,
                 chain_span: Any) -> ChainExecutionRecord:
        record = ChainExecutionRecord(chain=chain.copy())
        start = time.perf_counter()
        self._emit("chain_started", start,
                   detail=f"{len(chain)} steps: {chain.render()}",
                   n_steps=len(chain))
        for index, node in enumerate(chain):
            spec = self.registry.get(node.api_name)
            self._emit("step_started", start, index, node.api_name)
            step_start = time.perf_counter()
            with self._tspan(f"step:{node.api_name}", "step",
                             api=node.api_name,
                             step_index=index) as step_span:
                try:
                    result, attempts, used_fallback = self._run_step(
                        index, node, spec, context, policy, start)
                except _StepFailure as failure:
                    seconds = time.perf_counter() - step_start
                    record.steps.append(StepRecord(
                        index=index, api_name=node.api_name, result=None,
                        seconds=seconds, ok=False,
                        error=str(failure.error),
                        attempts=failure.attempts,
                        timed_out=failure.timed_out))
                    record.ok = False
                    step_span.mark_error(str(failure.error))
                    step_span.set(attempts=failure.attempts,
                                  reason=failure.reason)
                    self._emit("step_failed", start, index, node.api_name,
                               detail=str(failure.error))
                    step_policy = policy.for_api(node.api_name)
                    if stop_on_error and step_policy.critical:
                        record.total_seconds = time.perf_counter() - start
                        self._emit("chain_failed", start, index,
                                   node.api_name)
                        raise ChainExecutionError(
                            node.api_name,
                            failure.error) from failure.error
                    record.degraded.append(DegradedStep(
                        index=index, api_name=node.api_name,
                        reason=failure.reason, attempts=failure.attempts,
                        error=str(failure.error),
                        fallback_api=failure.fallback_api))
                    continue
                seconds = time.perf_counter() - step_start
                context.results[index] = result
                context.step_names[index] = node.api_name
                record.steps.append(StepRecord(
                    index=index, api_name=node.api_name, result=result,
                    seconds=seconds, ok=True, attempts=attempts,
                    used_fallback=used_fallback))
                step_span.set(attempts=attempts,
                              used_fallback=used_fallback)
                self._emit("step_finished", start, index, node.api_name,
                           detail=_summarize(result))
        record.total_seconds = time.perf_counter() - start
        self._emit("chain_finished", start,
                   detail=f"{sum(s.ok for s in record.steps)}/"
                          f"{len(record.steps)} steps ok")
        return record


def _summarize(result: Any, limit: int = 70) -> str:
    text = repr(result)
    if len(text) > limit:
        text = text[:limit - 3] + "..."
    return text
