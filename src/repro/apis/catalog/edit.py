"""Graph-edit APIs: the mutation half of the cleaning scenario.

Edit APIs ask the user for confirmation through ``context.ask`` before
touching the graph (paper Fig. 6: "asks the user for confirmation"),
then work on a fresh copy which replaces ``context.graph``.
"""

from __future__ import annotations

from typing import Any

from ...errors import APIError
from ...graphs.graph import Graph
from ...graphs.io import to_dict
from ..executor import ChainContext
from ..registry import APIRegistry, APISpec, Category


def _graph(context: ChainContext) -> Graph:
    if context.graph is None:
        raise APIError("no graph to edit")
    return context.graph


def remove_flagged_edges(context: ChainContext,
                         confirm_each: bool = False) -> dict[str, Any]:
    """Remove the edges flagged by ``detect_incorrect_edges``.

    Reads the latest detection result from the chain context; with
    ``confirm_each`` every removal is routed through ``context.ask``.
    """
    findings = context.latest("detect_incorrect_edges")
    if findings is None:
        raise APIError("run detect_incorrect_edges before removing edges")
    graph = _graph(context).copy()
    removed = []
    skipped = []
    for finding in findings:
        u, v = finding["head"], finding["tail"]
        question = (f"Remove suspected-wrong edge ({u}) -"
                    f"[{finding['relation']}]-> ({v})?")
        if confirm_each and not context.ask(question, finding):
            skipped.append((u, v))
            continue
        if graph.has_edge(u, v):
            graph.remove_edge(u, v)
            removed.append((u, v))
    context.graph = graph
    return {"removed": removed, "skipped": skipped,
            "n_removed": len(removed)}


def add_predicted_edges(context: ChainContext,
                        confirm_each: bool = False) -> dict[str, Any]:
    """Add the edges proposed by ``predict_missing_edges``."""
    findings = context.latest("predict_missing_edges")
    if findings is None:
        raise APIError("run predict_missing_edges before adding edges")
    graph = _graph(context).copy()
    added = []
    skipped = []
    for finding in findings:
        u, v = finding["head"], finding["tail"]
        question = (f"Add inferred edge ({u}) -"
                    f"[{finding['relation']}]-> ({v})?")
        if confirm_each and not context.ask(question, finding):
            skipped.append((u, v))
            continue
        if not graph.has_edge(u, v):
            graph.add_edge(u, v, relation=finding["relation"])
            added.append((u, v))
    context.graph = graph
    return {"added": added, "skipped": skipped, "n_added": len(added)}


def remove_edge(context: ChainContext, source: Any = None,
                target: Any = None) -> dict[str, Any]:
    """Remove one explicit edge (confirmation-gated)."""
    if source is None or target is None:
        raise APIError("remove_edge needs 'source' and 'target' params")
    graph = _graph(context)
    if not context.ask(f"Remove edge ({source}, {target})?",
                       {"source": source, "target": target}):
        return {"removed": False, "reason": "declined by user"}
    edited = graph.copy()
    edited.remove_edge(source, target)
    context.graph = edited
    return {"removed": True}


def add_edge(context: ChainContext, source: Any = None,
             target: Any = None) -> dict[str, Any]:
    """Add one explicit edge (confirmation-gated)."""
    if source is None or target is None:
        raise APIError("add_edge needs 'source' and 'target' params")
    if not context.ask(f"Add edge ({source}, {target})?",
                       {"source": source, "target": target}):
        return {"added": False, "reason": "declined by user"}
    edited = _graph(context).copy()
    edited.add_edge(source, target)
    context.graph = edited
    return {"added": True}


def export_graph(context: ChainContext) -> dict[str, Any]:
    """Serialize the (possibly edited) graph to its JSON document.

    The cleaning scenario ends with "G is cleaned and outputted to
    file"; the session writes this document wherever the user asked.
    """
    return to_dict(_graph(context))


def register(registry: APIRegistry) -> None:
    """Register every edit API."""
    edit = Category.EDIT
    for spec in (
        APISpec("remove_flagged_edges",
                "remove the incorrect edges detected by knowledge inference "
                "after user confirmation",
                edit, remove_flagged_edges,
                params={"confirm_each": False}),
        APISpec("add_predicted_edges",
                "add the missing edges predicted by knowledge inference "
                "after user confirmation",
                edit, add_predicted_edges,
                params={"confirm_each": False}),
        APISpec("remove_edge",
                "remove delete one edge from the graph",
                edit, remove_edge, params={"source": None, "target": None}),
        APISpec("add_edge",
                "add insert one edge into the graph",
                edit, add_edge, params={"source": None, "target": None}),
        APISpec("export_graph",
                "export save or output the cleaned graph to a file",
                edit, export_graph),
    ):
        registry.register(spec)
