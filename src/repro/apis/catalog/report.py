"""Report APIs: graph-type prediction and report composition.

Scenario 1 (Fig. 4): "ChatGraph first predicts the type of G ... a
report is generated based on the results of the APIs."  These two APIs
bracket a type-specific analysis chain.
"""

from __future__ import annotations

from typing import Any

from ...errors import APIError
from ...llm.intent import GraphTypePredictor
from ..executor import ChainContext
from ..registry import APIRegistry, APISpec, Category


def predict_graph_type(context: ChainContext) -> dict[str, Any]:
    """Classify the uploaded graph (social / molecule / knowledge / generic)."""
    if context.graph is None:
        raise APIError("no graph in the prompt context")
    prediction = GraphTypePredictor().predict(context.graph)
    return {"graph_type": prediction.graph_type,
            "scores": prediction.scores,
            "evidence": list(prediction.evidence)}


#: API names whose results read well in a report, in presentation order.
_SECTION_ORDER = (
    "predict_graph_type", "graph_summary", "connectivity",
    "detect_communities", "find_influencers", "social_connectivity",
    "molecular_formula", "describe_molecule", "predict_toxicity",
    "predict_solubility", "druglikeness", "similar_molecules",
    "knowledge_profile", "mine_rules", "detect_incorrect_edges",
    "predict_missing_edges", "clustering", "count_triangles",
    "rank_pagerank", "kcore_decomposition", "motif_profile",
)


def generate_report(context: ChainContext, title: str = "Graph report"
                    ) -> str:
    """Compose a textual report from every earlier step's result."""
    by_name: dict[str, Any] = {}
    for index in sorted(context.results):
        by_name[context.step_names[index]] = context.results[index]
    if not by_name:
        raise APIError("generate_report needs earlier analysis steps")
    lines = [title, "=" * len(title)]
    ordered = [name for name in _SECTION_ORDER if name in by_name]
    ordered += [name for name in by_name if name not in _SECTION_ORDER]
    for name in ordered:
        if name == "generate_report":
            continue
        lines.append("")
        lines.append(f"## {name.replace('_', ' ')}")
        lines.extend(_render_result(by_name[name]))
    return "\n".join(lines)


def _render_result(result: Any, indent: str = "") -> list[str]:
    if isinstance(result, dict):
        lines = []
        for key, value in result.items():
            if isinstance(value, (dict, list)) and value:
                lines.append(f"{indent}- {key}:")
                lines.extend(_render_result(value, indent + "  "))
            else:
                lines.append(f"{indent}- {key}: {value}")
        return lines
    if isinstance(result, list):
        lines = []
        for item in result[:10]:
            if isinstance(item, (dict, list)):
                lines.extend(_render_result(item, indent + "  "))
            else:
                lines.append(f"{indent}- {item}")
        if len(result) > 10:
            lines.append(f"{indent}- ... ({len(result) - 10} more)")
        return lines
    return [f"{indent}{result}"]


def register(registry: APIRegistry) -> None:
    """Register the report APIs."""
    report = Category.REPORT
    for spec in (
        APISpec("predict_graph_type",
                "predict whether the graph is a social network a molecule "
                "or a knowledge graph",
                report, predict_graph_type),
        APISpec("generate_report",
                "generate write a report summarizing all analysis results",
                report, generate_report, params={"title": "Graph report"}),
    ):
        registry.register(spec)
