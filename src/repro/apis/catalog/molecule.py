"""Molecule APIs: formula, descriptors, properties, similarity search."""

from __future__ import annotations

from typing import Any

from ...chem.descriptors import descriptor_profile, molecular_formula
from ...chem.molecule import Molecule
from ...chem.properties import (
    druglikeness_summary,
    predict_solubility,
    predict_toxicity,
)
from ...chem.smiles import parse_smiles
from ...chem.database import MoleculeDatabase
from ...errors import APIError
from ...graphs.graph import Graph
from ..executor import ChainContext
from ..registry import APIRegistry, APISpec, Category


def _molecule(context: ChainContext) -> Molecule:
    """The prompt molecule: an uploaded Molecule, SMILES, or atom graph."""
    extra = context.extras.get("molecule")
    if isinstance(extra, Molecule):
        return extra
    if isinstance(extra, str):
        return parse_smiles(extra)
    if context.graph is not None:
        return _graph_to_molecule(context.graph)
    raise APIError("no molecule in the prompt context")


def _graph_to_molecule(graph: Graph) -> Molecule:
    """Interpret an atom-labeled graph as a molecule."""
    mol = Molecule(name=graph.name)
    index_of: dict[Any, int] = {}
    for node in graph.nodes():
        element = graph.get_node_attr(node, "element")
        if element is None:
            raise APIError("graph nodes lack 'element' attributes; "
                           "not a molecule graph")
        index_of[node] = mol.add_atom(
            str(element),
            aromatic=bool(graph.get_node_attr(node, "aromatic", False)),
            charge=int(graph.get_node_attr(node, "charge", 0)))
    for u, v in graph.edges():
        order = float(graph.get_edge_attr(u, v, "order", 1.0))
        mol.add_bond(index_of[u], index_of[v], order)
    return mol


def _database(context: ChainContext) -> MoleculeDatabase:
    if isinstance(context.database, MoleculeDatabase):
        return context.database
    raise APIError("no molecule database available for similarity search")


def formula(context: ChainContext) -> str:
    """Molecular formula of the prompt molecule."""
    return molecular_formula(_molecule(context))


def describe_molecule(context: ChainContext) -> dict[str, Any]:
    """Full descriptor profile (MW, logP, TPSA, HBD/HBA, rings...)."""
    return descriptor_profile(_molecule(context))


def toxicity(context: ChainContext) -> dict[str, Any]:
    """Qualitative toxicity prediction with its rationale."""
    prediction = predict_toxicity(_molecule(context))
    return {"class": prediction.value,
            "rationale": list(prediction.rationale)}


def solubility(context: ChainContext) -> dict[str, Any]:
    """ESOL aqueous solubility prediction."""
    prediction = predict_solubility(_molecule(context))
    return {"logS": round(float(prediction.value), 3),
            "rationale": list(prediction.rationale)}


def druglikeness(context: ChainContext) -> dict[str, Any]:
    """Lipinski violations and structural alerts."""
    return druglikeness_summary(_molecule(context))


def substructure_count(context: ChainContext,
                       pattern: str = "") -> dict[str, Any]:
    """Count embeddings of a SMILES pattern in the prompt molecule.

    Matching is element-labeled monomorphism (bond orders ignored), so
    ``pattern="C(=O)O"`` finds carboxyl-like C(O)O motifs.
    """
    if not pattern:
        raise APIError("substructure_count needs a 'pattern' SMILES")
    from ...algorithms import find_subgraph_isomorphisms
    pattern_mol = parse_smiles(pattern)
    target = _molecule(context)

    def element(graph: Graph, node: Any) -> Any:
        return graph.get_node_attr(node, "element")

    matches = find_subgraph_isomorphisms(
        pattern_mol.to_graph(), target.to_graph(),
        node_label=element, induced=False, limit=1000)
    # embeddings count automorphisms; report distinct atom sets too
    distinct = {frozenset(m.values()) for m in matches}
    return {"pattern": pattern, "n_embeddings": len(matches),
            "n_distinct_sites": len(distinct)}


def identify_molecule(context: ChainContext) -> dict[str, Any]:
    """Identify the prompt molecule by canonical-SMILES database lookup.

    Answers "what molecule is this?" — an exact-identity complement to
    the similarity search of scenario 2.
    """
    from ...chem.canonical import canonical_smiles, perceive_aromaticity
    molecule = _molecule(context)
    canonical = canonical_smiles(perceive_aromaticity(molecule))
    name = None
    if isinstance(context.database, MoleculeDatabase):
        name = context.database.lookup(molecule)
    return {
        "known": name is not None,
        "name": name,
        "canonical_smiles": canonical,
        "formula": molecular_formula(molecule),
    }


def similar_molecules(context: ChainContext, k: int = 2,
                      method: str = "ged") -> list[dict[str, Any]]:
    """Top-k most similar molecules from the database (scenario 2)."""
    hits = _database(context).similarity_search(_molecule(context), k=k,
                                                method=method)
    return [{"name": hit.name, "smiles": hit.smiles, "score": hit.score,
             "method": hit.method} for hit in hits]


def register(registry: APIRegistry) -> None:
    """Register every molecule API."""
    molecule = Category.MOLECULE
    for spec in (
        APISpec("molecular_formula",
                "compute the molecular formula of the molecule",
                molecule, formula),
        APISpec("describe_molecule",
                "compute molecular descriptors weight logp polar surface "
                "area hydrogen bond donors acceptors rings",
                molecule, describe_molecule),
        APISpec("predict_toxicity",
                "predict the toxicity of the molecule from structural "
                "alerts",
                molecule, toxicity),
        APISpec("predict_solubility",
                "predict the aqueous solubility of the molecule",
                molecule, solubility),
        APISpec("druglikeness",
                "assess drug likeness with lipinski rule of five and "
                "structural alerts",
                molecule, druglikeness),
        APISpec("similar_molecules",
                "search the molecule database for molecules similar to the "
                "query molecule",
                molecule, similar_molecules,
                requires=("graph", "database"),
                params={"k": 2, "method": "ged"}),
        APISpec("substructure_count",
                "count occurrences of a substructure pattern functional "
                "group in the molecule",
                molecule, substructure_count, params={"pattern": ""}),
        APISpec("identify_molecule",
                "identify name or recognize this molecule by exact "
                "database lookup",
                molecule, identify_molecule,
                requires=("graph", "database")),
    ):
        registry.register(spec)
