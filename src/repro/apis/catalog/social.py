"""Social-network APIs (community structure, influence, connectivity)."""

from __future__ import annotations

from typing import Any

from ...algorithms import (
    articulation_points,
    attribute_assortativity,
    bridges,
    greedy_modularity_communities,
    label_propagation,
    modularity,
    pagerank,
)
from ...errors import APIError
from ...graphs.graph import DiGraph, Graph
from ..executor import ChainContext
from ..registry import APIRegistry, APISpec, Category


def _social_graph(context: ChainContext) -> Graph:
    if context.graph is None:
        raise APIError("no graph in the prompt context")
    graph = context.graph
    return graph.to_undirected() if isinstance(graph, DiGraph) else graph


def detect_communities(context: ChainContext, method: str = "label_prop",
                       seed: int = 0, k: int = 2) -> dict[str, Any]:
    """Detect communities and score the partition by modularity."""
    graph = _social_graph(context)
    if method == "label_prop":
        communities = label_propagation(graph, seed=seed)
    elif method == "greedy_modularity":
        communities = greedy_modularity_communities(graph)
    elif method == "spectral":
        from ...algorithms import spectral_communities
        communities = spectral_communities(graph, k=k)
    else:
        raise APIError(f"unknown community method {method!r}")
    return {
        "method": method,
        "n_communities": len(communities),
        "sizes": sorted((len(c) for c in communities), reverse=True),
        "modularity": round(modularity(graph, communities), 4),
        "communities": [sorted(c, key=repr) for c in communities],
    }


def find_influencers(context: ChainContext, top: int = 5
                     ) -> list[dict[str, Any]]:
    """Most influential members by PageRank, with their names."""
    graph = _social_graph(context)
    ranks = pagerank(graph)
    ordered = sorted(ranks.items(), key=lambda kv: (-kv[1], repr(kv[0])))
    return [{"node": node,
             "name": graph.get_node_attr(node, "name", str(node)),
             "pagerank": round(score, 6)}
            for node, score in ordered[:top]]


def social_connectivity(context: ChainContext) -> dict[str, Any]:
    """Weak points of the network: bridges and articulation members."""
    graph = _social_graph(context)
    bridge_list = bridges(graph)
    cut_nodes = articulation_points(graph)
    return {
        "n_bridges": len(bridge_list),
        "bridges": [tuple(sorted(edge, key=repr)) for edge in bridge_list],
        "n_cut_members": len(cut_nodes),
        "cut_members": sorted(cut_nodes, key=repr),
    }


def community_overlap(context: ChainContext, seed: int = 0
                      ) -> dict[str, Any]:
    """Agreement between the two community detectors (stability signal)."""
    graph = _social_graph(context)
    a = label_propagation(graph, seed=seed)
    b = greedy_modularity_communities(graph)
    # pairwise agreement: same-community co-membership rate
    def membership(parts: list[set[Any]]) -> dict[Any, int]:
        out: dict[Any, int] = {}
        for cid, part in enumerate(parts):
            for node in part:
                out[node] = cid
        return out
    ma, mb = membership(a), membership(b)
    nodes = list(graph.nodes())
    agree = total = 0
    for i, u in enumerate(nodes):
        for v in nodes[i + 1:]:
            total += 1
            if (ma[u] == ma[v]) == (mb[u] == mb[v]):
                agree += 1
    return {
        "label_prop_communities": len(a),
        "greedy_communities": len(b),
        "pairwise_agreement": round(agree / total, 4) if total else 1.0,
    }


def homophily(context: ChainContext, attribute: str = "community"
              ) -> dict[str, Any]:
    """Attribute assortativity: do like members connect to like?"""
    graph = _social_graph(context)
    try:
        r = attribute_assortativity(graph, attribute)
    except Exception as exc:
        raise APIError(f"homophily on {attribute!r} failed: {exc}") from exc
    return {"attribute": attribute, "assortativity": round(r, 4),
            "homophilous": r > 0.1}


def register(registry: APIRegistry) -> None:
    """Register every social API."""
    social = Category.SOCIAL
    for spec in (
        APISpec("detect_communities",
                "detect communities groups or clusters in a social network "
                "and measure modularity",
                social, detect_communities,
                params={"method": "label_prop", "seed": 0, "k": 2}),
        APISpec("find_influencers",
                "find the most influential users or members of a social "
                "network",
                social, find_influencers, params={"top": 5}),
        APISpec("social_connectivity",
                "analyze the connectivity of a social network finding "
                "bridges and cut members whose removal disconnects groups",
                social, social_connectivity),
        APISpec("community_overlap",
                "compare community detection methods and report their "
                "agreement",
                social, community_overlap, params={"seed": 0}),
        APISpec("homophily",
                "measure homophily whether similar members connect to "
                "each other by a node attribute",
                social, homophily, params={"attribute": "community"}),
    ):
        registry.register(spec)
