"""Generic graph-analysis APIs (work on any uploaded graph)."""

from __future__ import annotations

from typing import Any

from ...algorithms import (
    average_clustering,
    betweenness_centrality,
    connected_components,
    core_number,
    degree_assortativity,
    degree_centrality,
    diameter,
    find_subgraph_isomorphisms,
    is_connected,
    motif_census,
    pagerank,
    shortest_path,
    triangle_count,
)
from ...errors import APIError
from ...graphs.graph import DiGraph, Graph
from ...graphs.properties import degree_histogram, density, summarize
from ..executor import ChainContext
from ..registry import APIRegistry, APISpec, Category


def _graph(context: ChainContext) -> Graph:
    if context.graph is None:
        raise APIError("no graph in the prompt context")
    return context.graph


def _undirected(context: ChainContext) -> Graph:
    graph = _graph(context)
    return graph.to_undirected() if isinstance(graph, DiGraph) else graph


def graph_summary(context: ChainContext) -> dict[str, Any]:
    """Basic profile: sizes, density, degrees, attribute keys."""
    return summarize(_graph(context)).as_dict()


def count_nodes(context: ChainContext) -> int:
    """Number of nodes."""
    return _graph(context).number_of_nodes()


def count_edges(context: ChainContext) -> int:
    """Number of edges."""
    return _graph(context).number_of_edges()


def graph_density(context: ChainContext) -> float:
    """Edge density in [0, 1]."""
    return density(_graph(context))


def degree_distribution(context: ChainContext) -> dict[int, int]:
    """Histogram degree -> node count."""
    return degree_histogram(_graph(context))


def connectivity(context: ChainContext) -> dict[str, Any]:
    """Connectedness and component structure."""
    graph = _graph(context)
    components = connected_components(graph)
    return {
        "connected": is_connected(graph),
        "n_components": len(components),
        "largest_component": max((len(c) for c in components), default=0),
    }


def graph_diameter(context: ChainContext) -> int:
    """Diameter of the (connected) graph."""
    return diameter(_undirected(context))


def find_shortest_path(context: ChainContext, source: Any = None,
                       target: Any = None) -> list[Any]:
    """Unweighted shortest path between two nodes."""
    if source is None or target is None:
        raise APIError("shortest path needs 'source' and 'target' params")
    return shortest_path(_graph(context), source, target)


def clustering(context: ChainContext) -> float:
    """Average local clustering coefficient."""
    return average_clustering(_undirected(context))


def count_triangles(context: ChainContext) -> int:
    """Total number of triangles."""
    return triangle_count(_undirected(context))


def rank_pagerank(context: ChainContext, top: int = 5) -> list[tuple[Any,
                                                                     float]]:
    """Top nodes by PageRank."""
    ranks = pagerank(_graph(context))
    ordered = sorted(ranks.items(), key=lambda kv: (-kv[1], repr(kv[0])))
    return [(node, round(score, 6)) for node, score in ordered[:top]]


def rank_degree(context: ChainContext, top: int = 5) -> list[tuple[Any,
                                                                   float]]:
    """Top nodes by degree centrality."""
    ranks = degree_centrality(_graph(context))
    ordered = sorted(ranks.items(), key=lambda kv: (-kv[1], repr(kv[0])))
    return [(node, round(score, 6)) for node, score in ordered[:top]]


def rank_betweenness(context: ChainContext, top: int = 5
                     ) -> list[tuple[Any, float]]:
    """Top nodes by betweenness centrality."""
    ranks = betweenness_centrality(_graph(context))
    ordered = sorted(ranks.items(), key=lambda kv: (-kv[1], repr(kv[0])))
    return [(node, round(score, 6)) for node, score in ordered[:top]]


def kcore_decomposition(context: ChainContext) -> dict[str, Any]:
    """Max core number and the size of the densest core."""
    numbers = core_number(_undirected(context))
    if not numbers:
        return {"max_core": 0, "core_size": 0}
    max_core = max(numbers.values())
    return {"max_core": max_core,
            "core_size": sum(1 for c in numbers.values() if c == max_core)}


def motif_profile(context: ChainContext) -> dict[str, int]:
    """Triangle/wedge/clique motif census."""
    return motif_census(_undirected(context))


def compare_graphs(context: ChainContext) -> dict[str, Any]:
    """Compare the uploaded graph with a second one (two-graph prompts).

    The second graph is attached under ``other_graph``; reported are WL
    kernel similarity, size deltas, and (for small graphs) the graph
    edit distance — the general-graph face of scenario 2.
    """
    from ...algorithms import graph_edit_distance, wl_kernel_similarity
    graph = _graph(context)
    other = context.extras.get("other_graph")
    if other is None:
        raise APIError("compare_graphs needs an 'other_graph' attachment")
    result: dict[str, Any] = {
        "wl_similarity": round(wl_kernel_similarity(
            graph.to_undirected() if isinstance(graph, DiGraph) else graph,
            other.to_undirected() if isinstance(other, DiGraph)
            else other), 4),
        "node_delta": other.number_of_nodes() - graph.number_of_nodes(),
        "edge_delta": other.number_of_edges() - graph.number_of_edges(),
    }
    if (graph.number_of_nodes() <= 30 and other.number_of_nodes() <= 30):
        ged = graph_edit_distance(
            graph.to_undirected() if isinstance(graph, DiGraph) else graph,
            other.to_undirected() if isinstance(other, DiGraph)
            else other)
        result["ged"] = ged.cost
        result["ged_exact"] = ged.exact
    return result


def assortativity(context: ChainContext) -> dict[str, Any]:
    """Degree assortativity (hub-to-hub vs hub-to-leaf mixing)."""
    r = degree_assortativity(_undirected(context))
    if r > 0.1:
        tendency = "assortative (hubs link to hubs)"
    elif r < -0.1:
        tendency = "disassortative (hubs link to leaves)"
    else:
        tendency = "neutral mixing"
    return {"degree_assortativity": round(r, 4), "tendency": tendency}


def find_substructure(context: ChainContext, pattern_edges: Any = None,
                      label_key: Any = None,
                      max_matches: int = 10) -> dict[str, Any]:
    """Search for a pattern subgraph (VF2) inside the uploaded graph.

    ``pattern_edges`` is a list of ``(u, v)`` pairs defining the pattern;
    with ``label_key`` set (e.g. ``"element"``), pattern node names must
    equal the target nodes' label values (so ``[("C", "O")]`` finds C-O
    bonds in a molecule).
    """
    if not pattern_edges:
        raise APIError("find_substructure needs 'pattern_edges'")
    from ...graphs.graph import Graph as _Graph
    pattern = _Graph(name="pattern")
    for u, v in pattern_edges:
        pattern.add_edge(u, v)
    target = _undirected(context)
    if label_key is not None:
        def node_label(graph, node):
            if graph is pattern:
                return node if not isinstance(node, tuple) else node[0]
            return graph.get_node_attr(node, label_key)
        # pattern nodes like "C", "C2" -> label "C" (strip digits)
        def pattern_label(graph, node):
            if graph is pattern:
                return str(node).rstrip("0123456789")
            return graph.get_node_attr(node, label_key)
        matcher_label = pattern_label
    else:
        def matcher_label(graph, node):
            return None
    matches = find_subgraph_isomorphisms(
        pattern, target, node_label=matcher_label, induced=False,
        limit=max_matches)
    return {
        "n_matches": len(matches),
        "truncated": len(matches) >= max_matches,
        "matches": [sorted(m.values(), key=repr) for m in matches],
    }


def register(registry: APIRegistry) -> None:
    """Register every generic API."""
    generic = Category.GENERIC
    for spec in (
        APISpec("graph_summary",
                "summarize the graph: number of nodes and edges, density, "
                "degree statistics, node and edge attribute keys",
                generic, graph_summary),
        APISpec("count_nodes",
                "count the number of nodes or vertices in the graph",
                generic, count_nodes),
        APISpec("count_edges",
                "count the number of edges or links in the graph",
                generic, count_edges),
        APISpec("graph_density",
                "compute the edge density of the graph",
                generic, graph_density),
        APISpec("degree_distribution",
                "compute the degree distribution histogram of the graph",
                generic, degree_distribution),
        APISpec("connectivity",
                "check whether the graph is connected and report its "
                "connected components",
                generic, connectivity),
        APISpec("graph_diameter",
                "compute the diameter, the longest shortest path of the "
                "graph",
                generic, graph_diameter),
        APISpec("find_shortest_path",
                "find the shortest path between a source node and a target "
                "node",
                generic, find_shortest_path,
                params={"source": None, "target": None}),
        APISpec("clustering",
                "compute the average clustering coefficient of the graph",
                generic, clustering),
        APISpec("count_triangles",
                "count the triangles in the graph",
                generic, count_triangles),
        APISpec("rank_pagerank",
                "rank the most important or influential nodes by pagerank",
                generic, rank_pagerank, params={"top": 5}),
        APISpec("rank_degree",
                "rank the most connected hub nodes by degree centrality",
                generic, rank_degree, params={"top": 5}),
        APISpec("rank_betweenness",
                "rank broker or bridge nodes by betweenness centrality",
                generic, rank_betweenness, params={"top": 5}),
        APISpec("kcore_decomposition",
                "compute the k-core decomposition and the densest core",
                generic, kcore_decomposition),
        APISpec("motif_profile",
                "count motifs such as triangles wedges and cliques",
                generic, motif_profile),
        APISpec("assortativity",
                "measure degree assortativity whether hubs connect to "
                "hubs or to leaves",
                generic, assortativity),
        APISpec("find_substructure",
                "search for a pattern substructure or subgraph inside "
                "the graph",
                generic, find_substructure,
                params={"pattern_edges": None, "label_key": None,
                        "max_matches": 10}),
        APISpec("compare_graphs",
                "compare two graphs measuring their structural similarity "
                "and edit distance",
                generic, compare_graphs,
                requires=("graph", "other_graph")),
    ):
        registry.register(spec)
