"""The concrete ChatGraph API catalog.

``register_all`` installs every API into a registry; the sub-modules
group them by category (the routing key of scenario 1):

* :mod:`generic` — structural statistics any graph supports;
* :mod:`social` — communities, influencers, connectivity;
* :mod:`molecule` — formula/descriptors/properties/similarity search;
* :mod:`knowledge` — incorrect/missing edge inference;
* :mod:`edit` — graph mutation (the cleaning scenario's second half);
* :mod:`report` — graph-type prediction and report composition.
"""

from ..registry import APIRegistry
from . import edit, generic, knowledge, molecule, report, social


def register_all(registry: APIRegistry) -> APIRegistry:
    """Install the complete catalog into ``registry``."""
    for module in (generic, social, molecule, knowledge, edit, report):
        module.register(registry)
    return registry

__all__ = ["register_all"]
