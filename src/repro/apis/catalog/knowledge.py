"""Knowledge-graph APIs: error detection and missing-link prediction."""

from __future__ import annotations

from typing import Any

from ...errors import APIError
from ...graphs.graph import DiGraph
from ...kb.inference import KnowledgeInferencer
from ...kb.triples import TripleStore
from ..executor import ChainContext
from ..registry import APIRegistry, APISpec, Category


def _store(context: ChainContext) -> TripleStore:
    extra = context.extras.get("triple_store")
    if isinstance(extra, TripleStore):
        return extra
    if isinstance(context.graph, DiGraph):
        store = TripleStore.from_graph(context.graph)
        context.extras["triple_store"] = store
        return store
    raise APIError("knowledge APIs need a directed knowledge graph")


def _inferencer(context: ChainContext) -> KnowledgeInferencer:
    cached = context.extras.get("knowledge_inferencer")
    if isinstance(cached, KnowledgeInferencer):
        return cached
    inferencer = KnowledgeInferencer.fit(_store(context))
    context.extras["knowledge_inferencer"] = inferencer
    return inferencer


def mine_rules(context: ChainContext) -> dict[str, Any]:
    """Learned type signatures and path rules of the knowledge graph."""
    inferencer = _inferencer(context)
    return {
        "type_signatures": {
            relation: {"head_type": s.head_type, "tail_type": s.tail_type,
                       "confidence": round(s.confidence, 3)}
            for relation, s in sorted(inferencer.signatures.items())},
        "path_rules": [rule.render() for rule in inferencer.rules],
    }


def detect_incorrect_edges(context: ChainContext,
                           min_confidence: float = 0.5) -> list[dict[str,
                                                                     Any]]:
    """Facts suspected wrong (violate learned type signatures)."""
    findings = _inferencer(context).detect_incorrect_edges(
        min_confidence=min_confidence)
    return [{"head": f.triple.head, "relation": f.triple.relation,
             "tail": f.triple.tail, "confidence": round(f.confidence, 3),
             "reason": f.reason} for f in findings]


def predict_missing_edges(context: ChainContext,
                          min_confidence: float = 0.5,
                          limit: int = 20) -> list[dict[str, Any]]:
    """Facts suspected missing (implied by mined path rules)."""
    findings = _inferencer(context).predict_missing_edges(
        min_confidence=min_confidence, limit=limit)
    return [{"head": f.triple.head, "relation": f.triple.relation,
             "tail": f.triple.tail, "confidence": round(f.confidence, 3),
             "reason": f.reason} for f in findings]


def infer_entity_types(context: ChainContext) -> dict[str, Any]:
    """Type untyped entities from the signatures of their relations."""
    inferred = _inferencer(context).infer_entity_types()
    return {
        "n_inferred": len(inferred),
        "entities": {entity: {"type": etype,
                              "confidence": round(confidence, 3)}
                     for entity, (etype, confidence)
                     in sorted(inferred.items())},
    }


def knowledge_profile(context: ChainContext) -> dict[str, Any]:
    """Entity-type and relation inventory of the knowledge graph."""
    store = _store(context)
    type_counts: dict[str, int] = {}
    for entity in store.entities():
        etype = store.entity_type(entity) or "untyped"
        type_counts[etype] = type_counts.get(etype, 0) + 1
    relation_counts = {relation: len(store.by_relation(relation))
                       for relation in store.relations()}
    return {"n_facts": len(store), "n_entities": len(store.entities()),
            "entity_types": type_counts, "relations": relation_counts}


def register(registry: APIRegistry) -> None:
    """Register every knowledge API."""
    knowledge = Category.KNOWLEDGE
    for spec in (
        APISpec("knowledge_profile",
                "profile a knowledge graph entity types relations and fact "
                "counts",
                knowledge, knowledge_profile),
        APISpec("mine_rules",
                "mine logical rules and relation type signatures from the "
                "knowledge graph",
                knowledge, mine_rules),
        APISpec("detect_incorrect_edges",
                "detect incorrect wrong or noisy edges and facts in the "
                "knowledge graph",
                knowledge, detect_incorrect_edges,
                params={"min_confidence": 0.5}),
        APISpec("predict_missing_edges",
                "predict missing edges or absent facts of the knowledge "
                "graph by rule inference",
                knowledge, predict_missing_edges,
                params={"min_confidence": 0.5, "limit": 20}),
        APISpec("infer_entity_types",
                "infer the types of untyped entities from their relation "
                "signatures",
                knowledge, infer_entity_types),
    ):
        registry.register(spec)
