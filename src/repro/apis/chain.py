"""API chains: the object the LLM generates and the user confirms.

An :class:`APIChain` is a sequence of :class:`ChainNode` invocations with
optional explicit data dependencies (defaulting to "each step may read
every earlier step"), i.e. a small DAG whose topological order is the
node order.  :func:`chain_to_graph` views a chain as a labeled digraph so
the node matching-based loss (paper Def. 1) can compute chain GED.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from ..errors import ChainError
from ..graphs.graph import DiGraph
from .registry import APIRegistry


@dataclass(frozen=True)
class ChainNode:
    """One API invocation inside a chain."""

    #: Name of the API to invoke (must exist in the registry).
    api_name: str
    #: Keyword parameters passed to the API.
    params: dict[str, Any] = field(default_factory=dict)
    #: Indexes of earlier nodes this step explicitly depends on; empty
    #: means "the immediately preceding node" (linear chaining).
    depends_on: tuple[int, ...] = ()

    def render(self) -> str:
        if not self.params:
            return self.api_name
        inner = ", ".join(f"{k}={v!r}" for k, v in sorted(self.params.items()))
        return f"{self.api_name}({inner})"


class APIChain:
    """An ordered chain of API invocations.

    Example::

        chain = APIChain([ChainNode("count_nodes"),
                          ChainNode("detect_communities")])
        chain.validate(registry)
    """

    def __init__(self, nodes: list[ChainNode] | None = None) -> None:
        self.nodes: list[ChainNode] = list(nodes or [])

    @classmethod
    def from_names(cls, names: list[str]) -> "APIChain":
        """Build a linear chain from bare API names."""
        return cls([ChainNode(name) for name in names])

    def append(self, node: ChainNode | str) -> None:
        if isinstance(node, str):
            node = ChainNode(node)
        self.nodes.append(node)

    def insert(self, index: int, node: ChainNode | str) -> None:
        if isinstance(node, str):
            node = ChainNode(node)
        self.nodes.insert(index, node)

    def remove(self, index: int) -> ChainNode:
        try:
            return self.nodes.pop(index)
        except IndexError:
            raise ChainError(f"no chain step at index {index}") from None

    def replace(self, index: int, node: ChainNode | str) -> None:
        if isinstance(node, str):
            node = ChainNode(node)
        if not 0 <= index < len(self.nodes):
            raise ChainError(f"no chain step at index {index}")
        self.nodes[index] = node

    def api_names(self) -> list[str]:
        return [node.api_name for node in self.nodes]

    def validate(self, registry: APIRegistry) -> None:
        """Raise :class:`ChainError` unless every step is executable."""
        if not self.nodes:
            raise ChainError("chain is empty")
        for index, node in enumerate(self.nodes):
            if node.api_name not in registry:
                raise ChainError(
                    f"step {index}: unknown API {node.api_name!r}")
            spec = registry.get(node.api_name)
            unknown = set(node.params) - set(spec.params)
            if unknown:
                raise ChainError(
                    f"step {index}: API {node.api_name!r} does not accept "
                    f"params {sorted(unknown)}")
            for dep in node.depends_on:
                if not 0 <= dep < index:
                    raise ChainError(
                        f"step {index}: dependency {dep} is not an earlier "
                        f"step")

    def render(self) -> str:
        """Human-readable arrow form, e.g. ``a -> b -> c``."""
        return " -> ".join(node.render() for node in self.nodes)

    def copy(self) -> "APIChain":
        return APIChain(list(self.nodes))

    # ------------------------------------------------------------------
    # serialization (session persistence / chain sharing)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """JSON-able document: ``{"nodes": [{api, params, depends_on}]}``."""
        return {"nodes": [
            {"api": node.api_name, "params": dict(node.params),
             "depends_on": list(node.depends_on)}
            for node in self.nodes]}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "APIChain":
        """Rebuild a chain from :meth:`to_dict` output."""
        try:
            nodes = [ChainNode(api_name=entry["api"],
                               params=dict(entry.get("params", {})),
                               depends_on=tuple(entry.get("depends_on",
                                                          ())))
                     for entry in data["nodes"]]
        except (KeyError, TypeError) as exc:
            raise ChainError(f"malformed chain document: {exc}") from exc
        return cls(nodes)

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self) -> Iterator[ChainNode]:
        return iter(self.nodes)

    def __getitem__(self, index: int) -> ChainNode:
        return self.nodes[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, APIChain):
            return NotImplemented
        return self.nodes == other.nodes

    def __repr__(self) -> str:
        return f"<APIChain {self.render()}>"


def chain_to_graph(chain: APIChain) -> DiGraph:
    """View a chain as a labeled digraph for GED-based losses.

    Nodes are step indexes labeled with the API name (``label`` attr);
    arcs follow the declared dependencies, defaulting to the linear
    predecessor link.
    """
    graph = DiGraph(name="api_chain")
    for index, node in enumerate(chain.nodes):
        graph.add_node(index, label=node.api_name)
    for index, node in enumerate(chain.nodes):
        deps = node.depends_on or ((index - 1,) if index > 0 else ())
        for dep in deps:
            graph.add_edge(dep, index)
    return graph
