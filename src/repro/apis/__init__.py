"""Graph-analysis API substrate.

ChatGraph answers a prompt by generating and executing a *chain* of
analysis APIs.  This package provides:

* :mod:`registry` — typed API specifications and the registry the
  retrieval module and the LLM draw from;
* :mod:`chain` — the :class:`APIChain` object (a small DAG of API
  invocations) with validation and a graph view for GED-based losses;
* :mod:`executor` — a monitored executor emitting progress events
  (paper scenario 4);
* :mod:`catalog` — the concrete APIs: generic graph statistics, social
  analysis, molecule properties, knowledge-graph inference, graph
  editing and report generation.
"""

from .registry import APIRegistry, APISpec, Category, default_registry
from .chain import APIChain, ChainNode, chain_to_graph
from .executor import (
    ChainContext,
    ChainExecutionRecord,
    ChainExecutor,
    DegradedStep,
    ExecutionEvent,
    ExecutionPolicy,
    StepPolicy,
    StepRecord,
)

__all__ = [
    "APIRegistry",
    "APISpec",
    "Category",
    "default_registry",
    "APIChain",
    "ChainNode",
    "chain_to_graph",
    "ChainContext",
    "ChainExecutor",
    "ChainExecutionRecord",
    "DegradedStep",
    "ExecutionEvent",
    "ExecutionPolicy",
    "StepPolicy",
    "StepRecord",
]
