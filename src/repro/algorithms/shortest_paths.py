"""Shortest paths: unweighted BFS paths, Dijkstra, eccentricity, diameter."""

from __future__ import annotations

import heapq
from typing import Iterator

from ..errors import GraphError, NodeNotFoundError
from ..graphs.graph import DiGraph, Graph, Node
from .traversal import bfs_distances, bfs_tree


def shortest_path(graph: Graph, source: Node, target: Node) -> list[Node]:
    """Unweighted shortest path from ``source`` to ``target``.

    Raises :class:`GraphError` if no path exists.
    """
    if target not in graph:
        raise NodeNotFoundError(target)
    parents = bfs_tree(graph, source)
    if target != source and target not in parents:
        raise GraphError(f"no path from {source!r} to {target!r}")
    path = [target]
    while path[-1] != source:
        path.append(parents[path[-1]])
    path.reverse()
    return path


def shortest_path_length(graph: Graph, source: Node, target: Node) -> int:
    """Hop count of the unweighted shortest path."""
    return len(shortest_path(graph, source, target)) - 1


def dijkstra(graph: Graph, source: Node,
             weight: str = "weight") -> dict[Node, float]:
    """Weighted shortest-path distances from ``source``.

    Edge weights come from the ``weight`` edge attribute (default 1.0 when
    absent); negative weights raise :class:`GraphError`.
    """
    if source not in graph:
        raise NodeNotFoundError(source)
    step = (graph.successors if isinstance(graph, DiGraph)
            else graph.neighbors)
    distances: dict[Node, float] = {}
    heap: list[tuple[float, int, Node]] = [(0.0, 0, source)]
    tie = 0
    while heap:
        dist, __, node = heapq.heappop(heap)
        if node in distances:
            continue
        distances[node] = dist
        for neighbor in step(node):
            if neighbor in distances:
                continue
            w = graph.get_edge_attr(node, neighbor, weight, 1.0)
            if w < 0:
                raise GraphError("dijkstra requires non-negative weights")
            tie += 1
            heapq.heappush(heap, (dist + w, tie, neighbor))
    return distances


def all_pairs_shortest_lengths(graph: Graph) -> Iterator[
        tuple[Node, dict[Node, int]]]:
    """Yield ``(source, {target: hops})`` for every node (unweighted BFS)."""
    for node in graph.nodes():
        yield node, bfs_distances(graph, node)


def eccentricity(graph: Graph, node: Node) -> int:
    """Greatest hop distance from ``node`` to any reachable node.

    Raises :class:`GraphError` if the graph is disconnected from ``node``'s
    point of view (some node unreachable).
    """
    distances = bfs_distances(graph, node)
    if len(distances) != graph.number_of_nodes():
        raise GraphError("eccentricity undefined: graph not connected")
    return max(distances.values())


def diameter(graph: Graph) -> int:
    """Greatest eccentricity over all nodes (connected graphs only)."""
    if graph.number_of_nodes() == 0:
        raise GraphError("diameter undefined for the empty graph")
    return max(eccentricity(graph, node) for node in graph.nodes())
