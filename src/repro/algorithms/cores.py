"""k-core decomposition."""

from __future__ import annotations

import heapq

from ..errors import GraphError
from ..graphs.graph import DiGraph, Graph, Node


def core_number(graph: Graph) -> dict[Node, int]:
    """Core number of each node via min-degree peeling.

    The core number of ``v`` is the largest ``k`` such that ``v`` belongs
    to a subgraph where every node has degree >= ``k``.  Self-loops are
    ignored.  Runs in O(m log n) using a lazy-deletion heap.
    """
    if isinstance(graph, DiGraph):
        raise GraphError("core decomposition requires an undirected graph")
    neighbor_sets = {node: set(graph.neighbors(node)) - {node}
                     for node in graph.nodes()}
    degrees = {node: len(nbrs) for node, nbrs in neighbor_sets.items()}
    heap: list[tuple[int, int, Node]] = []
    tie = 0
    for node, d in degrees.items():
        heap.append((d, tie, node))
        tie += 1
    heapq.heapify(heap)
    core: dict[Node, int] = {}
    current_k = 0
    while heap:
        d, __, node = heapq.heappop(heap)
        if node in core or d != degrees[node]:
            continue  # stale heap entry
        current_k = max(current_k, d)
        core[node] = current_k
        for neighbor in neighbor_sets[node]:
            if neighbor in core:
                continue
            degrees[neighbor] -= 1
            tie += 1
            heapq.heappush(heap, (degrees[neighbor], tie, neighbor))
    return core


def k_core(graph: Graph, k: int) -> Graph:
    """The maximal subgraph in which every node has degree >= ``k``."""
    if k < 0:
        raise GraphError("k must be >= 0")
    numbers = core_number(graph)
    return graph.subgraph(node for node, c in numbers.items() if c >= k)
