"""Graph algorithm library.

Pure-Python implementations of every graph primitive the ChatGraph API
catalog needs: traversal, connectivity, shortest paths, centrality,
clustering, community detection, cores, motifs, assignment (Hungarian),
graph edit distance, subgraph isomorphism (VF2) and graph similarity.
"""

from .traversal import bfs_distances, bfs_order, bfs_tree, dfs_order, simple_paths
from .components import (
    articulation_points,
    bridges,
    connected_components,
    is_connected,
    largest_component,
    strongly_connected_components,
)
from .shortest_paths import (
    all_pairs_shortest_lengths,
    diameter,
    dijkstra,
    eccentricity,
    shortest_path,
    shortest_path_length,
)
from .centrality import (
    betweenness_centrality,
    closeness_centrality,
    degree_centrality,
    pagerank,
)
from .clustering import (
    average_clustering,
    clustering_coefficient,
    transitivity,
    triangles,
)
from .community import greedy_modularity_communities, label_propagation, modularity
from .cores import core_number, k_core
from .spectral import fiedler_vector, spectral_bisection, spectral_communities
from .motifs import count_motifs, find_cliques, motif_census, triangle_count
from .assortativity import attribute_assortativity, degree_assortativity
from .matching import hungarian
from .ged import (
    GedResult,
    approximate_ged,
    exact_ged,
    graph_edit_distance,
)
from .isomorphism import find_subgraph_isomorphisms, is_isomorphic, subgraph_is_isomorphic
from .similarity import (
    degree_sequence_similarity,
    jaccard_edge_similarity,
    wl_histogram_similarity,
    wl_histograms,
    wl_kernel_similarity,
)

__all__ = [
    "bfs_distances", "bfs_order", "bfs_tree", "dfs_order", "simple_paths",
    "articulation_points", "bridges", "connected_components", "is_connected",
    "largest_component", "strongly_connected_components",
    "all_pairs_shortest_lengths", "diameter", "dijkstra", "eccentricity",
    "shortest_path", "shortest_path_length",
    "betweenness_centrality", "closeness_centrality", "degree_centrality",
    "pagerank",
    "average_clustering", "clustering_coefficient", "transitivity",
    "triangles",
    "greedy_modularity_communities", "label_propagation", "modularity",
    "core_number", "k_core",
    "fiedler_vector", "spectral_bisection", "spectral_communities",
    "count_motifs", "find_cliques", "motif_census", "triangle_count",
    "attribute_assortativity",
    "degree_assortativity",
    "hungarian",
    "GedResult", "approximate_ged", "exact_ged", "graph_edit_distance",
    "find_subgraph_isomorphisms", "is_isomorphic", "subgraph_is_isomorphic",
    "degree_sequence_similarity", "jaccard_edge_similarity",
    "wl_histogram_similarity", "wl_histograms", "wl_kernel_similarity",
]
