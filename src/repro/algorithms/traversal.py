"""Graph traversal primitives: BFS, DFS and bounded simple paths."""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterator

from ..errors import NodeNotFoundError
from ..graphs.graph import DiGraph, Graph, Node


def _step(graph: Graph) -> Callable[[Node], Iterator[Node]]:
    """Neighbor function: successors for digraphs, neighbors otherwise."""
    if isinstance(graph, DiGraph):
        return graph.successors
    return graph.neighbors


def bfs_order(graph: Graph, source: Node) -> list[Node]:
    """Nodes reachable from ``source`` in breadth-first order."""
    return list(bfs_distances(graph, source))


def bfs_distances(graph: Graph, source: Node) -> dict[Node, int]:
    """Hop distance from ``source`` to every reachable node."""
    if source not in graph:
        raise NodeNotFoundError(source)
    step = _step(graph)
    distances = {source: 0}
    queue = deque([source])
    while queue:
        node = queue.popleft()
        for neighbor in step(node):
            if neighbor not in distances:
                distances[neighbor] = distances[node] + 1
                queue.append(neighbor)
    return distances


def bfs_tree(graph: Graph, source: Node) -> dict[Node, Node]:
    """BFS parent pointers: maps each reached node to its parent.

    ``source`` is absent from the result (it has no parent).
    """
    if source not in graph:
        raise NodeNotFoundError(source)
    step = _step(graph)
    parents: dict[Node, Node] = {}
    seen = {source}
    queue = deque([source])
    while queue:
        node = queue.popleft()
        for neighbor in step(node):
            if neighbor not in seen:
                seen.add(neighbor)
                parents[neighbor] = node
                queue.append(neighbor)
    return parents


def dfs_order(graph: Graph, source: Node) -> list[Node]:
    """Nodes reachable from ``source`` in (iterative) depth-first preorder."""
    if source not in graph:
        raise NodeNotFoundError(source)
    step = _step(graph)
    order: list[Node] = []
    seen: set[Node] = set()
    stack = [source]
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        order.append(node)
        # push reversed so iteration order matches recursive DFS
        stack.extend(reversed(list(step(node))))
    return order


def simple_paths(graph: Graph, source: Node,
                 max_length: int) -> Iterator[tuple[Node, ...]]:
    """Yield every simple path starting at ``source`` with ≤ ``max_length`` edges.

    Paths are yielded as node tuples, including the trivial path
    ``(source,)``.  The number of paths can grow as O(d^l); callers
    should bound ``max_length`` (the sequentializer uses l ≤ 3).
    """
    if source not in graph:
        raise NodeNotFoundError(source)
    if max_length < 0:
        raise ValueError("max_length must be >= 0")
    step = _step(graph)

    def extend(path: list[Node], used: set[Node]) -> Iterator[tuple[Node, ...]]:
        yield tuple(path)
        if len(path) - 1 == max_length:
            return
        for neighbor in step(path[-1]):
            if neighbor not in used:
                path.append(neighbor)
                used.add(neighbor)
                yield from extend(path, used)
                used.remove(neighbor)
                path.pop()

    yield from extend([source], {source})
