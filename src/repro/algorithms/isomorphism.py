"""(Sub)graph isomorphism via a VF2-style backtracking matcher."""

from __future__ import annotations

from typing import Callable, Iterator

from ..errors import GraphError
from ..graphs.graph import DiGraph, Graph, Node

LabelFn = Callable[[Graph, Node], object]


def _no_label(graph: Graph, node: Node) -> object:
    return None


class _VF2Matcher:
    """Backtracking matcher finding embeddings of ``pattern`` in ``target``.

    With ``induced=True`` (default) non-edges of the pattern must map to
    non-edges of the target (induced subgraph isomorphism); with
    ``induced=False`` only pattern edges are required (monomorphism).
    """

    def __init__(self, pattern: Graph, target: Graph,
                 node_label: LabelFn = _no_label,
                 induced: bool = True) -> None:
        if isinstance(pattern, DiGraph) != isinstance(target, DiGraph):
            raise GraphError("pattern and target must share directedness")
        self.pattern = pattern
        self.target = target
        self.node_label = node_label
        self.induced = induced
        self.directed = isinstance(pattern, DiGraph)
        # order pattern nodes to keep the partial mapping connected
        self.order = self._matching_order()

    def _matching_order(self) -> list[Node]:
        nodes = list(self.pattern.nodes())
        if not nodes:
            return []
        undirected = (self.pattern.to_undirected() if self.directed
                      else self.pattern)
        order: list[Node] = []
        placed: set[Node] = set()
        remaining = set(nodes)
        while remaining:
            # start each component from its max-degree node
            candidates = [n for n in remaining
                          if any(nb in placed
                                 for nb in undirected.neighbors(n))]
            pool = candidates or list(remaining)
            node = max(pool, key=undirected.degree)
            order.append(node)
            placed.add(node)
            remaining.discard(node)
        return order

    def _compatible(self, pu: Node, tv: Node,
                    mapping: dict[Node, Node]) -> bool:
        if self.node_label(self.pattern, pu) != \
                self.node_label(self.target, tv):
            return False
        for mapped_p, mapped_t in mapping.items():
            if self.directed:
                pairs = ((self.pattern.has_edge(pu, mapped_p),
                          self.target.has_edge(tv, mapped_t)),
                         (self.pattern.has_edge(mapped_p, pu),
                          self.target.has_edge(mapped_t, tv)))
            else:
                pairs = ((self.pattern.has_edge(pu, mapped_p),
                          self.target.has_edge(tv, mapped_t)),)
            for p_edge, t_edge in pairs:
                if p_edge and not t_edge:
                    return False
                if self.induced and t_edge and not p_edge:
                    return False
        return True

    def embeddings(self) -> Iterator[dict[Node, Node]]:
        """Yield every embedding as a pattern-node -> target-node dict."""
        if self.pattern.number_of_nodes() > self.target.number_of_nodes():
            return
        used: set[Node] = set()
        mapping: dict[Node, Node] = {}

        def backtrack(depth: int) -> Iterator[dict[Node, Node]]:
            if depth == len(self.order):
                yield dict(mapping)
                return
            pu = self.order[depth]
            for tv in self.target.nodes():
                if tv in used:
                    continue
                if self._compatible(pu, tv, mapping):
                    mapping[pu] = tv
                    used.add(tv)
                    yield from backtrack(depth + 1)
                    used.discard(tv)
                    del mapping[pu]

        yield from backtrack(0)


def find_subgraph_isomorphisms(pattern: Graph, target: Graph,
                               node_label: LabelFn = _no_label,
                               induced: bool = True,
                               limit: int | None = None) -> list[
                                   dict[Node, Node]]:
    """All (or the first ``limit``) embeddings of ``pattern`` in ``target``."""
    results: list[dict[Node, Node]] = []
    for embedding in _VF2Matcher(pattern, target, node_label,
                                 induced).embeddings():
        results.append(embedding)
        if limit is not None and len(results) >= limit:
            break
    return results


def subgraph_is_isomorphic(pattern: Graph, target: Graph,
                           node_label: LabelFn = _no_label,
                           induced: bool = True) -> bool:
    """True iff ``pattern`` embeds in ``target``."""
    matcher = _VF2Matcher(pattern, target, node_label, induced)
    return next(matcher.embeddings(), None) is not None


def is_isomorphic(g1: Graph, g2: Graph,
                  node_label: LabelFn = _no_label) -> bool:
    """True iff the two graphs are isomorphic (label-aware if given)."""
    if g1.number_of_nodes() != g2.number_of_nodes():
        return False
    if g1.number_of_edges() != g2.number_of_edges():
        return False
    deg1 = sorted(g1.degree(n) for n in g1.nodes())
    deg2 = sorted(g2.degree(n) for n in g2.nodes())
    if deg1 != deg2:
        return False
    return subgraph_is_isomorphic(g1, g2, node_label=node_label,
                                  induced=True)
