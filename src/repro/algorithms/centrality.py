"""Centrality measures: degree, closeness, betweenness (Brandes), PageRank."""

from __future__ import annotations

from collections import deque

from ..errors import GraphError
from ..graphs.graph import DiGraph, Graph, Node
from .traversal import bfs_distances


def degree_centrality(graph: Graph) -> dict[Node, float]:
    """Degree divided by ``n - 1`` (0.0 for graphs with < 2 nodes)."""
    n = graph.number_of_nodes()
    if n < 2:
        return {node: 0.0 for node in graph.nodes()}
    return {node: graph.degree(node) / (n - 1) for node in graph.nodes()}


def closeness_centrality(graph: Graph) -> dict[Node, float]:
    """Wasserman-Faust closeness, robust to disconnected graphs."""
    n = graph.number_of_nodes()
    result: dict[Node, float] = {}
    for node in graph.nodes():
        distances = bfs_distances(graph, node)
        reachable = len(distances) - 1
        total = sum(distances.values())
        if reachable > 0 and total > 0 and n > 1:
            result[node] = (reachable / (n - 1)) * (reachable / total)
        else:
            result[node] = 0.0
    return result


def betweenness_centrality(graph: Graph,
                           normalized: bool = True) -> dict[Node, float]:
    """Brandes' exact betweenness centrality (unweighted)."""
    betweenness = {node: 0.0 for node in graph.nodes()}
    step = (graph.successors if isinstance(graph, DiGraph)
            else graph.neighbors)
    for source in graph.nodes():
        # single-source shortest-path DAG
        order: list[Node] = []
        preds: dict[Node, list[Node]] = {node: [] for node in graph.nodes()}
        sigma = {node: 0.0 for node in graph.nodes()}
        sigma[source] = 1.0
        dist: dict[Node, int] = {source: 0}
        queue = deque([source])
        while queue:
            node = queue.popleft()
            order.append(node)
            for neighbor in step(node):
                if neighbor not in dist:
                    dist[neighbor] = dist[node] + 1
                    queue.append(neighbor)
                if dist[neighbor] == dist[node] + 1:
                    sigma[neighbor] += sigma[node]
                    preds[neighbor].append(node)
        # accumulation
        delta = {node: 0.0 for node in graph.nodes()}
        for node in reversed(order):
            for pred in preds[node]:
                delta[pred] += (sigma[pred] / sigma[node]) * (1 + delta[node])
            if node != source:
                betweenness[node] += delta[node]
    n = graph.number_of_nodes()
    if not graph.directed:
        for node in betweenness:
            betweenness[node] /= 2.0
    if normalized and n > 2:
        scale = ((n - 1) * (n - 2)) if graph.directed \
            else ((n - 1) * (n - 2) / 2.0)
        for node in betweenness:
            betweenness[node] /= scale
    return betweenness


def pagerank(graph: Graph, damping: float = 0.85, max_iter: int = 100,
             tol: float = 1e-9) -> dict[Node, float]:
    """Power-iteration PageRank; dangling mass is spread uniformly."""
    if not 0.0 < damping < 1.0:
        raise GraphError("damping must be in (0, 1)")
    nodes = list(graph.nodes())
    n = len(nodes)
    if n == 0:
        return {}
    step = (graph.successors if isinstance(graph, DiGraph)
            else graph.neighbors)
    out_degree = {node: sum(1 for __ in step(node)) for node in nodes}
    rank = {node: 1.0 / n for node in nodes}
    for __ in range(max_iter):
        dangling = sum(rank[node] for node in nodes if out_degree[node] == 0)
        nxt = {node: (1.0 - damping) / n + damping * dangling / n
               for node in nodes}
        for node in nodes:
            if out_degree[node] == 0:
                continue
            share = damping * rank[node] / out_degree[node]
            for neighbor in step(node):
                nxt[neighbor] += share
        err = sum(abs(nxt[node] - rank[node]) for node in nodes)
        rank = nxt
        if err < tol:
            break
    return rank
