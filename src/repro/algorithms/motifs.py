"""Motif counting: triangles, cliques, stars, and a small motif census.

The motif census feeds the sequentializer's super-graph construction
(RUM-style coarsening, paper Sec. II-B) and the report APIs.
"""

from __future__ import annotations

import itertools
from typing import Iterator

from ..errors import GraphError
from ..graphs.graph import DiGraph, Graph, Node
from .clustering import triangles


def triangle_count(graph: Graph) -> int:
    """Total number of triangles in the graph."""
    return sum(triangles(graph).values()) // 3


def find_cliques(graph: Graph, max_cliques: int = 100000) -> Iterator[
        frozenset[Node]]:
    """Maximal cliques via Bron-Kerbosch with pivoting.

    Yields each maximal clique as a frozenset.  Stops after
    ``max_cliques`` cliques to bound worst-case blowup.
    """
    if isinstance(graph, DiGraph):
        raise GraphError("clique enumeration requires an undirected graph")
    adjacency = {node: set(graph.neighbors(node)) - {node}
                 for node in graph.nodes()}
    emitted = 0

    def expand(r: set[Node], p: set[Node],
               x: set[Node]) -> Iterator[frozenset[Node]]:
        nonlocal emitted
        if emitted >= max_cliques:
            return
        if not p and not x:
            emitted += 1
            yield frozenset(r)
            return
        pivot = max(p | x, key=lambda u: len(adjacency[u] & p))
        for v in list(p - adjacency[pivot]):
            yield from expand(r | {v}, p & adjacency[v], x & adjacency[v])
            p.discard(v)
            x.add(v)

    yield from expand(set(), set(adjacency), set())


def count_motifs(graph: Graph, size: int = 3) -> dict[str, int]:
    """Census of connected induced subgraphs on ``size`` nodes (3 or 4).

    For ``size == 3`` counts ``path_3`` (wedges) and ``triangle``.  For
    ``size == 4`` counts ``path_4``, ``star_4``, ``cycle_4``, ``tadpole``
    (triangle + pendant), ``diamond`` and ``clique_4``.  Enumeration is
    exhaustive, so use on small/medium graphs only.
    """
    if isinstance(graph, DiGraph):
        raise GraphError("motif census requires an undirected graph")
    if size not in (3, 4):
        raise GraphError("motif census supports sizes 3 and 4")
    adjacency = {node: set(graph.neighbors(node)) - {node}
                 for node in graph.nodes()}
    nodes = list(adjacency)
    counts: dict[str, int] = {}

    def classify(subset: tuple[Node, ...]) -> str | None:
        edges = sum(1 for u, v in itertools.combinations(subset, 2)
                    if v in adjacency[u])
        if size == 3:
            return {2: "path_3", 3: "triangle"}.get(edges)
        degrees = sorted(
            sum(1 for v in subset if v != u and v in adjacency[u])
            for u in subset)
        if edges == 3 and degrees == [1, 1, 2, 2]:
            return "path_4"
        if edges == 3 and degrees == [1, 1, 1, 3]:
            return "star_4"
        if edges == 4 and degrees == [2, 2, 2, 2]:
            return "cycle_4"
        if edges == 4 and degrees == [1, 2, 2, 3]:
            return "tadpole"
        if edges == 5:
            return "diamond"
        if edges == 6:
            return "clique_4"
        return None  # disconnected

    for subset in itertools.combinations(nodes, size):
        label = classify(subset)
        if label is not None:
            counts[label] = counts.get(label, 0) + 1
    return counts


def motif_census(graph: Graph) -> dict[str, int]:
    """Summary motif profile: triangles, wedges, 4-cliques and max clique."""
    census = dict(count_motifs(graph, 3))
    best = 0
    for clique in find_cliques(graph):
        best = max(best, len(clique))
    census["max_clique"] = best
    return census
