"""Triangles, local clustering coefficients and transitivity."""

from __future__ import annotations

from ..errors import GraphError
from ..graphs.graph import DiGraph, Graph, Node


def _require_undirected(graph: Graph) -> None:
    if isinstance(graph, DiGraph):
        raise GraphError("clustering metrics require an undirected graph")


def triangles(graph: Graph) -> dict[Node, int]:
    """Number of triangles through each node."""
    _require_undirected(graph)
    neighbor_sets = {node: set(graph.neighbors(node)) - {node}
                     for node in graph.nodes()}
    counts: dict[Node, int] = {}
    for node, nbrs in neighbor_sets.items():
        t = sum(len(nbrs & neighbor_sets[other]) for other in nbrs)
        counts[node] = t // 2
    return counts


def clustering_coefficient(graph: Graph) -> dict[Node, float]:
    """Local clustering coefficient of each node (0.0 for degree < 2)."""
    _require_undirected(graph)
    tri = triangles(graph)
    coefficients: dict[Node, float] = {}
    for node in graph.nodes():
        d = len(set(graph.neighbors(node)) - {node})
        coefficients[node] = (2.0 * tri[node] / (d * (d - 1))) if d >= 2 \
            else 0.0
    return coefficients


def average_clustering(graph: Graph) -> float:
    """Mean of the local clustering coefficients (0.0 for empty graphs)."""
    coefficients = clustering_coefficient(graph)
    if not coefficients:
        return 0.0
    return sum(coefficients.values()) / len(coefficients)


def transitivity(graph: Graph) -> float:
    """Global transitivity: ``3 * triangles / open-or-closed triads``."""
    _require_undirected(graph)
    tri_total = sum(triangles(graph).values())  # each triangle counted 3x
    triads = 0
    for node in graph.nodes():
        d = len(set(graph.neighbors(node)) - {node})
        triads += d * (d - 1) // 2
    if triads == 0:
        return 0.0
    return tri_total / triads
