"""Community detection: label propagation, greedy modularity, modularity score."""

from __future__ import annotations

import random
from typing import Iterable, Sequence

from ..errors import GraphError
from ..graphs.graph import DiGraph, Graph, Node


def _require_undirected(graph: Graph) -> None:
    if isinstance(graph, DiGraph):
        raise GraphError("community detection requires an undirected graph")


def modularity(graph: Graph, communities: Sequence[Iterable[Node]]) -> float:
    """Newman modularity ``Q`` of a node partition.

    Raises :class:`GraphError` if ``communities`` is not a partition of the
    node set.
    """
    _require_undirected(graph)
    membership: dict[Node, int] = {}
    for cid, community in enumerate(communities):
        for node in community:
            if node in membership:
                raise GraphError(f"node {node!r} in two communities")
            if node not in graph:
                raise GraphError(f"node {node!r} not in graph")
            membership[node] = cid
    if len(membership) != graph.number_of_nodes():
        raise GraphError("communities do not cover all nodes")
    m = graph.number_of_edges()
    if m == 0:
        return 0.0
    q = 0.0
    degree = {node: graph.degree(node) for node in graph.nodes()}
    internal: dict[int, int] = {}
    degree_sum: dict[int, int] = {}
    for u, v in graph.edges():
        if membership[u] == membership[v]:
            internal[membership[u]] = internal.get(membership[u], 0) + 1
    for node, cid in membership.items():
        degree_sum[cid] = degree_sum.get(cid, 0) + degree[node]
    for cid in range(len(communities)):
        lc = internal.get(cid, 0)
        dc = degree_sum.get(cid, 0)
        q += lc / m - (dc / (2.0 * m)) ** 2
    return q


def label_propagation(graph: Graph, max_iter: int = 100,
                      seed: int = 0) -> list[set[Node]]:
    """Asynchronous label propagation (Raghavan et al.).

    Deterministic given ``seed``.  Returns the communities sorted by size
    (largest first).
    """
    _require_undirected(graph)
    rng = random.Random(seed)
    labels = {node: i for i, node in enumerate(graph.nodes())}
    nodes = list(graph.nodes())
    for __ in range(max_iter):
        rng.shuffle(nodes)
        changed = False
        for node in nodes:
            counts: dict[int, int] = {}
            for neighbor in graph.neighbors(node):
                if neighbor == node:
                    continue
                counts[labels[neighbor]] = counts.get(labels[neighbor], 0) + 1
            if not counts:
                continue
            best = max(counts.values())
            best_labels = sorted(l for l, c in counts.items() if c == best)
            new_label = rng.choice(best_labels)
            if new_label != labels[node]:
                labels[node] = new_label
                changed = True
        if not changed:
            break
    groups: dict[int, set[Node]] = {}
    for node, label in labels.items():
        groups.setdefault(label, set()).add(node)
    return sorted(groups.values(), key=len, reverse=True)


def greedy_modularity_communities(graph: Graph) -> list[set[Node]]:
    """CNM-style greedy agglomeration: merge the pair of communities with
    the best modularity gain until no merge improves Q.

    Returns communities sorted by size (largest first).
    """
    _require_undirected(graph)
    m = graph.number_of_edges()
    if m == 0:
        return [{node} for node in graph.nodes()]
    communities: dict[int, set[Node]] = {
        i: {node} for i, node in enumerate(graph.nodes())}
    membership = {node: i for i, node in enumerate(graph.nodes())}
    # e[i][j]: number of edges between communities i and j
    e: dict[int, dict[int, int]] = {i: {} for i in communities}
    a: dict[int, int] = {i: 0 for i in communities}  # degree sums
    for u, v in graph.edges():
        cu, cv = membership[u], membership[v]
        e[cu][cv] = e[cu].get(cv, 0) + 1
        if cu != cv:
            e[cv][cu] = e[cv].get(cu, 0) + 1
    for node in graph.nodes():
        a[membership[node]] += graph.degree(node)

    def gain(i: int, j: int) -> float:
        eij = e[i].get(j, 0)
        return eij / m - a[i] * a[j] / (2.0 * m * m)

    while len(communities) > 1:
        best_pair = None
        best_gain = 1e-12  # only strictly positive merges
        for i in communities:
            for j in e[i]:
                if j <= i or j not in communities:
                    continue
                g = gain(i, j)
                if g > best_gain:
                    best_gain = g
                    best_pair = (i, j)
        if best_pair is None:
            break
        i, j = best_pair
        communities[i] |= communities.pop(j)
        a[i] += a.pop(j)
        for k, count in e.pop(j).items():
            if k == j:
                continue
            target = i if k == i else k
            if k == i:
                e[i][i] = e[i].get(i, 0) + count
                e[i].pop(j, None)
            else:
                e[i][k] = e[i].get(k, 0) + count
                e[k][i] = e[i][k]
                e[k].pop(j, None)
        e[i].pop(j, None)
    return sorted(communities.values(), key=len, reverse=True)
