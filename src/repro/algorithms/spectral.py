"""Spectral graph partitioning (Fiedler-vector bisection).

A second community detector with a different character from label
propagation / greedy modularity: it cuts the graph by the sign pattern
of the Laplacian's second eigenvector, recursively until ``k`` parts
exist.  Dense numpy eigendecomposition — intended for graphs up to a
few thousand nodes.
"""

from __future__ import annotations

import numpy as np

from ..errors import GraphError
from ..graphs.graph import DiGraph, Graph, Node


def fiedler_vector(graph: Graph) -> dict[Node, float]:
    """Second-smallest Laplacian eigenvector entries per node.

    Requires a connected graph with >= 2 nodes.
    """
    if isinstance(graph, DiGraph):
        graph = graph.to_undirected()
    nodes = list(graph.nodes())
    n = len(nodes)
    if n < 2:
        raise GraphError("fiedler vector needs >= 2 nodes")
    index = {node: i for i, node in enumerate(nodes)}
    laplacian = np.zeros((n, n))
    for u, v in graph.edges():
        if u == v:
            continue
        i, j = index[u], index[v]
        laplacian[i, j] -= 1.0
        laplacian[j, i] -= 1.0
        laplacian[i, i] += 1.0
        laplacian[j, j] += 1.0
    eigenvalues, eigenvectors = np.linalg.eigh(laplacian)
    if eigenvalues[1] < 1e-9:
        raise GraphError("fiedler vector undefined: graph disconnected")
    vector = eigenvectors[:, 1]
    return {node: float(vector[index[node]]) for node in nodes}


def spectral_bisection(graph: Graph) -> tuple[set[Node], set[Node]]:
    """Split a connected graph by the sign of the Fiedler vector.

    The sign pattern gives the natural (possibly unbalanced) cut; when
    it degenerates to one side, the median value splits instead.
    """
    values = fiedler_vector(graph)
    left = {node for node, value in values.items() if value < 0.0}
    right = set(values) - left
    if not left or not right:
        median = float(np.median(list(values.values())))
        left = {node for node, value in values.items() if value <= median}
        right = set(values) - left
    if not left or not right:  # flat spectrum: even split
        ordered = sorted(values, key=repr)
        half = len(ordered) // 2
        left, right = set(ordered[:half]), set(ordered[half:])
    return left, right


def spectral_communities(graph: Graph, k: int = 2) -> list[set[Node]]:
    """Recursive spectral bisection into ``k`` communities.

    The largest current part is split repeatedly; disconnected parts
    fall back to their connected components.  Returns parts sorted by
    size (largest first).
    """
    if k < 1:
        raise GraphError("k must be >= 1")
    if isinstance(graph, DiGraph):
        graph = graph.to_undirected()
    if graph.number_of_nodes() == 0:
        return []
    from .components import connected_components
    parts: list[set[Node]] = [set(component)
                              for component in connected_components(graph)]
    while len(parts) < k:
        parts.sort(key=len, reverse=True)
        biggest = parts[0]
        if len(biggest) < 2:
            break
        subgraph = graph.subgraph(biggest)
        try:
            left, right = spectral_bisection(subgraph)
        except GraphError:
            break
        parts = [left, right] + parts[1:]
    return sorted(parts, key=len, reverse=True)
