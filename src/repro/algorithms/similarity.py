"""Whole-graph similarity: WL kernel, edge Jaccard, degree-sequence cosine.

These power the graph-comparison scenario (paper Fig. 5): the similarity
search API scores a query graph against a database and the WL kernel is
the cheap pre-filter before exact/approximate GED ranking.
"""

from __future__ import annotations

import hashlib
import math
from collections import Counter
from typing import Callable

from ..graphs.graph import Graph, Node

LabelFn = Callable[[Graph, Node], object]


def _default_label(graph: Graph, node: Node) -> object:
    return graph.get_node_attr(node, "label", "*")


def wl_histograms(graph: Graph, iterations: int = 3,
                  node_label: LabelFn = _default_label) -> Counter:
    """Weisfeiler-Leman subtree feature histogram.

    Runs ``iterations`` rounds of neighborhood label refinement and
    returns the combined Counter of (round, refined-label) features.
    """
    labels = {node: str(node_label(graph, node)) for node in graph.nodes()}
    features: Counter = Counter()
    for node in graph.nodes():
        features[(0, labels[node])] += 1
    for round_no in range(1, iterations + 1):
        refined: dict[Node, str] = {}
        for node in graph.nodes():
            neighborhood = sorted(labels[nb] for nb in graph.neighbors(node))
            signature = labels[node] + "|" + ",".join(neighborhood)
            digest = hashlib.md5(signature.encode("utf-8")).hexdigest()
            refined[node] = digest[:16]
        labels = refined
        for node in graph.nodes():
            features[(round_no, labels[node])] += 1
    return features


def _cosine(c1: Counter, c2: Counter) -> float:
    dot = sum(count * c2.get(key, 0) for key, count in c1.items())
    n1 = math.sqrt(sum(count * count for count in c1.values()))
    n2 = math.sqrt(sum(count * count for count in c2.values()))
    if n1 == 0.0 or n2 == 0.0:
        return 1.0 if n1 == n2 else 0.0
    return dot / (n1 * n2)


def wl_histogram_similarity(h1: Counter, h2: Counter) -> float:
    """Cosine similarity of two precomputed WL histograms."""
    return _cosine(h1, h2)


def wl_kernel_similarity(g1: Graph, g2: Graph, iterations: int = 3,
                         node_label: LabelFn = _default_label) -> float:
    """Normalized WL kernel in ``[0, 1]`` (1.0 for identical graphs)."""
    return _cosine(wl_histograms(g1, iterations, node_label),
                   wl_histograms(g2, iterations, node_label))


def jaccard_edge_similarity(g1: Graph, g2: Graph) -> float:
    """Jaccard index of edge sets under shared node identities."""
    edges1 = {frozenset((u, v)) for u, v in g1.edges()}
    edges2 = {frozenset((u, v)) for u, v in g2.edges()}
    if not edges1 and not edges2:
        return 1.0
    return len(edges1 & edges2) / len(edges1 | edges2)


def degree_sequence_similarity(g1: Graph, g2: Graph) -> float:
    """Cosine similarity of degree histograms (structure-only signal)."""
    h1 = Counter(g1.degree(node) for node in g1.nodes())
    h2 = Counter(g2.degree(node) for node in g2.nodes())
    return _cosine(h1, h2)
