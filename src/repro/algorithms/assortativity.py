"""Degree assortativity and attribute mixing."""

from __future__ import annotations

import math
from collections import Counter

from ..errors import GraphError
from ..graphs.graph import DiGraph, Graph


def degree_assortativity(graph: Graph) -> float:
    """Pearson correlation of degrees across edge endpoints.

    Positive values: hubs link to hubs (social networks); negative:
    hubs link to leaves (technological/biological networks).  Returns
    0.0 when undefined (fewer than 2 edges or zero variance).
    """
    if isinstance(graph, DiGraph):
        graph = graph.to_undirected()
    xs: list[float] = []
    ys: list[float] = []
    for u, v in graph.edges():
        du, dv = graph.degree(u), graph.degree(v)
        # count each undirected edge in both orientations (standard)
        xs.extend((du, dv))
        ys.extend((dv, du))
    n = len(xs)
    if n < 4:
        return 0.0
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    if var_x == 0 or var_y == 0:
        return 0.0
    return cov / math.sqrt(var_x * var_y)


def attribute_assortativity(graph: Graph, attribute: str) -> float:
    """Newman's categorical assortativity for a node attribute.

    1.0 = every edge joins same-valued endpoints; 0.0 = random mixing;
    negative = disassortative.  Raises if no node carries the attribute.
    """
    if isinstance(graph, DiGraph):
        graph = graph.to_undirected()
    values = {node: graph.get_node_attr(node, attribute)
              for node in graph.nodes()}
    if all(value is None for value in values.values()):
        raise GraphError(f"no node has attribute {attribute!r}")
    m = graph.number_of_edges()
    if m == 0:
        return 0.0
    # mixing matrix e[a][b]: fraction of edge-ends (a at one end, b other)
    same = 0
    ends: Counter = Counter()
    for u, v in graph.edges():
        a, b = values[u], values[v]
        if a == b:
            same += 1
        ends[a] += 1
        ends[b] += 1
    trace = same / m
    # sum of squared marginal frequencies
    total_ends = 2 * m
    squared = sum((count / total_ends) ** 2 for count in ends.values())
    if squared == 1.0:
        return 1.0 if trace == 1.0 else 0.0
    return (trace - squared) / (1.0 - squared)
