"""Connectivity: components, strong components, bridges, articulation points."""

from __future__ import annotations

from typing import Iterator

from ..errors import GraphError
from ..graphs.graph import DiGraph, Graph, Node
from .traversal import bfs_distances


def connected_components(graph: Graph) -> list[set[Node]]:
    """Connected components of an undirected graph (weak for digraphs)."""
    undirected = graph.to_undirected() if isinstance(graph, DiGraph) else graph
    seen: set[Node] = set()
    components: list[set[Node]] = []
    for node in undirected.nodes():
        if node in seen:
            continue
        component = set(bfs_distances(undirected, node))
        seen |= component
        components.append(component)
    return components


def is_connected(graph: Graph) -> bool:
    """True iff the graph is non-empty and (weakly) connected."""
    if graph.number_of_nodes() == 0:
        return False
    return len(connected_components(graph)) == 1


def largest_component(graph: Graph) -> set[Node]:
    """Node set of the largest (weakly) connected component."""
    components = connected_components(graph)
    if not components:
        raise GraphError("graph has no nodes")
    return max(components, key=len)


def strongly_connected_components(graph: DiGraph) -> list[set[Node]]:
    """Tarjan's algorithm (iterative) for strongly connected components."""
    if not isinstance(graph, DiGraph):
        raise GraphError("strong components require a directed graph")
    index: dict[Node, int] = {}
    lowlink: dict[Node, int] = {}
    on_stack: set[Node] = set()
    stack: list[Node] = []
    components: list[set[Node]] = []
    counter = 0

    for root in graph.nodes():
        if root in index:
            continue
        work = [(root, iter(list(graph.successors(root))))]
        index[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in index:
                    index[succ] = lowlink[succ] = counter
                    counter += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(list(graph.successors(succ)))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component: set[Node] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                components.append(component)
    return components


class _LowPointDFS:
    """Iterative DFS computing discovery times and low points.

    Low-point DFS is the classical machinery behind both bridge and
    articulation-point detection (Hopcroft-Tarjan).
    """

    def __init__(self, graph: Graph) -> None:
        if isinstance(graph, DiGraph):
            raise GraphError("low-point DFS requires an undirected graph")
        self.graph = graph
        self.disc: dict[Node, int] = {}
        self.low: dict[Node, int] = {}
        #: tree edges (parent, child) in post-order
        self.tree_edges: list[tuple[Node, Node]] = []
        #: number of DFS-tree children of each root
        self.root_children: dict[Node, int] = {}
        self._run()

    def _run(self) -> None:
        timer = 0
        for root in self.graph.nodes():
            if root in self.disc:
                continue
            self.root_children[root] = 0
            self.disc[root] = self.low[root] = timer
            timer += 1
            work: list[tuple[Node, Node | None, Iterator[Node]]] = [
                (root, None, iter(list(self.graph.neighbors(root))))]
            while work:
                node, parent, neighbors = work[-1]
                advanced = False
                for neighbor in neighbors:
                    if neighbor not in self.disc:
                        self.disc[neighbor] = self.low[neighbor] = timer
                        timer += 1
                        if node == root:
                            self.root_children[root] += 1
                        work.append((neighbor, node,
                                     iter(list(self.graph.neighbors(neighbor)))))
                        advanced = True
                        break
                    if neighbor != parent:
                        self.low[node] = min(self.low[node],
                                             self.disc[neighbor])
                if advanced:
                    continue
                work.pop()
                if parent is not None:
                    self.low[parent] = min(self.low[parent], self.low[node])
                    self.tree_edges.append((parent, node))


def bridges(graph: Graph) -> list[tuple[Node, Node]]:
    """Edges whose removal disconnects their component (undirected only)."""
    dfs = _LowPointDFS(graph)
    return [(parent, child) for parent, child in dfs.tree_edges
            if dfs.low[child] > dfs.disc[parent]]


def articulation_points(graph: Graph) -> set[Node]:
    """Nodes whose removal disconnects their component (undirected only)."""
    dfs = _LowPointDFS(graph)
    points: set[Node] = set()
    for parent, child in dfs.tree_edges:
        if parent in dfs.root_children:
            continue  # root case handled below
        if dfs.low[child] >= dfs.disc[parent]:
            points.add(parent)
    for root, n_children in dfs.root_children.items():
        if n_children >= 2:
            points.add(root)
    return points
