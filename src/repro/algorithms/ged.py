"""Graph edit distance (GED).

Two solvers share a cost model (unit costs, label-aware substitution):

* :func:`exact_ged` — A*-style branch and bound over node mappings with an
  admissible label-multiset lower bound; exponential, for small graphs.
* :func:`approximate_ged` — the Riesen-Bunke bipartite upper bound: solve a
  linear assignment over node substitutions/deletions/insertions (with
  local edge costs), then charge the actual edit cost implied by the
  resulting node mapping.

:func:`graph_edit_distance` picks a solver by size.  GED underlies the
node matching-based finetuning loss (paper Def. 1) and the molecule
similarity-search scenario (Fig. 5).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Callable

from ..graphs.graph import Graph, Node
from .matching import hungarian

#: Sentinel meaning "deleted / inserted" in mappings.
EPS = None

LabelFn = Callable[[Graph, Node], object]


def _default_node_label(graph: Graph, node: Node) -> object:
    return graph.get_node_attr(node, "label")


@dataclass(frozen=True)
class GedResult:
    """Outcome of a GED computation."""

    #: Total edit cost.
    cost: float
    #: Mapping from nodes of g1 to nodes of g2 (``None`` = deleted).
    mapping: dict[Node, Node | None]
    #: Whether the cost is provably optimal.
    exact: bool


def _mapping_cost(g1: Graph, g2: Graph, mapping: dict[Node, Node | None],
                  node_label: LabelFn) -> float:
    """Exact edit cost induced by a (complete) node mapping."""
    cost = 0.0
    mapped_targets = {v for v in mapping.values() if v is not EPS}
    # node substitutions and deletions
    for u, v in mapping.items():
        if v is EPS:
            cost += 1.0
        elif node_label(g1, u) != node_label(g2, v):
            cost += 1.0
    # node insertions
    cost += sum(1.0 for v in g2.nodes() if v not in mapped_targets)
    # edges of g1: deleted or substituted
    for a, b in g1.edges():
        ma, mb = mapping.get(a, EPS), mapping.get(b, EPS)
        if ma is EPS or mb is EPS or not g2.has_edge(ma, mb):
            cost += 1.0
    # edges of g2 with no pre-image: insertions
    inverse = {v: u for u, v in mapping.items() if v is not EPS}
    for a, b in g2.edges():
        ia, ib = inverse.get(a), inverse.get(b)
        if ia is None or ib is None or not g1.has_edge(ia, ib):
            cost += 1.0
    return cost


def _label_lower_bound(labels1: list[object], labels2: list[object]) -> float:
    """Admissible bound: cost of matching two label multisets."""
    from collections import Counter
    c1, c2 = Counter(labels1), Counter(labels2)
    common = sum((c1 & c2).values())
    return float(max(len(labels1), len(labels2)) - common)


def exact_ged(g1: Graph, g2: Graph,
              node_label: LabelFn = _default_node_label,
              upper_bound: float | None = None) -> GedResult:
    """Optimal GED by best-first search over partial node mappings.

    Exponential in the worst case — intended for graphs with <= ~10 nodes
    (API chains, small molecules).  ``upper_bound`` prunes branches whose
    optimistic cost already exceeds it.
    """
    nodes1 = list(g1.nodes())
    nodes2 = list(g2.nodes())
    best = upper_bound if upper_bound is not None else float("inf")
    best_mapping: dict[Node, Node | None] | None = None

    # order g1 nodes by degree (high first) for earlier pruning
    nodes1.sort(key=g1.degree, reverse=True)

    def heuristic(depth: int, used2: frozenset[Node]) -> float:
        remaining1 = [node_label(g1, u) for u in nodes1[depth:]]
        remaining2 = [node_label(g2, v) for v in nodes2 if v not in used2]
        return _label_lower_bound(remaining1, remaining2)

    def partial_cost(mapping: dict[Node, Node | None]) -> float:
        """Edit cost restricted to already-mapped nodes (a lower bound)."""
        cost = 0.0
        for u, v in mapping.items():
            if v is EPS:
                cost += 1.0
            elif node_label(g1, u) != node_label(g2, v):
                cost += 1.0
        mapped1 = set(mapping)
        inverse = {v: u for u, v in mapping.items() if v is not EPS}
        for a, b in g1.edges():
            if a in mapped1 and b in mapped1:
                ma, mb = mapping[a], mapping[b]
                if ma is EPS or mb is EPS or not g2.has_edge(ma, mb):
                    cost += 1.0
        for a, b in g2.edges():
            if a in inverse and b in inverse:
                if not g1.has_edge(inverse[a], inverse[b]):
                    cost += 1.0
        return cost

    # best-first frontier: (priority, tiebreak, depth, mapping, used2)
    counter = itertools.count()
    start: tuple[float, int, int, dict[Node, Node | None], frozenset[Node]]
    start = (heuristic(0, frozenset()), next(counter), 0, {}, frozenset())
    frontier = [start]
    while frontier:
        priority, __, depth, mapping, used2 = heapq.heappop(frontier)
        if priority >= best:
            break
        if depth == len(nodes1):
            total = _mapping_cost(g1, g2, mapping, node_label)
            if total < best:
                best = total
                best_mapping = dict(mapping)
            continue
        u = nodes1[depth]
        candidates: list[Node | None] = [v for v in nodes2 if v not in used2]
        candidates.append(EPS)
        for v in candidates:
            child = dict(mapping)
            child[u] = v
            child_used = used2 if v is EPS else used2 | {v}
            g = partial_cost(child)
            h = heuristic(depth + 1, child_used)
            if g + h < best:
                heapq.heappush(
                    frontier,
                    (g + h, next(counter), depth + 1, child, child_used))

    if best_mapping is None:
        # fall back to all-delete/all-insert mapping
        best_mapping = {u: EPS for u in nodes1}
        best = min(best, _mapping_cost(g1, g2, best_mapping, node_label))
    return GedResult(cost=best, mapping=best_mapping, exact=True)


def approximate_ged(g1: Graph, g2: Graph,
                    node_label: LabelFn = _default_node_label) -> GedResult:
    """Riesen-Bunke bipartite GED upper bound (assignment on local costs)."""
    nodes1 = list(g1.nodes())
    nodes2 = list(g2.nodes())
    n1, n2 = len(nodes1), len(nodes2)
    size = n1 + n2
    if size == 0:
        return GedResult(cost=0.0, mapping={}, exact=True)
    big = 1e9
    cost = [[0.0] * size for __ in range(size)]
    for i, u in enumerate(nodes1):
        du = g1.degree(u)
        for j, v in enumerate(nodes2):
            sub = 0.0 if node_label(g1, u) == node_label(g2, v) else 1.0
            # local edge-structure estimate: degree difference
            cost[i][j] = sub + abs(du - g2.degree(v)) / 2.0
        for j in range(n2, size):
            cost[i][j] = (1.0 + du / 2.0) if j - n2 == i else big
    for i in range(n1, size):
        for j, v in enumerate(nodes2):
            cost[i][j] = (1.0 + g2.degree(v) / 2.0) if i - n1 == j else big
        for j in range(n2, size):
            cost[i][j] = 0.0
    assignment, __ = hungarian(cost)
    mapping: dict[Node, Node | None] = {}
    for i, u in enumerate(nodes1):
        j = assignment[i]
        mapping[u] = nodes2[j] if j < n2 else EPS
    true_cost = _mapping_cost(g1, g2, mapping, node_label)
    return GedResult(cost=true_cost, mapping=mapping, exact=False)


def graph_edit_distance(g1: Graph, g2: Graph,
                        node_label: LabelFn = _default_node_label,
                        exact_threshold: int = 8) -> GedResult:
    """GED with automatic solver choice.

    Graphs whose node counts are both <= ``exact_threshold`` are solved
    exactly (seeded with the bipartite upper bound); larger instances get
    the bipartite approximation.
    """
    if (g1.number_of_nodes() <= exact_threshold
            and g2.number_of_nodes() <= exact_threshold):
        seed = approximate_ged(g1, g2, node_label=node_label)
        result = exact_ged(g1, g2, node_label=node_label,
                           upper_bound=seed.cost + 1e-9)
        if result.cost <= seed.cost:
            return result
        return GedResult(seed.cost, seed.mapping, exact=True)
    return approximate_ged(g1, g2, node_label=node_label)
