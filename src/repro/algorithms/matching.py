"""Linear assignment (Hungarian algorithm).

Used by the node matching-based loss (paper Def. 1) to find the optimal
one-to-one matching ``M`` between generated and ground-truth API chains,
and by the approximate graph edit distance.
"""

from __future__ import annotations

from typing import Sequence

INF = float("inf")


def hungarian(cost: Sequence[Sequence[float]]) -> tuple[list[int], float]:
    """Solve the rectangular linear assignment problem.

    ``cost[i][j]`` is the cost of assigning row ``i`` to column ``j``.
    Returns ``(assignment, total)`` where ``assignment[i]`` is the column
    assigned to row ``i``, or ``-1`` when rows outnumber columns and row
    ``i`` is left unassigned; ``total`` sums the assigned entries.
    ``min(n_rows, n_cols)`` assignments are always made.

    Implements the O(n^2 m) potentials/augmenting-path formulation.
    """
    n = len(cost)
    if n == 0:
        return [], 0.0
    m = len(cost[0])
    if any(len(row) != m for row in cost):
        raise ValueError("cost matrix must be rectangular")
    if n > m:
        # transpose, solve, invert the assignment
        transposed = [[cost[i][j] for i in range(n)] for j in range(m)]
        col_assign, total = hungarian(transposed)
        row_assign = [-1] * n
        for j, i in enumerate(col_assign):
            row_assign[i] = j
        return row_assign, total

    # 1-indexed arrays per the classical formulation
    u = [0.0] * (n + 1)
    v = [0.0] * (m + 1)
    p = [0] * (m + 1)    # p[j] = row matched to column j (0 = none)
    way = [0] * (m + 1)
    for i in range(1, n + 1):
        p[0] = i
        j0 = 0
        minv = [INF] * (m + 1)
        used = [False] * (m + 1)
        while True:
            used[j0] = True
            i0 = p[j0]
            delta = INF
            j1 = 0
            for j in range(1, m + 1):
                if used[j]:
                    continue
                cur = cost[i0 - 1][j - 1] - u[i0] - v[j]
                if cur < minv[j]:
                    minv[j] = cur
                    way[j] = j0
                if minv[j] < delta:
                    delta = minv[j]
                    j1 = j
            for j in range(m + 1):
                if used[j]:
                    u[p[j]] += delta
                    v[j] -= delta
                else:
                    minv[j] -= delta
            j0 = j1
            if p[j0] == 0:
                break
        while j0 != 0:
            j1 = way[j0]
            p[j0] = p[j1]
            j0 = j1

    assignment = [-1] * n
    for j in range(1, m + 1):
        if p[j] != 0:
            assignment[p[j] - 1] = j - 1
    total = sum(cost[i][assignment[i]] for i in range(n)
                if assignment[i] >= 0)
    return assignment, total
