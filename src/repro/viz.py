"""ASCII rendering for the headless chat surface.

The paper's Gradio UI draws graphs; our terminal stand-in renders them
as text: adjacency dot-matrices, degree-histogram bars, community
blocks, and molecule formulas.  Used by the CLI's ``/show`` command and
available to report consumers.
"""

from __future__ import annotations

from .algorithms.community import label_propagation
from .graphs.graph import DiGraph, Graph
from .graphs.properties import degree_histogram


def render_adjacency(graph: Graph, max_nodes: int = 24) -> str:
    """Dot-matrix adjacency picture (truncated beyond ``max_nodes``).

    ``#`` marks an edge, ``.`` a non-edge; rows/columns follow node
    order.  Directed graphs show arcs row -> column.
    """
    nodes = list(graph.nodes())[:max_nodes]
    truncated = graph.number_of_nodes() > len(nodes)
    labels = [str(node)[:6] for node in nodes]
    width = max((len(label) for label in labels), default=1)
    lines = []
    for u, label in zip(nodes, labels):
        cells = []
        for v in nodes:
            if u == v:
                cells.append("\\")
            elif graph.has_edge(u, v):
                cells.append("#")
            else:
                cells.append(".")
        lines.append(f"{label:>{width}} " + " ".join(cells))
    if truncated:
        lines.append(f"... ({graph.number_of_nodes() - len(nodes)} "
                     f"more nodes not shown)")
    return "\n".join(lines)


def render_degree_histogram(graph: Graph, width: int = 40) -> str:
    """Horizontal bar chart of the degree distribution."""
    histogram = degree_histogram(graph)
    if not histogram:
        return "(empty graph)"
    peak = max(histogram.values())
    lines = [f"degree  count  {'(each bar = nodes)':>{width}}"]
    for degree in sorted(histogram):
        count = histogram[degree]
        bar = "#" * max(1, round(count / peak * width))
        lines.append(f"{degree:>6} {count:>6}  {bar}")
    return "\n".join(lines)


def render_communities(graph: Graph, seed: int = 0,
                       max_members: int = 8) -> str:
    """Communities as labelled member blocks (undirected graphs)."""
    undirected = graph.to_undirected() if isinstance(graph, DiGraph) \
        else graph
    communities = label_propagation(undirected, seed=seed)
    lines = [f"{len(communities)} communities"]
    for cid, community in enumerate(communities):
        members = sorted(community, key=repr)
        shown = ", ".join(str(m) for m in members[:max_members])
        more = f", ... (+{len(members) - max_members})" \
            if len(members) > max_members else ""
        lines.append(f"  [{cid}] n={len(members)}: {shown}{more}")
    return "\n".join(lines)


def render_graph_summary_card(graph: Graph) -> str:
    """A compact one-card overview: counts + histogram + adjacency."""
    header = (f"{graph.name or 'graph'}: {graph.number_of_nodes()} nodes, "
              f"{graph.number_of_edges()} edges"
              f"{' (directed)' if graph.directed else ''}")
    return "\n".join((header, "-" * len(header),
                      render_degree_histogram(graph, width=30)))
