"""Index interface shared by every ANN implementation."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from ..errors import IndexError_
from .kernels import gathered_distances, row_sq_norms


@dataclass(frozen=True)
class SearchResult:
    """One nearest-neighbor hit."""

    #: Row index of the vector in the indexed data matrix.
    vector_id: int
    #: Euclidean distance to the query.
    distance: float


class AnnIndex(ABC):
    """Abstract k-NN index over a fixed matrix of vectors.

    Subclasses implement :meth:`_build` and :meth:`_search`.  The base
    class owns the data matrix, validates inputs, and counts distance
    evaluations (``distance_computations``), which the benchmarks use as
    a hardware-independent work measure.
    """

    def __init__(self) -> None:
        self._data: np.ndarray | None = None
        self._sq_norms: np.ndarray | None = None
        #: Vector ids deleted since the last build/compaction.  The
        #: rows stay in ``_data`` (graph indexes may still route
        #: through them) but every search filters them from its hits.
        self._tombstones: set[int] = set()
        #: Number of point-to-query distance evaluations since reset.
        self.distance_computations = 0
        #: When True (the default), searches route through the
        #: vectorized frontier kernels; set False to force the scalar
        #: reference path.  Both produce bit-identical results — the
        #: toggle exists for the perf-gate benchmark and equivalence
        #: tests.
        self.use_batched = True

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def build(self, data: np.ndarray) -> "AnnIndex":
        """Index ``data`` (an ``(n, d)`` float matrix); returns self."""
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2 or data.shape[0] == 0:
            raise IndexError_("data must be a non-empty (n, d) matrix")
        self._data = data
        self._sq_norms = row_sq_norms(data)
        self._tombstones = set()
        self._build(data)
        return self

    # ------------------------------------------------------------------
    # incremental maintenance (see docs/STORE.md)
    # ------------------------------------------------------------------
    def insert(self, vector: np.ndarray) -> int:
        """Add one vector without a full rebuild; returns its id.

        Inserting into an unbuilt index builds a one-row index.  The
        incremental structure is approximate for graph indexes — a
        later :meth:`compact` restores exact fresh-build parity.
        """
        vector = np.asarray(vector, dtype=np.float64).ravel()
        if self._data is None:
            self.build(vector[None, :])
            return 0
        if vector.shape[0] != self._data.shape[1]:
            raise IndexError_(
                f"vector dim {vector.shape[0]} != data dim "
                f"{self._data.shape[1]}")
        self._data = np.vstack([self._data, vector[None, :]])
        self._sq_norms = row_sq_norms(self._data)
        new_id = self._data.shape[0] - 1
        self._insert_one(new_id)
        return new_id

    def delete(self, vector_id: int) -> None:
        """Tombstone ``vector_id``: excluded from every later search.

        The row stays in the data matrix (graph searches may still
        route through it) until :meth:`compact` rewrites the index.
        """
        if self._data is None:
            raise IndexError_("index not built")
        if not 0 <= vector_id < self._data.shape[0]:
            raise IndexError_(f"no such vector id {vector_id}")
        if vector_id in self._tombstones:
            raise IndexError_(f"vector id {vector_id} already deleted")
        self._tombstones.add(vector_id)

    def compact(self) -> dict[int, int]:
        """Drop tombstoned rows and rebuild from the live vectors.

        Runs the exact fresh-build code path over the live rows in
        ascending id order, so the compacted index is bit-compatible
        with ``type(self)(same params).build(live_vectors)`` — same
        structure, same search results, same distance counts.  Returns
        the ``old id -> new id`` mapping of surviving vectors.
        """
        if self._data is None:
            raise IndexError_("index not built")
        live = [i for i in range(self._data.shape[0])
                if i not in self._tombstones]
        if not live:
            self._data = None
            self._sq_norms = None
            self._tombstones = set()
            return {}
        id_map = {old: new for new, old in enumerate(live)}
        self.build(self._data[np.array(live, dtype=np.intp)])
        return id_map

    def _insert_one(self, new_id: int) -> None:
        """Incremental-insert hook; data/norms are already updated."""
        raise IndexError_(
            f"{type(self).__name__} does not support incremental "
            "insertion; rebuild with build()")

    @property
    def n_tombstones(self) -> int:
        return len(self._tombstones)

    @property
    def live_size(self) -> int:
        """Number of searchable (non-tombstoned) vectors."""
        return 0 if self._data is None else (
            self._data.shape[0] - len(self._tombstones))

    def live_ids(self) -> list[int]:
        """Non-tombstoned vector ids, ascending."""
        if self._data is None:
            return []
        return [i for i in range(self._data.shape[0])
                if i not in self._tombstones]

    def search(self, query: np.ndarray, k: int = 1) -> list[SearchResult]:
        """Return (approximately) the ``k`` nearest vectors to ``query``."""
        if self._data is None:
            raise IndexError_("index not built")
        if k < 1:
            raise IndexError_("k must be >= 1")
        query = np.asarray(query, dtype=np.float64).ravel()
        if query.shape[0] != self._data.shape[1]:
            raise IndexError_(
                f"query dim {query.shape[0]} != data dim {self._data.shape[1]}")
        k = min(k, self._data.shape[0])
        if not self._tombstones:
            return self._search(query, k)
        # over-fetch so the hit list still holds k live vectors after
        # the tombstone filter, then trim
        fetch = min(self._data.shape[0], k + len(self._tombstones))
        hits = [hit for hit in self._search(query, fetch)
                if hit.vector_id not in self._tombstones]
        return hits[:min(k, self.live_size)]

    def search_batch(self, queries: np.ndarray,
                     k: int = 1) -> list[list[SearchResult]]:
        """Answer many queries at once; one result list per query row.

        Equivalent to ``[self.search(q, k) for q in queries]`` —
        including the exact distances reported — but subclasses may
        override :meth:`_search_batch` to amortize work across the
        whole query matrix.
        """
        queries, k = self._validate_batch(queries, k)
        if not self._tombstones:
            return self._search_batch(queries, k)
        assert self._data is not None
        fetch = min(self._data.shape[0], k + len(self._tombstones))
        trim = min(k, self.live_size)
        return [[hit for hit in row
                 if hit.vector_id not in self._tombstones][:trim]
                for row in self._search_batch(queries, fetch)]

    def search_batch_pairs(self, queries: np.ndarray,
                           k: int = 1) -> list[list[tuple[int, float]]]:
        """:meth:`search_batch` as raw ``(vector_id, distance)`` pairs.

        Same hits in the same order, without materializing a
        :class:`SearchResult` per hit — the cheap form for callers that
        immediately re-rank or filter large candidate pools.
        """
        queries, k = self._validate_batch(queries, k)
        if not self._tombstones:
            return self._search_batch_pairs(queries, k)
        assert self._data is not None
        fetch = min(self._data.shape[0], k + len(self._tombstones))
        trim = min(k, self.live_size)
        return [[pair for pair in row
                 if pair[0] not in self._tombstones][:trim]
                for row in self._search_batch_pairs(queries, fetch)]

    def _validate_batch(self, queries: np.ndarray,
                        k: int) -> tuple[np.ndarray, int]:
        if self._data is None:
            raise IndexError_("index not built")
        if k < 1:
            raise IndexError_("k must be >= 1")
        queries = np.asarray(queries, dtype=np.float64)
        if queries.ndim != 2 or queries.shape[1] != self._data.shape[1]:
            raise IndexError_(
                f"queries must be an (m, {self._data.shape[1]}) matrix")
        return queries, min(k, self._data.shape[0])

    def reset_counters(self) -> None:
        self.distance_computations = 0

    @property
    def size(self) -> int:
        return 0 if self._data is None else int(self._data.shape[0])

    # ------------------------------------------------------------------
    # helpers for subclasses
    # ------------------------------------------------------------------
    def _distance(self, query: np.ndarray, vector_id: int) -> float:
        """Instrumented single distance evaluation.

        Routes through the same gather kernel as :meth:`_distances_bulk`
        so scalar and batched searches see bit-identical floats.
        """
        assert self._data is not None
        self.distance_computations += 1
        return float(gathered_distances(
            self._data, np.array([vector_id]), query)[0])

    def _distances_bulk(self, query: np.ndarray,
                        ids: np.ndarray) -> np.ndarray:
        """Instrumented vectorized distances to many points."""
        assert self._data is not None
        self.distance_computations += len(ids)
        return gathered_distances(self._data, ids, query)

    # ------------------------------------------------------------------
    # subclass hooks
    # ------------------------------------------------------------------
    @abstractmethod
    def _build(self, data: np.ndarray) -> None:
        """Construct index structures for ``data``."""

    @abstractmethod
    def _search(self, query: np.ndarray, k: int) -> list[SearchResult]:
        """Return the ``k`` best hits sorted by distance."""

    def _search_batch(self, queries: np.ndarray,
                      k: int) -> list[list[SearchResult]]:
        """Batched search hook; the default answers queries one by one."""
        return [self._search(query, k) for query in queries]

    def _search_batch_pairs(self, queries: np.ndarray,
                            k: int) -> list[list[tuple[int, float]]]:
        """Raw-pairs hook; the default unwraps :meth:`_search_batch`."""
        return [[(hit.vector_id, hit.distance) for hit in hits]
                for hits in self._search_batch(queries, k)]
