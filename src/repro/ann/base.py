"""Index interface shared by every ANN implementation."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from ..errors import IndexError_
from .kernels import gathered_distances, row_sq_norms


@dataclass(frozen=True)
class SearchResult:
    """One nearest-neighbor hit."""

    #: Row index of the vector in the indexed data matrix.
    vector_id: int
    #: Euclidean distance to the query.
    distance: float


class AnnIndex(ABC):
    """Abstract k-NN index over a fixed matrix of vectors.

    Subclasses implement :meth:`_build` and :meth:`_search`.  The base
    class owns the data matrix, validates inputs, and counts distance
    evaluations (``distance_computations``), which the benchmarks use as
    a hardware-independent work measure.
    """

    def __init__(self) -> None:
        self._data: np.ndarray | None = None
        self._sq_norms: np.ndarray | None = None
        #: Number of point-to-query distance evaluations since reset.
        self.distance_computations = 0
        #: When True (the default), searches route through the
        #: vectorized frontier kernels; set False to force the scalar
        #: reference path.  Both produce bit-identical results — the
        #: toggle exists for the perf-gate benchmark and equivalence
        #: tests.
        self.use_batched = True

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def build(self, data: np.ndarray) -> "AnnIndex":
        """Index ``data`` (an ``(n, d)`` float matrix); returns self."""
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2 or data.shape[0] == 0:
            raise IndexError_("data must be a non-empty (n, d) matrix")
        self._data = data
        self._sq_norms = row_sq_norms(data)
        self._build(data)
        return self

    def search(self, query: np.ndarray, k: int = 1) -> list[SearchResult]:
        """Return (approximately) the ``k`` nearest vectors to ``query``."""
        if self._data is None:
            raise IndexError_("index not built")
        if k < 1:
            raise IndexError_("k must be >= 1")
        query = np.asarray(query, dtype=np.float64).ravel()
        if query.shape[0] != self._data.shape[1]:
            raise IndexError_(
                f"query dim {query.shape[0]} != data dim {self._data.shape[1]}")
        k = min(k, self._data.shape[0])
        return self._search(query, k)

    def search_batch(self, queries: np.ndarray,
                     k: int = 1) -> list[list[SearchResult]]:
        """Answer many queries at once; one result list per query row.

        Equivalent to ``[self.search(q, k) for q in queries]`` —
        including the exact distances reported — but subclasses may
        override :meth:`_search_batch` to amortize work across the
        whole query matrix.
        """
        queries, k = self._validate_batch(queries, k)
        return self._search_batch(queries, k)

    def search_batch_pairs(self, queries: np.ndarray,
                           k: int = 1) -> list[list[tuple[int, float]]]:
        """:meth:`search_batch` as raw ``(vector_id, distance)`` pairs.

        Same hits in the same order, without materializing a
        :class:`SearchResult` per hit — the cheap form for callers that
        immediately re-rank or filter large candidate pools.
        """
        queries, k = self._validate_batch(queries, k)
        return self._search_batch_pairs(queries, k)

    def _validate_batch(self, queries: np.ndarray,
                        k: int) -> tuple[np.ndarray, int]:
        if self._data is None:
            raise IndexError_("index not built")
        if k < 1:
            raise IndexError_("k must be >= 1")
        queries = np.asarray(queries, dtype=np.float64)
        if queries.ndim != 2 or queries.shape[1] != self._data.shape[1]:
            raise IndexError_(
                f"queries must be an (m, {self._data.shape[1]}) matrix")
        return queries, min(k, self._data.shape[0])

    def reset_counters(self) -> None:
        self.distance_computations = 0

    @property
    def size(self) -> int:
        return 0 if self._data is None else int(self._data.shape[0])

    # ------------------------------------------------------------------
    # helpers for subclasses
    # ------------------------------------------------------------------
    def _distance(self, query: np.ndarray, vector_id: int) -> float:
        """Instrumented single distance evaluation.

        Routes through the same gather kernel as :meth:`_distances_bulk`
        so scalar and batched searches see bit-identical floats.
        """
        assert self._data is not None
        self.distance_computations += 1
        return float(gathered_distances(
            self._data, np.array([vector_id]), query)[0])

    def _distances_bulk(self, query: np.ndarray,
                        ids: np.ndarray) -> np.ndarray:
        """Instrumented vectorized distances to many points."""
        assert self._data is not None
        self.distance_computations += len(ids)
        return gathered_distances(self._data, ids, query)

    # ------------------------------------------------------------------
    # subclass hooks
    # ------------------------------------------------------------------
    @abstractmethod
    def _build(self, data: np.ndarray) -> None:
        """Construct index structures for ``data``."""

    @abstractmethod
    def _search(self, query: np.ndarray, k: int) -> list[SearchResult]:
        """Return the ``k`` best hits sorted by distance."""

    def _search_batch(self, queries: np.ndarray,
                      k: int) -> list[list[SearchResult]]:
        """Batched search hook; the default answers queries one by one."""
        return [self._search(query, k) for query in queries]

    def _search_batch_pairs(self, queries: np.ndarray,
                            k: int) -> list[list[tuple[int, float]]]:
        """Raw-pairs hook; the default unwraps :meth:`_search_batch`."""
        return [[(hit.vector_id, hit.distance) for hit in hits]
                for hits in self._search_batch(queries, k)]
