"""Index interface shared by every ANN implementation."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from ..errors import IndexError_


@dataclass(frozen=True)
class SearchResult:
    """One nearest-neighbor hit."""

    #: Row index of the vector in the indexed data matrix.
    vector_id: int
    #: Euclidean distance to the query.
    distance: float


class AnnIndex(ABC):
    """Abstract k-NN index over a fixed matrix of vectors.

    Subclasses implement :meth:`_build` and :meth:`_search`.  The base
    class owns the data matrix, validates inputs, and counts distance
    evaluations (``distance_computations``), which the benchmarks use as
    a hardware-independent work measure.
    """

    def __init__(self) -> None:
        self._data: np.ndarray | None = None
        #: Number of point-to-query distance evaluations since reset.
        self.distance_computations = 0

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def build(self, data: np.ndarray) -> "AnnIndex":
        """Index ``data`` (an ``(n, d)`` float matrix); returns self."""
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2 or data.shape[0] == 0:
            raise IndexError_("data must be a non-empty (n, d) matrix")
        self._data = data
        self._build(data)
        return self

    def search(self, query: np.ndarray, k: int = 1) -> list[SearchResult]:
        """Return (approximately) the ``k`` nearest vectors to ``query``."""
        if self._data is None:
            raise IndexError_("index not built")
        if k < 1:
            raise IndexError_("k must be >= 1")
        query = np.asarray(query, dtype=np.float64).ravel()
        if query.shape[0] != self._data.shape[1]:
            raise IndexError_(
                f"query dim {query.shape[0]} != data dim {self._data.shape[1]}")
        k = min(k, self._data.shape[0])
        return self._search(query, k)

    def reset_counters(self) -> None:
        self.distance_computations = 0

    @property
    def size(self) -> int:
        return 0 if self._data is None else int(self._data.shape[0])

    # ------------------------------------------------------------------
    # helpers for subclasses
    # ------------------------------------------------------------------
    def _distance(self, query: np.ndarray, vector_id: int) -> float:
        """Instrumented single distance evaluation."""
        assert self._data is not None
        self.distance_computations += 1
        return float(np.linalg.norm(self._data[vector_id] - query))

    def _distances_bulk(self, query: np.ndarray,
                        ids: np.ndarray) -> np.ndarray:
        """Instrumented vectorized distances to many points."""
        assert self._data is not None
        self.distance_computations += len(ids)
        diff = self._data[ids] - query
        return np.sqrt(np.einsum("ij,ij->i", diff, diff))

    # ------------------------------------------------------------------
    # subclass hooks
    # ------------------------------------------------------------------
    @abstractmethod
    def _build(self, data: np.ndarray) -> None:
        """Construct index structures for ``data``."""

    @abstractmethod
    def _search(self, query: np.ndarray, k: int) -> list[SearchResult]:
        """Return the ``k`` best hits sorted by distance."""
