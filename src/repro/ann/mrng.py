"""Monotonic relative neighborhood graph (MRNG) baseline.

The MRNG occlusion rule keeps edge ``(u, v)`` unless a selected neighbor
``u'`` satisfies ``d(u, u') < d(u, v)`` and ``d(u', v) < d(u, v)`` — the
``tau = 0`` limit of the tau-MG rule.  Routing on an MRNG is monotone
but lacks the tau-MG's stronger pruning, so it keeps more edges and
needs more distance computations per query at equal recall.
"""

from __future__ import annotations

from .tau_mg import TauMGIndex


class MRNGIndex(TauMGIndex):
    """MRNG = tau-MG with ``tau = 0``."""

    def __init__(self, max_degree: int = 24, candidate_pool: int = 64,
                 ef_search: int = 32) -> None:
        super().__init__(tau=0.0, max_degree=max_degree,
                         candidate_pool=candidate_pool, ef_search=ef_search)
