"""Shared machinery for proximity-graph (PG) indexes.

A PG index is a graph over the data vectors; queries are answered by
greedy beam routing from a fixed entry point (the medoid).  Subclasses
only decide which edges to keep — the routing, candidate generation and
connectivity repair live here.
"""

from __future__ import annotations

import heapq
from bisect import insort
from collections import deque

import numpy as np

from ..errors import IndexError_
from .base import AnnIndex, SearchResult


class ProximityGraphIndex(AnnIndex):
    """Base class for graph-based ANN indexes (MRNG, tau-MG).

    Parameters
    ----------
    max_degree:
        Out-degree cap per node.
    candidate_pool:
        Number of nearest candidates considered per node at build time
        (exact kNN via chunked brute force); the occlusion rule prunes
        within this pool.
    ef_search:
        Default beam width at query time.
    """

    def __init__(self, max_degree: int = 24, candidate_pool: int = 64,
                 ef_search: int = 32) -> None:
        super().__init__()
        if max_degree < 1 or candidate_pool < 1 or ef_search < 1:
            raise IndexError_("degree/pool/ef parameters must be >= 1")
        self.max_degree = max_degree
        self.candidate_pool = candidate_pool
        self.ef_search = ef_search
        self.neighbors: list[list[int]] = []
        #: Frozen int64 copy of ``neighbors`` built once at the end of
        #: :meth:`_build`; the batched beam search gathers whole
        #: adjacency rows from it instead of iterating Python lists.
        self._neighbor_arrays: list[np.ndarray] | None = None
        #: Same adjacency as plain Python int lists — the lockstep
        #: multi-query search filters tiny neighbor lists against a
        #: visited set faster in Python than via fancy indexing.
        self._neighbor_lists: list[list[int]] = []
        self.entry_point = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _build(self, data: np.ndarray) -> None:
        n = data.shape[0]
        pool = min(self.candidate_pool, n - 1)
        self.neighbors = [[] for __ in range(n)]
        self._neighbor_arrays = None
        if n == 1:
            self.entry_point = 0
            self._freeze_neighbors()
            return
        knn = self._exact_knn(data, pool)
        for u in range(n):
            candidates = knn[u]
            distances = np.linalg.norm(data[candidates] - data[u], axis=1)
            order = np.argsort(distances, kind="stable")
            selected: list[int] = []
            for idx in order:
                v = int(candidates[idx])
                d_uv = float(distances[idx])
                if self._occludes(data, u, v, d_uv, selected):
                    continue
                selected.append(v)
                if len(selected) >= self.max_degree:
                    break
            self.neighbors[u] = selected
        self.entry_point = self._medoid(data)
        self._repair_connectivity(data)
        self._freeze_neighbors()

    def _freeze_neighbors(self) -> None:
        """Snapshot adjacency as int64 arrays for the batched kernel.

        Duplicate entries are dropped keeping first occurrence — the
        scalar search's visited set makes repeats no-ops, so deduping
        preserves its semantics exactly.
        """
        frozen: list[np.ndarray] = []
        for nbrs in self.neighbors:
            frozen.append(np.fromiter(
                dict.fromkeys(nbrs), dtype=np.int64, count=-1))
        self._neighbor_arrays = frozen
        self._neighbor_lists = [arr.tolist() for arr in frozen]

    def _insert_one(self, new_id: int) -> None:
        """Incremental insert: local occlusion pruning, no rebuild.

        The new node's out-edges are selected with the subclass
        occlusion rule over its exact nearest candidates — the same
        rule a fresh build applies — but existing nodes are *not*
        re-pruned, so the graph drifts from the fresh-build shape until
        :meth:`~repro.ann.base.AnnIndex.compact` restores exact parity.
        Reverse edges keep the new node reachable from the entry point
        (reachability outranks the degree cap, as in ``_repair_
        connectivity``).
        """
        assert self._data is not None
        data = self._data
        if new_id == 0 or len(self.neighbors) == 0:
            # first vector, or insert into a 1-row index built fresh
            self.neighbors = [[] for __ in range(new_id + 1)]
            self.entry_point = 0
            self._freeze_neighbors()
            return
        diffs = data[:new_id] - data[new_id]
        dists = np.sqrt(np.einsum("ij,ij->i", diffs, diffs))
        order = np.argsort(dists, kind="stable")
        pool = order[:min(self.candidate_pool, new_id)]
        selected: list[int] = []
        for idx in pool:
            v = int(idx)
            d_uv = float(dists[idx])
            if self._occludes(data, new_id, v, d_uv, selected):
                continue
            selected.append(v)
            if len(selected) >= self.max_degree:
                break
        self.neighbors.append(selected)
        attached = False
        for v in selected:
            if len(self.neighbors[v]) < self.max_degree:
                self.neighbors[v].append(new_id)
                attached = True
        if not attached:
            # every selected neighbor is at capacity (or none selected):
            # attach from the nearest node anyway so routing can reach us
            nearest = int(order[0])
            self.neighbors[nearest].append(new_id)
        self._freeze_neighbors()

    @staticmethod
    def _exact_knn(data: np.ndarray, k: int) -> np.ndarray:
        """Exact kNN ids per point, chunked to bound memory."""
        n = data.shape[0]
        result = np.empty((n, k), dtype=np.int64)
        chunk = max(1, int(2e7) // max(n, 1))
        sq_norms = np.einsum("ij,ij->i", data, data)
        for start in range(0, n, chunk):
            stop = min(start + chunk, n)
            block = data[start:stop]
            d2 = (sq_norms[start:stop, None] - 2.0 * block @ data.T
                  + sq_norms[None, :])
            for row, global_i in enumerate(range(start, stop)):
                d2[row, global_i] = np.inf  # exclude self
            idx = np.argpartition(d2, kth=k - 1, axis=1)[:, :k]
            # sort the k candidates by distance
            rows = np.arange(stop - start)[:, None]
            order = np.argsort(d2[rows, idx], axis=1, kind="stable")
            result[start:stop] = idx[rows, order]
        return result

    def _medoid(self, data: np.ndarray) -> int:
        centroid = data.mean(axis=0)
        return int(np.argmin(np.linalg.norm(data - centroid, axis=1)))

    def _repair_connectivity(self, data: np.ndarray) -> None:
        """Make every node reachable from the entry point.

        Unreachable nodes get an incoming edge from their nearest
        reachable node (appended even past the degree cap — reachability
        outranks the cap, as in the NSG/tau-MG reference builds).
        """
        n = data.shape[0]
        reachable = self._reachable_from_entry(n)
        while len(reachable) < n:
            missing = np.array(sorted(set(range(n)) - reachable))
            reach_list = np.array(sorted(reachable))
            # attach the missing node closest to any reachable node
            best = None
            for u in missing:
                d = np.linalg.norm(data[reach_list] - data[u], axis=1)
                j = int(np.argmin(d))
                if best is None or d[j] < best[0]:
                    best = (float(d[j]), int(reach_list[j]), int(u))
            assert best is not None
            __, source, target = best
            self.neighbors[source].append(target)
            newly = self._reachable_from(target, n)
            reachable |= newly

    def _reachable_from_entry(self, n: int) -> set[int]:
        return self._reachable_from(self.entry_point, n)

    def _reachable_from(self, start: int, n: int) -> set[int]:
        seen = {start}
        queue = deque([start])
        while queue:
            u = queue.popleft()
            for v in self.neighbors[u]:
                if v not in seen:
                    seen.add(v)
                    queue.append(v)
        return seen

    # ------------------------------------------------------------------
    # subclass hook: the edge occlusion rule
    # ------------------------------------------------------------------
    def _occludes(self, data: np.ndarray, u: int, v: int, d_uv: float,
                  selected: list[int]) -> bool:
        """True if an already-selected neighbor occludes candidate ``v``."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # search: greedy beam routing
    # ------------------------------------------------------------------
    def _search(self, query: np.ndarray, k: int) -> list[SearchResult]:
        ef = max(self.ef_search, k)
        results = self._beam_search(query, ef)
        return results[:k]

    def _beam_search(self, query: np.ndarray, ef: int,
                     entry: int | None = None) -> list[SearchResult]:
        """Best-first beam search; returns up to ``ef`` hits by distance.

        Dispatches to the batched frontier kernel unless
        ``use_batched`` is off; both paths visit the same nodes in the
        same order and return bit-identical hits.
        """
        if self.use_batched and self._neighbor_arrays is not None:
            return self._beam_search_batched(query, ef, entry)
        return self._beam_search_scalar(query, ef, entry)

    def _beam_search_scalar(self, query: np.ndarray, ef: int,
                            entry: int | None = None) -> list[SearchResult]:
        """Reference implementation: one distance per Python iteration."""
        start = self.entry_point if entry is None else entry
        d0 = self._distance(query, start)
        visited = {start}
        # candidates: min-heap by distance; frontier of the search
        candidates: list[tuple[float, int]] = [(d0, start)]
        # best: max-heap (negated) of the ef closest found so far
        best: list[tuple[float, int]] = [(-d0, start)]
        while candidates:
            dist, node = heapq.heappop(candidates)
            if dist > -best[0][0] and len(best) >= ef:
                break
            for neighbor in self.neighbors[node]:
                if neighbor in visited:
                    continue
                visited.add(neighbor)
                d = self._distance(query, neighbor)
                if len(best) < ef or d < -best[0][0]:
                    heapq.heappush(candidates, (d, neighbor))
                    heapq.heappush(best, (-d, neighbor))
                    if len(best) > ef:
                        heapq.heappop(best)
        hits = sorted(((-negd, node) for negd, node in best))
        return [SearchResult(node, d) for d, node in hits]

    def _beam_search_batched(self, query: np.ndarray, ef: int,
                             entry: int | None = None) -> list[SearchResult]:
        """Frontier-batched beam search.

        Per node expansion: gather the unvisited neighbors with one
        fancy index, mark them in a boolean visited array, and score
        the whole frontier with a single vectorized distance call.  The
        heap updates then replay the scalar loop over precomputed
        distances, so the hit set, its ordering and the
        ``distance_computations`` count all match the scalar path.
        """
        assert self._data is not None and self._neighbor_arrays is not None
        start = self.entry_point if entry is None else entry
        d0 = self._distance(query, start)
        visited = np.zeros(self._data.shape[0], dtype=bool)
        visited[start] = True
        candidates: list[tuple[float, int]] = [(d0, start)]
        best: list[tuple[float, int]] = [(-d0, start)]
        arrays = self._neighbor_arrays
        while candidates:
            dist, node = heapq.heappop(candidates)
            if dist > -best[0][0] and len(best) >= ef:
                break
            nbrs = arrays[node]
            if nbrs.size == 0:
                continue
            fresh = nbrs[~visited[nbrs]]
            if fresh.size == 0:
                continue
            visited[fresh] = True
            dists = self._distances_bulk(query, fresh)
            for neighbor, d in zip(fresh.tolist(), dists.tolist()):
                if len(best) < ef or d < -best[0][0]:
                    heapq.heappush(candidates, (d, neighbor))
                    heapq.heappush(best, (-d, neighbor))
                    if len(best) > ef:
                        heapq.heappop(best)
        hits = sorted(((-negd, node) for negd, node in best))
        return [SearchResult(node, d) for d, node in hits]

    def _search_batch(self, queries: np.ndarray,
                      k: int) -> list[list[SearchResult]]:
        if not self.use_batched or self._neighbor_arrays is None:
            return super()._search_batch(queries, k)
        return [[SearchResult(node, d) for node, d in row]
                for row in self._lockstep_search(queries, k)]

    def _search_batch_pairs(self, queries: np.ndarray,
                            k: int) -> list[list[tuple[int, float]]]:
        if not self.use_batched or self._neighbor_arrays is None:
            return super()._search_batch_pairs(queries, k)
        return self._lockstep_search(queries, k)

    def _lockstep_search(self, queries: np.ndarray,
                         k: int) -> list[list[tuple[int, float]]]:
        """Lockstep beam search for many queries at once.

        Each query runs exactly the scalar beam search — same pops,
        same visit order, same heap updates — but every round the
        frontier expansions of *all* still-active queries are scored
        with one concatenated gather + einsum, amortizing the numpy
        call overhead across the batch.  The returned ``(node,
        distance)`` rows are bit-identical to
        ``[self.search(q, k) for q in queries]``.
        """
        assert self._data is not None
        m = queries.shape[0]
        n = self._data.shape[0]
        ef = max(self.ef_search, k)
        lists = self._neighbor_lists
        start = self.entry_point
        # entry distances for every query in one shot (rows are x - q,
        # the canonical evaluation order of the gather kernel)
        diff = self._data[start] - queries
        d0s = np.sqrt(np.einsum("ij,ij->i", diff, diff)).tolist()
        self.distance_computations += m
        visited: list[bytearray] = []
        candidates: list[list[tuple[float, int]]] = []
        # ``best`` as an ascending sorted list keyed ``(d, -node)``:
        # ``insort``/``pop()`` are C calls, and popping the tail drops
        # (max distance, min node) — the exact element the scalar
        # max-heap keyed ``(-d, node)`` evicts, ties included.
        best: list[list[tuple[float, int]]] = []
        for qi in range(m):
            d0 = d0s[qi]
            seen = bytearray(n)
            seen[start] = 1
            visited.append(seen)
            candidates.append([(d0, start)])
            best.append([(d0, -start)])
        heappush, heappop = heapq.heappush, heapq.heappop
        data = self._data
        active = list(range(m))
        while active:
            # one frontier expansion per still-active query; neighbor
            # filtering stays in pure Python (tiny lists, set lookups)
            expansions: list[tuple[list, list, list[int]]] = []
            flat_ids: list[int] = []
            flat_qi: list[int] = []
            still_active: list[int] = []
            for qi in active:
                cand, top = candidates[qi], best[qi]
                seen = visited[qi]
                while cand:
                    dist, node = heappop(cand)
                    if dist > top[-1][0] and len(top) >= ef:
                        cand.clear()
                        break
                    fresh = []
                    for v in lists[node]:
                        if not seen[v]:
                            seen[v] = 1
                            fresh.append(v)
                    if not fresh:
                        continue
                    expansions.append((cand, top, fresh))
                    flat_ids.extend(fresh)
                    flat_qi.extend([qi] * len(fresh))
                    still_active.append(qi)
                    break
            active = still_active
            if not flat_ids:
                break
            # score every query's frontier with one gather + one einsum
            ids = np.array(flat_ids, dtype=np.intp)
            diff = data[ids] - queries[np.array(flat_qi, dtype=np.intp)]
            dists = np.sqrt(np.einsum("ij,ij->i", diff, diff))
            self.distance_computations += ids.size
            dist_list = dists.tolist()
            offset = 0
            for cand, top, fresh in expansions:
                size = len(fresh)
                for neighbor, d in zip(fresh,
                                       dist_list[offset:offset + size]):
                    if len(top) < ef or d < top[-1][0]:
                        heappush(cand, (d, neighbor))
                        insort(top, (d, -neighbor))
                        if len(top) > ef:
                            top.pop()
                offset += size
        results: list[list[tuple[int, float]]] = []
        for qi in range(m):
            hits = sorted((d, -negnode) for d, negnode in best[qi])
            results.append([(node, d) for d, node in hits[:k]])
        return results

    # ------------------------------------------------------------------
    # introspection (used by tests and benchmarks)
    # ------------------------------------------------------------------
    def n_edges(self) -> int:
        return sum(len(nbrs) for nbrs in self.neighbors)

    def average_degree(self) -> float:
        if not self.neighbors:
            return 0.0
        return self.n_edges() / len(self.neighbors)

    def routing_hops(self, query: np.ndarray) -> int:
        """Number of greedy hops from the entry point to a local minimum.

        This is the quantity whose scaling the paper bounds by
        O(n^(1/m) (ln n)^2) for tau-MG.
        """
        assert self._data is not None
        node = self.entry_point
        d = float(np.linalg.norm(self._data[node] - query))
        hops = 0
        while True:
            improved = False
            for neighbor in self.neighbors[node]:
                dn = float(np.linalg.norm(self._data[neighbor] - query))
                if dn < d:
                    node, d = neighbor, dn
                    improved = True
                    break
            if not improved:
                return hops
            hops += 1
