"""Shared machinery for proximity-graph (PG) indexes.

A PG index is a graph over the data vectors; queries are answered by
greedy beam routing from a fixed entry point (the medoid).  Subclasses
only decide which edges to keep — the routing, candidate generation and
connectivity repair live here.
"""

from __future__ import annotations

import heapq
from collections import deque

import numpy as np

from ..errors import IndexError_
from .base import AnnIndex, SearchResult


class ProximityGraphIndex(AnnIndex):
    """Base class for graph-based ANN indexes (MRNG, tau-MG).

    Parameters
    ----------
    max_degree:
        Out-degree cap per node.
    candidate_pool:
        Number of nearest candidates considered per node at build time
        (exact kNN via chunked brute force); the occlusion rule prunes
        within this pool.
    ef_search:
        Default beam width at query time.
    """

    def __init__(self, max_degree: int = 24, candidate_pool: int = 64,
                 ef_search: int = 32) -> None:
        super().__init__()
        if max_degree < 1 or candidate_pool < 1 or ef_search < 1:
            raise IndexError_("degree/pool/ef parameters must be >= 1")
        self.max_degree = max_degree
        self.candidate_pool = candidate_pool
        self.ef_search = ef_search
        self.neighbors: list[list[int]] = []
        self.entry_point = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _build(self, data: np.ndarray) -> None:
        n = data.shape[0]
        pool = min(self.candidate_pool, n - 1)
        self.neighbors = [[] for __ in range(n)]
        if n == 1:
            self.entry_point = 0
            return
        knn = self._exact_knn(data, pool)
        for u in range(n):
            candidates = knn[u]
            distances = np.linalg.norm(data[candidates] - data[u], axis=1)
            order = np.argsort(distances, kind="stable")
            selected: list[int] = []
            for idx in order:
                v = int(candidates[idx])
                d_uv = float(distances[idx])
                if self._occludes(data, u, v, d_uv, selected):
                    continue
                selected.append(v)
                if len(selected) >= self.max_degree:
                    break
            self.neighbors[u] = selected
        self.entry_point = self._medoid(data)
        self._repair_connectivity(data)

    @staticmethod
    def _exact_knn(data: np.ndarray, k: int) -> np.ndarray:
        """Exact kNN ids per point, chunked to bound memory."""
        n = data.shape[0]
        result = np.empty((n, k), dtype=np.int64)
        chunk = max(1, int(2e7) // max(n, 1))
        sq_norms = np.einsum("ij,ij->i", data, data)
        for start in range(0, n, chunk):
            stop = min(start + chunk, n)
            block = data[start:stop]
            d2 = (sq_norms[start:stop, None] - 2.0 * block @ data.T
                  + sq_norms[None, :])
            for row, global_i in enumerate(range(start, stop)):
                d2[row, global_i] = np.inf  # exclude self
            idx = np.argpartition(d2, kth=k - 1, axis=1)[:, :k]
            # sort the k candidates by distance
            rows = np.arange(stop - start)[:, None]
            order = np.argsort(d2[rows, idx], axis=1, kind="stable")
            result[start:stop] = idx[rows, order]
        return result

    def _medoid(self, data: np.ndarray) -> int:
        centroid = data.mean(axis=0)
        return int(np.argmin(np.linalg.norm(data - centroid, axis=1)))

    def _repair_connectivity(self, data: np.ndarray) -> None:
        """Make every node reachable from the entry point.

        Unreachable nodes get an incoming edge from their nearest
        reachable node (appended even past the degree cap — reachability
        outranks the cap, as in the NSG/tau-MG reference builds).
        """
        n = data.shape[0]
        reachable = self._reachable_from_entry(n)
        while len(reachable) < n:
            missing = np.array(sorted(set(range(n)) - reachable))
            reach_list = np.array(sorted(reachable))
            # attach the missing node closest to any reachable node
            best = None
            for u in missing:
                d = np.linalg.norm(data[reach_list] - data[u], axis=1)
                j = int(np.argmin(d))
                if best is None or d[j] < best[0]:
                    best = (float(d[j]), int(reach_list[j]), int(u))
            assert best is not None
            __, source, target = best
            self.neighbors[source].append(target)
            newly = self._reachable_from(target, n)
            reachable |= newly

    def _reachable_from_entry(self, n: int) -> set[int]:
        return self._reachable_from(self.entry_point, n)

    def _reachable_from(self, start: int, n: int) -> set[int]:
        seen = {start}
        queue = deque([start])
        while queue:
            u = queue.popleft()
            for v in self.neighbors[u]:
                if v not in seen:
                    seen.add(v)
                    queue.append(v)
        return seen

    # ------------------------------------------------------------------
    # subclass hook: the edge occlusion rule
    # ------------------------------------------------------------------
    def _occludes(self, data: np.ndarray, u: int, v: int, d_uv: float,
                  selected: list[int]) -> bool:
        """True if an already-selected neighbor occludes candidate ``v``."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # search: greedy beam routing
    # ------------------------------------------------------------------
    def _search(self, query: np.ndarray, k: int) -> list[SearchResult]:
        ef = max(self.ef_search, k)
        results = self._beam_search(query, ef)
        return results[:k]

    def _beam_search(self, query: np.ndarray, ef: int,
                     entry: int | None = None) -> list[SearchResult]:
        """Best-first beam search; returns up to ``ef`` hits by distance."""
        start = self.entry_point if entry is None else entry
        d0 = self._distance(query, start)
        visited = {start}
        # candidates: min-heap by distance; frontier of the search
        candidates: list[tuple[float, int]] = [(d0, start)]
        # best: max-heap (negated) of the ef closest found so far
        best: list[tuple[float, int]] = [(-d0, start)]
        while candidates:
            dist, node = heapq.heappop(candidates)
            if dist > -best[0][0] and len(best) >= ef:
                break
            for neighbor in self.neighbors[node]:
                if neighbor in visited:
                    continue
                visited.add(neighbor)
                d = self._distance(query, neighbor)
                if len(best) < ef or d < -best[0][0]:
                    heapq.heappush(candidates, (d, neighbor))
                    heapq.heappush(best, (-d, neighbor))
                    if len(best) > ef:
                        heapq.heappop(best)
        hits = sorted(((-negd, node) for negd, node in best))
        return [SearchResult(node, d) for d, node in hits]

    # ------------------------------------------------------------------
    # introspection (used by tests and benchmarks)
    # ------------------------------------------------------------------
    def n_edges(self) -> int:
        return sum(len(nbrs) for nbrs in self.neighbors)

    def average_degree(self) -> float:
        if not self.neighbors:
            return 0.0
        return self.n_edges() / len(self.neighbors)

    def routing_hops(self, query: np.ndarray) -> int:
        """Number of greedy hops from the entry point to a local minimum.

        This is the quantity whose scaling the paper bounds by
        O(n^(1/m) (ln n)^2) for tau-MG.
        """
        assert self._data is not None
        node = self.entry_point
        d = float(np.linalg.norm(self._data[node] - query))
        hops = 0
        while True:
            improved = False
            for neighbor in self.neighbors[node]:
                dn = float(np.linalg.norm(self._data[neighbor] - query))
                if dn < d:
                    node, d = neighbor, dn
                    improved = True
                    break
            if not improved:
                return hops
            hops += 1
