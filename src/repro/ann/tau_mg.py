"""The tau-monotonic graph (tau-MG) of the paper (Def. 3).

Edge occlusion rule: given nodes ``u``, ``u'`` and ``v``, if edge
``(u, u')`` is already in the graph and ``u'`` lies in
``ball(u, d(u, v))  intersect  ball(v, d(u, v) - 3*tau)``, then edge
``(u, v)`` is *not* added.  Intuitively a neighbor ``u'`` that is closer
to ``u`` than ``v`` is, *and* is substantially (by ``3*tau``) closer to
``v``, already provides a monotone routing step toward ``v``.

With ``tau = 0`` the rule degenerates to the MRNG occlusion rule; a
positive ``tau`` prunes more edges while preserving tau-monotonicity of
routing paths, which is what yields the O(n^(1/m) (ln n)^2) expected
routing complexity claimed in the paper.
"""

from __future__ import annotations

import numpy as np

from ..errors import IndexError_
from .proximity_graph import ProximityGraphIndex


class TauMGIndex(ProximityGraphIndex):
    """tau-MG proximity-graph index (paper Sec. II-D)."""

    def __init__(self, tau: float = 0.05, max_degree: int = 24,
                 candidate_pool: int = 64, ef_search: int = 32) -> None:
        super().__init__(max_degree=max_degree,
                         candidate_pool=candidate_pool,
                         ef_search=ef_search)
        if tau < 0:
            raise IndexError_("tau must be >= 0")
        self.tau = tau

    def _occludes(self, data: np.ndarray, u: int, v: int, d_uv: float,
                  selected: list[int]) -> bool:
        for u_prime in selected:
            d_u_uprime = float(np.linalg.norm(data[u] - data[u_prime]))
            if d_u_uprime > d_uv:
                continue  # u' outside ball(u, d(u, v))
            d_uprime_v = float(np.linalg.norm(data[u_prime] - data[v]))
            if d_uprime_v <= d_uv - 3.0 * self.tau:
                return True  # u' inside ball(v, d(u, v) - 3 tau)
        return False
