"""Hierarchical navigable small world (HNSW) baseline index.

A standard HNSW: each point gets a geometric random level; upper layers
are sparse navigation graphs, the bottom layer holds everyone.  Insertion
greedily descends to the target layer, then connects to the ``M`` best
candidates chosen by the Malkov-Yashunin select-neighbors heuristic.
"""

from __future__ import annotations

import heapq
import math
import random

import numpy as np

from ..errors import IndexError_
from .base import AnnIndex, SearchResult


class HNSWIndex(AnnIndex):
    """HNSW graph index (incremental insertion, heuristic pruning)."""

    def __init__(self, m: int = 12, ef_construction: int = 64,
                 ef_search: int = 32, seed: int = 0) -> None:
        super().__init__()
        if m < 1 or ef_construction < 1 or ef_search < 1:
            raise IndexError_("m/ef parameters must be >= 1")
        self.m = m
        self.m0 = 2 * m  # bottom-layer degree cap
        self.ef_construction = ef_construction
        self.ef_search = ef_search
        self.seed = seed
        self._level_mult = 1.0 / math.log(m + 1)
        # layers[l][u] -> neighbor list of u at layer l
        self.layers: list[dict[int, list[int]]] = []
        #: Frozen int64 adjacency per layer, built once after the
        #: insertion loop; None during incremental construction, which
        #: keeps the build on the mutable-list scalar path.
        self._layer_arrays: list[dict[int, np.ndarray]] | None = None
        self.entry_point = 0
        self.max_level = -1

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _build(self, data: np.ndarray) -> None:
        rng = random.Random(self.seed)
        self.layers = []
        self._layer_arrays = None
        self.max_level = -1
        for u in range(data.shape[0]):
            self._insert(data, u, rng)
        self._freeze_layers()

    def _freeze_layers(self) -> None:
        """Snapshot per-layer adjacency as int64 arrays.

        Duplicates are dropped keeping first occurrence — the scalar
        search's visited set makes repeats no-ops, so this preserves
        its semantics exactly.
        """
        self._layer_arrays = [
            {u: np.fromiter(dict.fromkeys(nbrs), dtype=np.int64, count=-1)
             for u, nbrs in layer.items()}
            for layer in self.layers
        ]

    def _insert_one(self, new_id: int) -> None:
        """Incremental insert — HNSW insertion is natively incremental.

        The per-insert RNG is derived from ``(seed, new_id)`` so the
        level draw is a pure function of the vector's identity, not of
        how many inserts happened before; a later
        :meth:`~repro.ann.base.AnnIndex.compact` rebuilds with the
        fresh-build RNG stream and restores bit-compatibility.
        """
        assert self._data is not None
        rng = random.Random(f"{self.seed}:{new_id}")
        # drop to the mutable-list scalar path while the graph changes
        self._layer_arrays = None
        self._insert(self._data, new_id, rng)
        self._freeze_layers()

    def _random_level(self, rng: random.Random) -> int:
        return int(-math.log(max(rng.random(), 1e-12)) * self._level_mult)

    def _insert(self, data: np.ndarray, u: int, rng: random.Random) -> None:
        level = self._random_level(rng)
        while len(self.layers) <= level:
            self.layers.append({})
        for l in range(level + 1):
            self.layers[l].setdefault(u, [])
        if self.max_level < 0:
            self.entry_point = u
            self.max_level = level
            return
        query = data[u]
        entry = self.entry_point
        # greedy descent through layers above the insertion level
        for l in range(self.max_level, level, -1):
            entry = self._greedy_step(query, entry, l)
        # connect at each layer from min(level, max_level) down to 0
        for l in range(min(level, self.max_level), -1, -1):
            candidates = self._search_layer(query, entry, l,
                                            self.ef_construction)
            cap = self.m0 if l == 0 else self.m
            chosen = self._select_neighbors(data, query, candidates, cap)
            self.layers[l][u] = [c for __, c in chosen]
            for __, c in chosen:
                self.layers[l][c].append(u)
                if len(self.layers[l][c]) > cap:
                    self._shrink(data, c, l, cap)
            if candidates:
                entry = candidates[0][1]
        if level > self.max_level:
            self.max_level = level
            self.entry_point = u

    def _select_neighbors(self, data: np.ndarray, query: np.ndarray,
                          candidates: list[tuple[float, int]],
                          cap: int) -> list[tuple[float, int]]:
        """Heuristic pruning: keep candidates closer to the query than to
        any already-kept neighbor (diversifies directions)."""
        chosen: list[tuple[float, int]] = []
        for dist, c in sorted(candidates):
            if len(chosen) >= cap:
                break
            keep = True
            for __, kept in chosen:
                if float(np.linalg.norm(data[c] - data[kept])) < dist:
                    keep = False
                    break
            if keep:
                chosen.append((dist, c))
        # backfill with nearest skipped candidates if underfull
        if len(chosen) < cap:
            chosen_ids = {c for __, c in chosen}
            for dist, c in sorted(candidates):
                if len(chosen) >= cap:
                    break
                if c not in chosen_ids:
                    chosen.append((dist, c))
                    chosen_ids.add(c)
        return chosen

    def _shrink(self, data: np.ndarray, node: int, layer: int,
                cap: int) -> None:
        nbrs = self.layers[layer][node]
        scored = [(float(np.linalg.norm(data[v] - data[node])), v)
                  for v in nbrs]
        chosen = self._select_neighbors(data, data[node], scored, cap)
        self.layers[layer][node] = [v for __, v in chosen]

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------
    def _greedy_step(self, query: np.ndarray, entry: int, layer: int) -> int:
        if self.use_batched and self._layer_arrays is not None:
            return self._greedy_step_batched(query, entry, layer)
        current = entry
        d = self._distance(query, current)
        improved = True
        while improved:
            improved = False
            for neighbor in self.layers[layer].get(current, []):
                dn = self._distance(query, neighbor)
                if dn < d:
                    current, d = neighbor, dn
                    improved = True
        return current

    def _greedy_step_batched(self, query: np.ndarray, entry: int,
                             layer: int) -> int:
        """Greedy descent scoring each node's whole adjacency at once.

        One pass of the scalar loop scans every neighbor of the current
        node and ends on the first-occurring minimum — which is exactly
        ``argmin`` over the bulk distances, so the hop sequence and
        ``distance_computations`` count match the scalar path.
        """
        assert self._layer_arrays is not None
        adjacency = self._layer_arrays[layer]
        current = entry
        d = self._distance(query, current)
        while True:
            nbrs = adjacency.get(current)
            if nbrs is None or nbrs.size == 0:
                return current
            dists = self._distances_bulk(query, nbrs)
            j = int(np.argmin(dists))
            if not dists[j] < d:
                return current
            current, d = int(nbrs[j]), float(dists[j])

    def _search_layer(self, query: np.ndarray, entry: int, layer: int,
                      ef: int) -> list[tuple[float, int]]:
        if self.use_batched and self._layer_arrays is not None:
            return self._search_layer_batched(query, entry, layer, ef)
        d0 = self._distance(query, entry)
        visited = {entry}
        candidates = [(d0, entry)]
        best: list[tuple[float, int]] = [(-d0, entry)]
        while candidates:
            dist, node = heapq.heappop(candidates)
            if dist > -best[0][0] and len(best) >= ef:
                break
            for neighbor in self.layers[layer].get(node, []):
                if neighbor in visited:
                    continue
                visited.add(neighbor)
                d = self._distance(query, neighbor)
                if len(best) < ef or d < -best[0][0]:
                    heapq.heappush(candidates, (d, neighbor))
                    heapq.heappush(best, (-d, neighbor))
                    if len(best) > ef:
                        heapq.heappop(best)
        return sorted((-negd, node) for negd, node in best)

    def _search_layer_batched(self, query: np.ndarray, entry: int,
                              layer: int, ef: int) -> list[tuple[float, int]]:
        """Frontier-batched layer search (see ProximityGraphIndex).

        Unvisited neighbors are gathered and scored with one vectorized
        distance call per expansion; the heap updates replay the scalar
        loop over the precomputed distances, preserving bit-identical
        results and the same ``distance_computations`` count.
        """
        assert self._data is not None and self._layer_arrays is not None
        adjacency = self._layer_arrays[layer]
        d0 = self._distance(query, entry)
        visited = np.zeros(self._data.shape[0], dtype=bool)
        visited[entry] = True
        candidates = [(d0, entry)]
        best: list[tuple[float, int]] = [(-d0, entry)]
        while candidates:
            dist, node = heapq.heappop(candidates)
            if dist > -best[0][0] and len(best) >= ef:
                break
            nbrs = adjacency.get(node)
            if nbrs is None or nbrs.size == 0:
                continue
            fresh = nbrs[~visited[nbrs]]
            if fresh.size == 0:
                continue
            visited[fresh] = True
            dists = self._distances_bulk(query, fresh)
            for neighbor, d in zip(fresh.tolist(), dists.tolist()):
                if len(best) < ef or d < -best[0][0]:
                    heapq.heappush(candidates, (d, neighbor))
                    heapq.heappush(best, (-d, neighbor))
                    if len(best) > ef:
                        heapq.heappop(best)
        return sorted((-negd, node) for negd, node in best)

    def _search(self, query: np.ndarray, k: int) -> list[SearchResult]:
        entry = self.entry_point
        for l in range(self.max_level, 0, -1):
            entry = self._greedy_step(query, entry, l)
        ef = max(self.ef_search, k)
        hits = self._search_layer(query, entry, 0, ef)
        return [SearchResult(node, d) for d, node in hits[:k]]
