"""Recall/efficiency evaluation harness for ANN indexes.

Work is measured in *distance computations per query* — a hardware
independent stand-in for QPS that makes the paper's "tau-MG needs the
least routing work" claim reproducible on any machine.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from .base import AnnIndex
from .brute_force import BruteForceIndex


def recall_at_k(approx_ids: list[int], exact_ids: list[int]) -> float:
    """Fraction of the exact top-k found by the approximate search."""
    if not exact_ids:
        return 1.0
    return len(set(approx_ids) & set(exact_ids)) / len(exact_ids)


@dataclass(frozen=True)
class EvaluationResult:
    """Aggregate quality/efficiency of one index over a query set."""

    index_name: str
    n_data: int
    n_queries: int
    k: int
    recall: float
    mean_distance_computations: float
    mean_query_seconds: float
    #: Fraction of queries satisfying the epsilon guarantee of Def. 2.
    epsilon_satisfaction: float

    def row(self) -> str:
        """One aligned table row (benchmarks print these)."""
        return (f"{self.index_name:<14} n={self.n_data:<6} k={self.k:<3} "
                f"recall={self.recall:6.3f} "
                f"dists/query={self.mean_distance_computations:10.1f} "
                f"ms/query={self.mean_query_seconds * 1e3:8.3f} "
                f"eps-ok={self.epsilon_satisfaction:6.3f}")


def ground_truth(data: np.ndarray, queries: np.ndarray,
                 k: int) -> list[list[int]]:
    """Exact top-k ids for each query (via brute force)."""
    exact = BruteForceIndex().build(data)
    return [[hit.vector_id for hit in exact.search(q, k)] for q in queries]


def evaluate_index(index: AnnIndex, data: np.ndarray, queries: np.ndarray,
                   k: int = 10, epsilon: float = 0.1,
                   name: str | None = None,
                   truth: list[list[int]] | None = None) -> EvaluationResult:
    """Evaluate a *built* index on ``queries`` against exact ground truth."""
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    if truth is None:
        truth = ground_truth(data, queries, k)
    exact_nn_dist = [float(np.linalg.norm(data[ids[0]] - q))
                     for ids, q in zip(truth, queries)]
    recalls = []
    eps_ok = 0
    index.reset_counters()
    start = time.perf_counter()
    for qi, query in enumerate(queries):
        hits = index.search(query, k)
        recalls.append(recall_at_k([h.vector_id for h in hits], truth[qi]))
        if hits and hits[0].distance <= (1.0 + epsilon) * exact_nn_dist[qi] \
                + 1e-12:
            eps_ok += 1
    elapsed = time.perf_counter() - start
    n_queries = len(queries)
    return EvaluationResult(
        index_name=name or type(index).__name__,
        n_data=int(data.shape[0]),
        n_queries=n_queries,
        k=k,
        recall=float(np.mean(recalls)),
        mean_distance_computations=index.distance_computations / n_queries,
        mean_query_seconds=elapsed / n_queries,
        epsilon_satisfaction=eps_ok / n_queries,
    )
