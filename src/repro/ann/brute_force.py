"""Exact nearest-neighbor search by linear scan (the ground truth)."""

from __future__ import annotations

import numpy as np

from .base import AnnIndex, SearchResult


class BruteForceIndex(AnnIndex):
    """Exact k-NN by scanning the whole data matrix per query."""

    def _build(self, data: np.ndarray) -> None:
        # nothing to precompute
        return

    def _search(self, query: np.ndarray, k: int) -> list[SearchResult]:
        assert self._data is not None
        ids = np.arange(self._data.shape[0])
        distances = self._distances_bulk(query, ids)
        order = np.argsort(distances, kind="stable")[:k]
        return [SearchResult(int(i), float(distances[i])) for i in order]
