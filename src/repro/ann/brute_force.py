"""Exact nearest-neighbor search by linear scan (the ground truth)."""

from __future__ import annotations

import numpy as np

from .base import AnnIndex, SearchResult
from .kernels import gathered_distances, matmul_sq_distances, stable_topk


class BruteForceIndex(AnnIndex):
    """Exact k-NN by scanning the whole data matrix per query."""

    def _build(self, data: np.ndarray) -> None:
        # row norms are precomputed by the base class
        return

    def _insert_one(self, new_id: int) -> None:
        # the appended row and refreshed norms are the whole structure
        return

    def _search(self, query: np.ndarray, k: int) -> list[SearchResult]:
        assert self._data is not None
        ids = np.arange(self._data.shape[0])
        distances = self._distances_bulk(query, ids)
        order = stable_topk(distances, k)
        return [SearchResult(int(i), float(distances[i])) for i in order]

    def _search_batch(self, queries: np.ndarray,
                      k: int) -> list[list[SearchResult]]:
        """All queries against all points with one matmul.

        The matmul form of the squared distance is only used to *select*
        candidates (with a small safety margin past ``k``); the selected
        ids are then re-scored with the exact gather kernel and stably
        re-ranked, so the returned hits match :meth:`_search` bitwise.
        """
        assert self._data is not None and self._sq_norms is not None
        if not self.use_batched:
            return super()._search_batch(queries, k)
        n = self._data.shape[0]
        d2 = matmul_sq_distances(self._data, self._sq_norms, queries)
        # one matmul row == one full scan; count it like the scalar path
        self.distance_computations += queries.shape[0] * n
        margin = min(n, k + 8)
        results: list[list[SearchResult]] = []
        for row in range(queries.shape[0]):
            pool = stable_topk(d2[row], margin)
            exact = gathered_distances(self._data, pool, queries[row])
            order = np.lexsort((pool, exact))[:k]
            results.append([
                SearchResult(int(pool[i]), float(exact[i]))
                for i in order
            ])
        return results
