"""Approximate nearest neighbor search (paper Sec. II-D).

The API-retrieval module searches the text-embedding space with a
proximity-graph (PG) index.  This package implements the paper's
tau-MG index (Def. 2/3: edge occlusion rule, greedy routing) together
with the baselines it is compared against in the ANN literature:

* :class:`BruteForceIndex` — exact scan (the ground truth),
* :class:`MRNGIndex` — monotonic relative neighborhood graph (tau = 0),
* :class:`TauMGIndex` — the tau-monotonic graph of the paper,
* :class:`HNSWIndex` — hierarchical navigable small world graphs,

plus a recall/QPS evaluation harness in :mod:`repro.ann.evaluation`.
"""

from .base import AnnIndex, SearchResult
from .kernels import stable_topk
from .brute_force import BruteForceIndex
from .proximity_graph import ProximityGraphIndex
from .tau_mg import TauMGIndex
from .mrng import MRNGIndex
from .hnsw import HNSWIndex
from .vptree import VPTreeIndex
from .evaluation import EvaluationResult, evaluate_index, recall_at_k

__all__ = [
    "AnnIndex",
    "SearchResult",
    "BruteForceIndex",
    "ProximityGraphIndex",
    "TauMGIndex",
    "MRNGIndex",
    "HNSWIndex",
    "VPTreeIndex",
    "EvaluationResult",
    "evaluate_index",
    "recall_at_k",
    "stable_topk",
]
