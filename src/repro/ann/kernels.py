"""Vectorized numeric kernels shared by the ANN indexes.

The scalar search paths evaluate one point-to-query distance per Python
call; the batched paths gather whole frontiers and evaluate them in one
numpy expression.  Both must agree *bitwise* so that batched search is
a pure performance change: every kernel here fixes one canonical
floating-point evaluation order, and the scalar helpers in
:class:`~repro.ann.base.AnnIndex` route through the same expressions.
"""

from __future__ import annotations

import numpy as np


def row_sq_norms(data: np.ndarray) -> np.ndarray:
    """Per-row squared L2 norms of an ``(n, d)`` matrix.

    Precomputed once at index build time; the batched brute-force
    kernel turns ``|x - q|^2`` into ``|x|^2 - 2 x.q + |q|^2`` with one
    matmul instead of materializing ``n`` difference vectors per query.
    """
    return np.einsum("ij,ij->i", data, data)


def gathered_distances(data: np.ndarray, ids: np.ndarray,
                       query: np.ndarray) -> np.ndarray:
    """Euclidean distances from ``query`` to ``data[ids]`` (gather form).

    This is the canonical distance evaluation order: a single-row call
    (``ids`` of length 1) produces bit-identical values to a bulk call,
    so scalar and batched searches see the same floats.
    """
    diff = data[ids] - query
    return np.sqrt(np.einsum("ij,ij->i", diff, diff))


def matmul_sq_distances(data: np.ndarray, sq_norms: np.ndarray,
                        queries: np.ndarray) -> np.ndarray:
    """All-pairs squared distances ``(m, n)`` via one matmul.

    ``d2[i, j] = |queries[i] - data[j]|^2`` computed as
    ``|x|^2 - 2 x.q + |q|^2``, clamped at zero (the expansion can go
    slightly negative in floating point).  Used for *candidate
    selection* only — callers recompute the exact distances of the
    selected ids with :func:`gathered_distances` so reported values
    match the scalar path bitwise.
    """
    q_norms = np.einsum("ij,ij->i", queries, queries)
    d2 = q_norms[:, None] - 2.0 * (queries @ data.T) + sq_norms[None, :]
    np.maximum(d2, 0.0, out=d2)
    return d2


def stable_topk(values: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` smallest values, ties broken by index.

    Equal to ``np.argsort(values, kind="stable")[:k]`` — including the
    ordering of tied values — but via ``argpartition``, so the cost is
    O(n + k log k) instead of a full O(n log n) sort.
    """
    n = values.shape[0]
    if k >= n:
        return np.argsort(values, kind="stable")
    part = np.argpartition(values, k - 1)[:k]
    kth = values[part].max()
    # everything strictly below the kth value is in the top-k; fill the
    # remaining slots with the lowest-index ties (what a stable full
    # sort would have kept)
    strict = np.flatnonzero(values < kth)
    ties = np.flatnonzero(values == kth)[:k - strict.size]
    selected = np.concatenate([strict, ties])
    order = np.argsort(values[selected], kind="stable")
    return selected[order]
