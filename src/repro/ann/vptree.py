"""Vantage-point tree: an exact metric-tree baseline for the ANN suite.

VP-trees answer exact k-NN by triangle-inequality pruning.  They are the
classical pre-proximity-graph family (the paper's Sec. II-D contrasts
PGs against "other indexes"); including one lets E6 show where graph
indexes win: VP-trees are exact but prune poorly in high dimensions.
"""

from __future__ import annotations

import heapq
import random

import numpy as np

from ..errors import IndexError_
from .base import AnnIndex, SearchResult


class _Node:
    __slots__ = ("point_id", "radius", "inside", "outside")

    def __init__(self, point_id: int) -> None:
        self.point_id = point_id
        self.radius = 0.0
        self.inside: "_Node | None" = None
        self.outside: "_Node | None" = None


class VPTreeIndex(AnnIndex):
    """Exact k-NN via a vantage-point tree (leaf size 1)."""

    def __init__(self, seed: int = 0) -> None:
        super().__init__()
        self.seed = seed
        self._root: _Node | None = None

    def _build(self, data: np.ndarray) -> None:
        rng = random.Random(self.seed)
        ids = list(range(data.shape[0]))
        self._root = self._build_node(data, ids, rng)

    def _build_node(self, data: np.ndarray, ids: list[int],
                    rng: random.Random) -> "_Node | None":
        if not ids:
            return None
        vantage = ids[rng.randrange(len(ids))]
        rest = [i for i in ids if i != vantage]
        node = _Node(vantage)
        if not rest:
            return node
        distances = np.linalg.norm(data[rest] - data[vantage], axis=1)
        node.radius = float(np.median(distances))
        inside = [i for i, d in zip(rest, distances) if d <= node.radius]
        outside = [i for i, d in zip(rest, distances) if d > node.radius]
        node.inside = self._build_node(data, inside, rng)
        node.outside = self._build_node(data, outside, rng)
        return node

    def _search(self, query: np.ndarray, k: int) -> list[SearchResult]:
        if self._root is None:
            raise IndexError_("index not built")  # pragma: no cover
        # max-heap of the k best (negated distances)
        best: list[tuple[float, int]] = []

        def visit(node: "_Node | None") -> None:
            if node is None:
                return
            d = self._distance(query, node.point_id)
            if len(best) < k:
                heapq.heappush(best, (-d, node.point_id))
            elif d < -best[0][0]:
                heapq.heapreplace(best, (-d, node.point_id))
            tau = -best[0][0] if len(best) == k else np.inf
            if node.inside is None and node.outside is None:
                return
            if d <= node.radius:
                visit(node.inside)
                tau = -best[0][0] if len(best) == k else np.inf
                if d + tau > node.radius:
                    visit(node.outside)
            else:
                visit(node.outside)
                tau = -best[0][0] if len(best) == k else np.inf
                if d - tau <= node.radius:
                    visit(node.inside)

        visit(self._root)
        hits = sorted((-negd, pid) for negd, pid in best)
        return [SearchResult(pid, d) for d, pid in hits]
