"""A SMILES-lite parser and writer.

Supported grammar (enough for common drug-like molecules):

* organic-subset atoms ``B C N O P S F Cl Br I`` and their aromatic
  lowercase forms ``b c n o p s``;
* bracket atoms ``[Na+]``, ``[NH4+]``, ``[O-]``, ``[nH]`` with charge
  and explicit hydrogen counts;
* bonds ``-``, ``=``, ``#`` and implicit single/aromatic bonds;
* branches with parentheses and ring-closure digits (``%nn`` included).

Unsupported: stereochemistry (``/ \\ @``), isotopes, wildcards — the
parser raises :class:`SmilesError` on them rather than mis-parsing.
"""

from __future__ import annotations

from ..errors import SmilesError
from .elements import ELEMENTS
from .molecule import Molecule

_ORGANIC_TWO = ("Cl", "Br")
_ORGANIC_ONE = ("B", "C", "N", "O", "P", "S", "F", "I")
_AROMATIC = ("b", "c", "n", "o", "p", "s")
_BOND_ORDERS = {"-": 1.0, "=": 2.0, "#": 3.0, ":": 1.5}


def parse_smiles(smiles: str, name: str = "") -> Molecule:
    """Parse ``smiles`` into a :class:`Molecule`.

    Example::

        mol = parse_smiles("CC(=O)O", name="acetic acid")
        assert mol.n_atoms == 4
    """
    text = smiles.strip()
    if not text:
        raise SmilesError(smiles, "empty string")
    mol = Molecule(name=name, smiles=text)
    prev_atom: int | None = None
    pending_bond: float | None = None
    branch_stack: list[int | None] = []
    ring_bonds: dict[int, tuple[int, float | None]] = {}
    i = 0
    n = len(text)

    def attach(atom_index: int) -> None:
        nonlocal prev_atom, pending_bond
        if prev_atom is not None:
            order = pending_bond
            if order is None:
                both_aromatic = (mol.atoms[prev_atom].aromatic
                                 and mol.atoms[atom_index].aromatic)
                order = 1.5 if both_aromatic else 1.0
            mol.add_bond(prev_atom, atom_index, order)
        prev_atom = atom_index
        pending_bond = None

    while i < n:
        ch = text[i]
        if ch in _BOND_ORDERS:
            if pending_bond is not None:
                raise SmilesError(smiles, f"double bond symbol at {i}")
            pending_bond = _BOND_ORDERS[ch]
            i += 1
        elif ch == "(":
            if prev_atom is None:
                raise SmilesError(smiles, "branch before any atom")
            branch_stack.append(prev_atom)
            i += 1
        elif ch == ")":
            if not branch_stack:
                raise SmilesError(smiles, "unbalanced ')'")
            prev_atom = branch_stack.pop()
            i += 1
        elif ch == "[":
            end = text.find("]", i)
            if end < 0:
                raise SmilesError(smiles, "unclosed bracket atom")
            atom_index = _parse_bracket(mol, smiles, text[i + 1:end])
            attach(atom_index)
            i = end + 1
        elif ch.isdigit() or ch == "%":
            if ch == "%":
                if i + 2 >= n or not text[i + 1:i + 3].isdigit():
                    raise SmilesError(smiles, f"bad %ring closure at {i}")
                ring_id = int(text[i + 1:i + 3])
                i += 3
            else:
                ring_id = int(ch)
                i += 1
            if prev_atom is None:
                raise SmilesError(smiles, "ring closure before any atom")
            if ring_id in ring_bonds:
                other, opening_bond = ring_bonds.pop(ring_id)
                order = pending_bond if pending_bond is not None \
                    else opening_bond
                if order is None:
                    both_aromatic = (mol.atoms[other].aromatic
                                     and mol.atoms[prev_atom].aromatic)
                    order = 1.5 if both_aromatic else 1.0
                mol.add_bond(other, prev_atom, order)
                pending_bond = None
            else:
                ring_bonds[ring_id] = (prev_atom, pending_bond)
                pending_bond = None
        elif text[i:i + 2] in _ORGANIC_TWO:
            attach(mol.add_atom(text[i:i + 2]))
            i += 2
        elif ch in _ORGANIC_ONE:
            attach(mol.add_atom(ch))
            i += 1
        elif ch in _AROMATIC:
            attach(mol.add_atom(ch.upper(), aromatic=True))
            i += 1
        elif ch == ".":
            # disconnected component separator
            prev_atom = None
            pending_bond = None
            i += 1
        else:
            raise SmilesError(smiles, f"unsupported character {ch!r} at {i}")

    if branch_stack:
        raise SmilesError(smiles, "unbalanced '('")
    if ring_bonds:
        raise SmilesError(smiles,
                          f"unclosed ring bonds {sorted(ring_bonds)}")
    if pending_bond is not None:
        raise SmilesError(smiles, "dangling bond symbol")
    if not mol.atoms:
        raise SmilesError(smiles, "no atoms")
    return mol


def _parse_bracket(mol: Molecule, smiles: str, body: str) -> int:
    """Parse the inside of ``[...]``: element, optional H count, charge."""
    if not body:
        raise SmilesError(smiles, "empty bracket atom")
    i = 0
    # element symbol (aromatic lowercase allowed)
    aromatic = False
    if body[i:i + 2] in ELEMENTS:
        element = body[i:i + 2]
        i += 2
    elif body[i].upper() in ELEMENTS and (len(body[i:]) < 2
                                          or body[i:i + 2] not in ELEMENTS):
        aromatic = body[i].islower()
        element = body[i].upper()
        i += 1
    else:
        raise SmilesError(smiles, f"bad bracket element in [{body}]")
    explicit_h = 0
    if i < len(body) and body[i] == "H":
        i += 1
        count = ""
        while i < len(body) and body[i].isdigit():
            count += body[i]
            i += 1
        explicit_h = int(count) if count else 1
    charge = 0
    while i < len(body) and body[i] in "+-":
        sign = 1 if body[i] == "+" else -1
        i += 1
        count = ""
        while i < len(body) and body[i].isdigit():
            count += body[i]
            i += 1
        charge += sign * (int(count) if count else 1)
    if i != len(body):
        raise SmilesError(smiles, f"trailing junk in [{body}]")
    return mol.add_atom(element, aromatic=aromatic, charge=charge,
                        explicit_h=explicit_h)


def write_smiles(mol: Molecule) -> str:
    """Serialize a molecule back to SMILES (valid, not canonical).

    The output round-trips through :func:`parse_smiles` to an isomorphic
    molecule; atom order follows a DFS from atom 0.
    """
    if not mol.atoms:
        raise SmilesError("", "empty molecule")
    adjacency: dict[int, list[tuple[int, float]]] = {
        atom.index: [] for atom in mol.atoms}
    for bond in mol.bonds:
        adjacency[bond.u].append((bond.v, bond.order))
        adjacency[bond.v].append((bond.u, bond.order))

    visited: set[int] = set()
    ring_counter = [0]
    ring_labels: dict[frozenset[int], int] = {}
    # pre-pass: find back edges (DFS) to assign ring-closure digits
    back_edges: set[frozenset[int]] = set()

    def find_back_edges(start: int) -> None:
        # any spanning tree works for ring-closure assignment: every
        # non-tree edge of the component becomes one closure digit.
        parent: dict[int, int | None] = {start: None}
        queue = [start]
        head = 0
        while head < len(queue):
            node = queue[head]
            head += 1
            for neighbor, __ in adjacency[node]:
                if neighbor not in parent:
                    parent[neighbor] = node
                    queue.append(neighbor)
        tree = {frozenset((child, par)) for child, par in parent.items()
                if par is not None}
        for node in parent:
            for neighbor, __ in adjacency[node]:
                key = frozenset((node, neighbor))
                if key not in tree:
                    back_edges.add(key)

    def atom_text(index: int) -> str:
        atom = mol.atoms[index]
        symbol = atom.element.lower() if atom.aromatic else atom.element
        plain_ok = (atom.charge == 0 and atom.explicit_h is None
                    and (atom.element in _ORGANIC_ONE
                         or atom.element in _ORGANIC_TWO))
        if plain_ok:
            return symbol
        h = atom.explicit_h if atom.explicit_h is not None else \
            mol.implicit_hydrogens(index)
        h_text = "" if h == 0 else ("H" if h == 1 else f"H{h}")
        if atom.charge == 0:
            charge_text = ""
        elif atom.charge > 0:
            charge_text = "+" * atom.charge if atom.charge <= 2 \
                else f"+{atom.charge}"
        else:
            charge_text = "-" * -atom.charge if atom.charge >= -2 \
                else f"-{-atom.charge}"
        return f"[{symbol}{h_text}{charge_text}]"

    def bond_text(order: float, u: int, v: int) -> str:
        if order == 2.0:
            return "="
        if order == 3.0:
            return "#"
        return ""  # single and aromatic bonds are implicit

    def walk(node: int) -> str:
        visited.add(node)
        out = [atom_text(node)]
        # ring closures at this atom
        for neighbor, order in adjacency[node]:
            key = frozenset((node, neighbor))
            if key in back_edges:
                if key not in ring_labels:
                    ring_counter[0] += 1
                    ring_labels[key] = ring_counter[0]
                label = ring_labels[key]
                digit = str(label) if label < 10 else f"%{label:02d}"
                out.append(bond_text(order, node, neighbor) + digit)
        children = [(neighbor, order) for neighbor, order in adjacency[node]
                    if neighbor not in visited
                    and frozenset((node, neighbor)) not in back_edges]
        for position, (neighbor, order) in enumerate(children):
            # re-check: an earlier child may have visited this neighbor
            if neighbor in visited:
                continue
            body = bond_text(order, node, neighbor) + walk(neighbor)
            is_last = all(nb in visited for nb, __ in children[position + 1:])
            if is_last:
                out.append(body)
            else:
                out.append(f"({body})")
        return "".join(out)

    parts = []
    for atom in mol.atoms:
        if atom.index not in visited:
            find_back_edges(atom.index)
            parts.append(walk(atom.index))
    return ".".join(parts)
