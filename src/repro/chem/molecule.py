"""Molecule graphs: atoms, bonds, rings and implicit hydrogens."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SmilesError
from ..graphs.graph import Graph
from ..algorithms.traversal import bfs_tree
from .elements import ELEMENTS


@dataclass
class Atom:
    """One heavy atom."""

    index: int
    element: str
    aromatic: bool = False
    charge: int = 0
    #: Explicit hydrogen count from bracket atoms; None = implicit.
    explicit_h: int | None = None


@dataclass(frozen=True)
class Bond:
    """A bond between two atom indexes."""

    u: int
    v: int
    #: 1, 2, 3 or 1.5 (aromatic).
    order: float = 1.0


@dataclass
class Molecule:
    """A molecule: atoms plus bonds, with graph and chemistry views.

    Build via :func:`repro.chem.smiles.parse_smiles`; the class itself is
    representation-only and does not validate chemistry beyond valences.
    """

    atoms: list[Atom] = field(default_factory=list)
    bonds: list[Bond] = field(default_factory=list)
    name: str = ""
    smiles: str = ""

    # ------------------------------------------------------------------
    # construction helpers (used by the parser)
    # ------------------------------------------------------------------
    def add_atom(self, element: str, aromatic: bool = False,
                 charge: int = 0, explicit_h: int | None = None) -> int:
        if element not in ELEMENTS:
            raise SmilesError(self.smiles or element,
                              f"unknown element {element!r}")
        atom = Atom(index=len(self.atoms), element=element,
                    aromatic=aromatic, charge=charge, explicit_h=explicit_h)
        self.atoms.append(atom)
        return atom.index

    def add_bond(self, u: int, v: int, order: float = 1.0) -> None:
        if u == v or not (0 <= u < len(self.atoms)) \
                or not (0 <= v < len(self.atoms)):
            raise SmilesError(self.smiles, f"bad bond ({u}, {v})")
        self.bonds.append(Bond(u, v, order))

    # ------------------------------------------------------------------
    # chemistry
    # ------------------------------------------------------------------
    def neighbors(self, index: int) -> list[tuple[int, float]]:
        """(neighbor index, bond order) pairs of atom ``index``."""
        out = []
        for bond in self.bonds:
            if bond.u == index:
                out.append((bond.v, bond.order))
            elif bond.v == index:
                out.append((bond.u, bond.order))
        return out

    def bond_order_sum(self, index: int) -> float:
        """Sum of bond orders at an atom (aromatic counts 1.5)."""
        return sum(order for __, order in self.neighbors(index))

    def implicit_hydrogens(self, index: int) -> int:
        """Implicit H count = default valence - bonds - |charge| effects."""
        atom = self.atoms[index]
        if atom.explicit_h is not None:
            return atom.explicit_h
        valence = ELEMENTS[atom.element].valence + atom.charge
        used = self.bond_order_sum(index)
        if atom.aromatic:
            # aromatic atoms in a ring use one slot for the pi system
            used = round(used)
        return max(0, int(round(valence - used)))

    def total_hydrogens(self) -> int:
        return sum(self.implicit_hydrogens(i) for i in range(len(self.atoms)))

    @property
    def n_atoms(self) -> int:
        return len(self.atoms)

    @property
    def n_bonds(self) -> int:
        return len(self.bonds)

    def ring_count(self) -> int:
        """Cyclomatic number (number of independent rings)."""
        graph = self.to_graph()
        from ..algorithms.components import connected_components
        n_components = len(connected_components(graph)) if self.atoms else 0
        return self.n_bonds - self.n_atoms + n_components

    def ring_membership(self) -> set[int]:
        """Indexes of atoms belonging to at least one ring.

        An edge is a ring edge iff it is not a bridge.
        """
        graph = self.to_graph()
        from ..algorithms.components import bridges
        bridge_set = {frozenset(edge) for edge in bridges(graph)}
        members: set[int] = set()
        for bond in self.bonds:
            if frozenset((bond.u, bond.v)) not in bridge_set:
                members.update((bond.u, bond.v))
        return members

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def to_graph(self) -> Graph:
        """Property-graph view (nodes carry ``element``/``kind`` attrs)."""
        graph = Graph(name=self.name or "molecule")
        for atom in self.atoms:
            graph.add_node(atom.index, kind="atom", element=atom.element,
                           label=atom.element, aromatic=atom.aromatic,
                           charge=atom.charge)
        for bond in self.bonds:
            graph.add_edge(bond.u, bond.v, order=bond.order)
        return graph

    def is_connected(self) -> bool:
        if not self.atoms:
            return False
        graph = self.to_graph()
        return len(bfs_tree(graph, 0)) + 1 == self.n_atoms

    def __repr__(self) -> str:
        label = self.name or self.smiles or "?"
        return (f"<Molecule {label}: {self.n_atoms} atoms, "
                f"{self.n_bonds} bonds>")
