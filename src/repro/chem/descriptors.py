"""Molecular descriptors (additive atom/fragment contributions).

These are classical cheminformatics descriptors computed directly from
the molecular graph: exact formula/weight, and additive estimates of
logP (Crippen-style atom classes) and TPSA (Ertl-style fragment
contributions, simplified).  They drive the simulated property models
in :mod:`repro.chem.properties`.
"""

from __future__ import annotations

from collections import Counter

from .elements import ELEMENTS
from .molecule import Molecule

#: Crippen-style atomic logP contributions (simplified class table).
_LOGP_CONTRIB = {
    "C_aromatic": 0.29,
    "C_aliphatic": 0.14,
    "N_aromatic": -0.25,
    "N_aliphatic": -0.60,
    "O": -0.45,
    "S": 0.25,
    "P": -0.30,
    "F": 0.22,
    "Cl": 0.65,
    "Br": 0.86,
    "I": 1.10,
    "other": 0.0,
    "H": 0.11,
}

#: Ertl-style polar-surface contributions (A^2), simplified.
_TPSA_CONTRIB = {
    ("N", 0): 12.0,   # amine-like N with H
    ("N", 1): 3.2,    # substituted N
    ("O", 0): 20.2,   # hydroxyl-like O with H
    ("O", 1): 9.2,    # ether/carbonyl O
    ("S", 1): 25.3,
    ("P", 1): 13.6,
}


def molecular_formula(mol: Molecule) -> str:
    """Hill-order molecular formula, e.g. ``C9H8O4`` for aspirin."""
    counts: Counter = Counter(atom.element for atom in mol.atoms)
    counts["H"] += mol.total_hydrogens()
    parts: list[str] = []
    for symbol in ("C", "H"):
        if counts.get(symbol):
            count = counts.pop(symbol)
            parts.append(symbol if count == 1 else f"{symbol}{count}")
    for symbol in sorted(counts):
        if counts[symbol]:
            count = counts[symbol]
            parts.append(symbol if count == 1 else f"{symbol}{count}")
    return "".join(parts)


def molecular_weight(mol: Molecule) -> float:
    """Average molecular weight in g/mol (implicit hydrogens included)."""
    weight = sum(ELEMENTS[atom.element].atomic_weight for atom in mol.atoms)
    weight += mol.total_hydrogens() * ELEMENTS["H"].atomic_weight
    return weight


def heavy_atom_count(mol: Molecule) -> int:
    """Number of non-hydrogen atoms."""
    return mol.n_atoms


def ring_count(mol: Molecule) -> int:
    """Number of independent rings (cyclomatic number)."""
    return mol.ring_count()


def h_bond_donors(mol: Molecule) -> int:
    """N-H / O-H donor count (Lipinski definition)."""
    return sum(1 for atom in mol.atoms
               if atom.element in ("N", "O")
               and mol.implicit_hydrogens(atom.index) > 0)


def h_bond_acceptors(mol: Molecule) -> int:
    """N / O acceptor count (Lipinski definition)."""
    return sum(1 for atom in mol.atoms if atom.element in ("N", "O"))


def rotatable_bonds(mol: Molecule) -> int:
    """Single, non-ring bonds between two non-terminal heavy atoms."""
    ring_atoms = mol.ring_membership()
    degree: Counter = Counter()
    for bond in mol.bonds:
        degree[bond.u] += 1
        degree[bond.v] += 1
    count = 0
    for bond in mol.bonds:
        if bond.order != 1.0:
            continue
        if bond.u in ring_atoms and bond.v in ring_atoms:
            # conservative: skip bonds fully inside ring systems
            ring_bond = True
            from ..algorithms.components import bridges
            bridge_set = {frozenset(e) for e in bridges(mol.to_graph())}
            ring_bond = frozenset((bond.u, bond.v)) not in bridge_set
            if ring_bond:
                continue
        if degree[bond.u] < 2 or degree[bond.v] < 2:
            continue
        count += 1
    return count


def logp(mol: Molecule) -> float:
    """Additive Crippen-style logP estimate."""
    total = 0.0
    for atom in mol.atoms:
        if atom.element == "C":
            key = "C_aromatic" if atom.aromatic else "C_aliphatic"
        elif atom.element == "N":
            key = "N_aromatic" if atom.aromatic else "N_aliphatic"
        elif atom.element in _LOGP_CONTRIB:
            key = atom.element
        else:
            key = "other"
        total += _LOGP_CONTRIB[key]
    total += mol.total_hydrogens() * _LOGP_CONTRIB["H"]
    return total


def tpsa(mol: Molecule) -> float:
    """Topological polar surface area estimate (A^2)."""
    total = 0.0
    for atom in mol.atoms:
        if atom.element not in ("N", "O", "S", "P"):
            continue
        has_h = 0 if mol.implicit_hydrogens(atom.index) > 0 else 1
        key = (atom.element, has_h)
        if key in _TPSA_CONTRIB:
            total += _TPSA_CONTRIB[key]
        elif (atom.element, 1) in _TPSA_CONTRIB:
            total += _TPSA_CONTRIB[(atom.element, 1)]
    return total


def descriptor_profile(mol: Molecule) -> dict[str, float | int | str]:
    """Every descriptor in one dict (the ``describe_molecule`` API)."""
    return {
        "formula": molecular_formula(mol),
        "molecular_weight": round(molecular_weight(mol), 3),
        "heavy_atoms": heavy_atom_count(mol),
        "rings": ring_count(mol),
        "h_bond_donors": h_bond_donors(mol),
        "h_bond_acceptors": h_bond_acceptors(mol),
        "rotatable_bonds": rotatable_bonds(mol),
        "logp": round(logp(mol), 3),
        "tpsa": round(tpsa(mol), 2),
    }
