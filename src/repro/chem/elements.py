"""A periodic-table subset sufficient for organic SMILES."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ElementInfo:
    """Static data for one element."""

    symbol: str
    atomic_number: int
    atomic_weight: float
    #: Default valence used for implicit-hydrogen counting.
    valence: int
    #: Whether the element may appear lowercase (aromatic) in SMILES.
    aromatic_ok: bool = False
    #: Electronegativity (Pauling), used by descriptor heuristics.
    electronegativity: float = 0.0


ELEMENTS: dict[str, ElementInfo] = {
    "H": ElementInfo("H", 1, 1.008, 1, False, 2.20),
    "B": ElementInfo("B", 5, 10.811, 3, True, 2.04),
    "C": ElementInfo("C", 6, 12.011, 4, True, 2.55),
    "N": ElementInfo("N", 7, 14.007, 3, True, 3.04),
    "O": ElementInfo("O", 8, 15.999, 2, True, 3.44),
    "F": ElementInfo("F", 9, 18.998, 1, False, 3.98),
    "Na": ElementInfo("Na", 11, 22.990, 1, False, 0.93),
    "Mg": ElementInfo("Mg", 12, 24.305, 2, False, 1.31),
    "Si": ElementInfo("Si", 14, 28.086, 4, False, 1.90),
    "P": ElementInfo("P", 15, 30.974, 3, True, 2.19),
    "S": ElementInfo("S", 16, 32.065, 2, True, 2.58),
    "Cl": ElementInfo("Cl", 17, 35.453, 1, False, 3.16),
    "K": ElementInfo("K", 19, 39.098, 1, False, 0.82),
    "Ca": ElementInfo("Ca", 20, 40.078, 2, False, 1.00),
    "Fe": ElementInfo("Fe", 26, 55.845, 3, False, 1.83),
    "Zn": ElementInfo("Zn", 30, 65.38, 2, False, 1.65),
    "Br": ElementInfo("Br", 35, 79.904, 1, False, 2.96),
    "I": ElementInfo("I", 53, 126.904, 1, False, 2.66),
}

#: Two-letter symbols must be tried before one-letter ones when lexing.
TWO_LETTER_SYMBOLS = tuple(sorted(
    (s for s in ELEMENTS if len(s) == 2), key=len, reverse=True))
