"""Descriptor-based property models: solubility and toxicity.

SUBSTITUTION NOTE (see DESIGN.md): the paper invokes unnamed chemistry
software for molecule-specific APIs.  We replace those with transparent
descriptor models that exercise the same API-chain code path:

* solubility — the ESOL regression of Delaney (2004), computed from our
  own descriptor estimates;
* toxicity — structural-alert screening (nitro groups, small-halide
  load, aromatic amines, long perhalogenation) plus Lipinski-style
  physchem flags, combined into a qualitative risk class.
"""

from __future__ import annotations

from dataclasses import dataclass

from .descriptors import (
    h_bond_acceptors,
    h_bond_donors,
    heavy_atom_count,
    logp,
    molecular_weight,
    ring_count,
    rotatable_bonds,
)
from .molecule import Molecule


@dataclass(frozen=True)
class PropertyPrediction:
    """One predicted property with its drivers (for report text)."""

    name: str
    value: float | str
    unit: str
    rationale: tuple[str, ...] = ()

    def render(self) -> str:
        value = (f"{self.value:.2f}" if isinstance(self.value, float)
                 else str(self.value))
        text = f"{self.name}: {value}{(' ' + self.unit) if self.unit else ''}"
        if self.rationale:
            text += f" ({'; '.join(self.rationale)})"
        return text


def aromatic_proportion(mol: Molecule) -> float:
    """Fraction of heavy atoms that are aromatic."""
    if not mol.atoms:
        return 0.0
    return sum(atom.aromatic for atom in mol.atoms) / mol.n_atoms


def predict_solubility(mol: Molecule) -> PropertyPrediction:
    """ESOL aqueous solubility estimate: log(mol/L).

    logS = 0.16 - 0.63*clogP - 0.0062*MW + 0.066*RB - 0.74*AP
    """
    clogp = logp(mol)
    mw = molecular_weight(mol)
    rb = rotatable_bonds(mol)
    ap = aromatic_proportion(mol)
    log_s = 0.16 - 0.63 * clogp - 0.0062 * mw + 0.066 * rb - 0.74 * ap
    if log_s > -2:
        klass = "soluble"
    elif log_s > -4:
        klass = "moderately soluble"
    else:
        klass = "poorly soluble"
    return PropertyPrediction(
        name="aqueous solubility (ESOL logS)",
        value=log_s,
        unit="log mol/L",
        rationale=(f"logP={clogp:.2f}", f"MW={mw:.1f}", klass),
    )


def structural_alerts(mol: Molecule) -> list[str]:
    """Simple structural-alert screen (toxicophore heuristics)."""
    alerts: list[str] = []
    # nitro group: N bonded to two O with at least one double bond
    for atom in mol.atoms:
        if atom.element != "N":
            continue
        oxygens = [(i, order) for i, order in mol.neighbors(atom.index)
                   if mol.atoms[i].element == "O"]
        if len(oxygens) >= 2 and any(order >= 2.0 for __, order in oxygens):
            alerts.append("nitro group")
            break
    # aromatic amine: non-aromatic N attached to an aromatic atom
    for atom in mol.atoms:
        if atom.element == "N" and not atom.aromatic:
            if any(mol.atoms[i].aromatic for i, __ in
                   mol.neighbors(atom.index)):
                alerts.append("aromatic amine")
                break
    halogens = sum(1 for atom in mol.atoms
                   if atom.element in ("F", "Cl", "Br", "I"))
    if halogens >= 3:
        alerts.append(f"high halogen load ({halogens})")
    # three-membered heterocycle (epoxide/aziridine-like strain)
    graph = mol.to_graph()
    from ..algorithms.motifs import count_motifs
    if mol.n_atoms <= 60:
        tri = count_motifs(graph, 3).get("triangle", 0)
        if tri > 0:
            hetero_tri = any(
                mol.atoms[i].element in ("O", "N", "S")
                for i in mol.ring_membership())
            if hetero_tri:
                alerts.append("strained heterocycle")
    return alerts


def predict_toxicity(mol: Molecule) -> PropertyPrediction:
    """Qualitative toxicity class from alerts + physchem flags."""
    alerts = structural_alerts(mol)
    score = 2 * len(alerts)
    flags: list[str] = list(alerts)
    if molecular_weight(mol) > 500:
        score += 1
        flags.append("MW > 500")
    if logp(mol) > 5:
        score += 1
        flags.append("logP > 5")
    if h_bond_donors(mol) > 5:
        score += 1
        flags.append("HBD > 5")
    if h_bond_acceptors(mol) > 10:
        score += 1
        flags.append("HBA > 10")
    if score == 0:
        klass = "low"
    elif score <= 2:
        klass = "moderate"
    else:
        klass = "high"
    return PropertyPrediction(
        name="toxicity risk",
        value=klass,
        unit="",
        rationale=tuple(flags) or ("no structural alerts",),
    )


def lipinski_violations(mol: Molecule) -> int:
    """Number of violated Lipinski rule-of-five conditions."""
    violations = 0
    if molecular_weight(mol) > 500:
        violations += 1
    if logp(mol) > 5:
        violations += 1
    if h_bond_donors(mol) > 5:
        violations += 1
    if h_bond_acceptors(mol) > 10:
        violations += 1
    return violations


def druglikeness_summary(mol: Molecule) -> dict[str, object]:
    """Compact drug-likeness report used by the molecule report API."""
    return {
        "lipinski_violations": lipinski_violations(mol),
        "heavy_atoms": heavy_atom_count(mol),
        "rings": ring_count(mol),
        "alerts": structural_alerts(mol),
    }
