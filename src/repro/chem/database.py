"""A searchable molecule database (the scenario-2 similarity target).

The built-in library contains common, well-known compounds expressed in
the SMILES-lite dialect.  Similarity search supports two rankers:

* ``"wl"`` — Weisfeiler-Leman kernel on element-labeled graphs (fast
  pre-filter, default);
* ``"ged"`` — graph edit distance re-ranking of the WL shortlist (what
  the paper's similarity-search API reports).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ChatGraphError
from ..algorithms.ged import graph_edit_distance
from ..algorithms.similarity import (
    wl_histogram_similarity,
    wl_histograms,
)
from .molecule import Molecule
from .smiles import parse_smiles

#: name -> SMILES for the built-in library.
BUILTIN_LIBRARY: dict[str, str] = {
    "methane": "C",
    "ethanol": "CCO",
    "acetic_acid": "CC(=O)O",
    "propane": "CCC",
    "butane": "CCCC",
    "isobutane": "CC(C)C",
    "benzene": "c1ccccc1",
    "toluene": "Cc1ccccc1",
    "phenol": "Oc1ccccc1",
    "aniline": "Nc1ccccc1",
    "styrene": "C=Cc1ccccc1",
    "naphthalene": "c1ccc2ccccc2c1",
    "pyridine": "c1ccncc1",
    "pyrrole": "c1cc[nH]c1",
    "furan": "c1ccoc1",
    "thiophene": "c1ccsc1",
    "imidazole": "c1c[nH]cn1",
    "aspirin": "CC(=O)Oc1ccccc1C(=O)O",
    "paracetamol": "CC(=O)Nc1ccc(O)cc1",
    "ibuprofen": "CC(C)Cc1ccc(cc1)C(C)C(=O)O",
    "salicylic_acid": "OC(=O)c1ccccc1O",
    "benzoic_acid": "OC(=O)c1ccccc1",
    "caffeine": "Cn1cnc2c1c(=O)n(C)c(=O)n2C",
    "theobromine": "Cn1cnc2c1c(=O)[nH]c(=O)n2C",
    "nicotine": "CN1CCCC1c1cccnc1",
    "glucose": "OCC1OC(O)C(O)C(O)C1O",
    "glycine": "NCC(=O)O",
    "alanine": "CC(N)C(=O)O",
    "urea": "NC(=O)N",
    "acetone": "CC(=O)C",
    "formaldehyde": "C=O",
    "chloroform": "ClC(Cl)Cl",
    "ddt_like": "Clc1ccc(cc1)C(c1ccc(Cl)cc1)C(Cl)(Cl)Cl",
    "nitrobenzene": "c1ccccc1N(=O)=O",
    "tnt_like": "Cc1c(N(=O)=O)cc(N(=O)=O)cc1N(=O)=O",
    "cyclohexane": "C1CCCCC1",
    "cyclohexanol": "OC1CCCCC1",
    "adrenaline": "CNCC(O)c1ccc(O)c(O)c1",
    "dopamine": "NCCc1ccc(O)c(O)c1",
    "serotonin": "NCCc1c[nH]c2ccc(O)cc12",
    "citric_acid": "OC(=O)CC(O)(C(=O)O)CC(=O)O",
    "oxalic_acid": "OC(=O)C(=O)O",
}


@dataclass(frozen=True)
class SimilarityHit:
    """One similarity-search result."""

    name: str
    smiles: str
    #: Similarity in [0, 1]; for GED ranking, ``1 / (1 + distance)``.
    score: float
    method: str


class MoleculeDatabase:
    """A name-indexed molecule collection with similarity search.

    Example::

        db = MoleculeDatabase.builtin()
        hits = db.similarity_search(parse_smiles("Cc1ccccc1O"), k=2)
    """

    def __init__(self) -> None:
        self._molecules: dict[str, Molecule] = {}
        # WL histograms are pure functions of each molecule; caching them
        # makes repeated similarity searches O(1) per database entry
        self._wl_cache: dict[str, object] = {}
        # canonical-SMILES -> name, rebuilt lazily when entries change
        self._canonical_cache: dict[str, str] = {}

    @classmethod
    def builtin(cls) -> "MoleculeDatabase":
        """Database seeded with :data:`BUILTIN_LIBRARY`."""
        db = cls()
        for name, smiles in BUILTIN_LIBRARY.items():
            db.add(name, smiles)
        return db

    def add(self, name: str, smiles: str) -> Molecule:
        if name in self._molecules:
            raise ChatGraphError(f"molecule {name!r} already in database")
        mol = parse_smiles(smiles, name=name)
        self._molecules[name] = mol
        return mol

    def add_molecule(self, mol: Molecule, name: str | None = None
                     ) -> Molecule:
        """Add an already-built molecule (e.g. a generated one)."""
        key = name or mol.name
        if not key:
            raise ChatGraphError("molecule needs a name")
        if key in self._molecules:
            raise ChatGraphError(f"molecule {key!r} already in database")
        self._molecules[key] = mol
        return mol

    def get(self, name: str) -> Molecule:
        try:
            return self._molecules[name]
        except KeyError:
            raise ChatGraphError(f"no molecule named {name!r}") from None

    def names(self) -> list[str]:
        return list(self._molecules)

    def __len__(self) -> int:
        return len(self._molecules)

    def __contains__(self, name: object) -> bool:
        return name in self._molecules

    def lookup(self, query: Molecule) -> str | None:
        """Exact-identity lookup by canonical SMILES.

        Returns the name of the database molecule identical to ``query``
        (after aromaticity perception), or None.  Canonical forms are
        computed lazily and cached.
        """
        from .canonical import canonical_smiles, perceive_aromaticity
        key = canonical_smiles(perceive_aromaticity(query))
        if len(self._canonical_cache) != len(self._molecules):
            self._canonical_cache = {
                canonical_smiles(perceive_aromaticity(mol)): name
                for name, mol in self._molecules.items()}
        return self._canonical_cache.get(key)

    def similarity_search(self, query: Molecule, k: int = 2,
                          method: str = "wl",
                          shortlist: int = 10) -> list[SimilarityHit]:
        """Top-``k`` most similar molecules to ``query``.

        ``method="wl"`` ranks by the WL kernel; ``method="ged"`` reranks
        the top-``shortlist`` WL candidates by graph edit distance.
        """
        if method not in ("wl", "ged"):
            raise ChatGraphError(f"unknown similarity method {method!r}")
        query_graph = query.to_graph()
        query_hist = wl_histograms(query_graph)
        scored: list[tuple[float, str]] = []
        for name, mol in self._molecules.items():
            hist = self._wl_cache.get(name)
            if hist is None:
                hist = wl_histograms(mol.to_graph())
                self._wl_cache[name] = hist
            sim = wl_histogram_similarity(query_hist, hist)
            scored.append((sim, name))
        scored.sort(key=lambda pair: (-pair[0], pair[1]))
        if method == "wl":
            return [SimilarityHit(name, self._molecules[name].smiles,
                                  round(sim, 6), "wl")
                    for sim, name in scored[:k]]
        reranked: list[tuple[float, str]] = []
        for __, name in scored[:max(shortlist, k)]:
            ged = graph_edit_distance(query_graph,
                                      self._molecules[name].to_graph())
            reranked.append((1.0 / (1.0 + ged.cost), name))
        reranked.sort(key=lambda pair: (-pair[0], pair[1]))
        return [SimilarityHit(name, self._molecules[name].smiles,
                              round(score, 6), "ged")
                for score, name in reranked[:k]]
