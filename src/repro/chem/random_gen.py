"""Random drug-like molecule generation (benchmark workloads).

The comparison benchmark (E3) sweeps database sizes far beyond the
built-in library; :func:`random_molecule` produces valid valence-
respecting molecules: a random heavy-atom tree plus a few ring-closing
bonds, with element frequencies loosely matching organic molecules.
"""

from __future__ import annotations

import random

from .elements import ELEMENTS
from .molecule import Molecule

#: (element, weight) sampling table for heavy atoms.
_ELEMENT_WEIGHTS = (("C", 70), ("N", 10), ("O", 12), ("S", 3),
                    ("F", 2), ("Cl", 2), ("P", 1))


def random_molecule(n_atoms: int = 12, n_rings: int = 1,
                    seed: int | random.Random = 0,
                    name: str = "") -> Molecule:
    """Generate a random connected molecule with ``n_atoms`` heavy atoms.

    The molecule is built as a random tree (attachment points chosen
    among atoms with free valence), then up to ``n_rings`` ring-closing
    single bonds join non-adjacent atoms that still have free valence.
    """
    if n_atoms < 1:
        raise ValueError("n_atoms must be >= 1")
    rng = seed if isinstance(seed, random.Random) else random.Random(seed)
    elements = [e for e, w in _ELEMENT_WEIGHTS for __ in range(w)]

    mol = Molecule(name=name)
    used_valence: dict[int, float] = {}

    def free_valence(index: int) -> float:
        return ELEMENTS[mol.atoms[index].element].valence \
            - used_valence.get(index, 0.0)

    first = "C" if n_atoms > 1 else rng.choice(elements)
    mol.add_atom(first)
    used_valence[0] = 0.0
    for __ in range(n_atoms - 1):
        anchors = [i for i in range(mol.n_atoms) if free_valence(i) >= 1]
        if not anchors:
            break
        anchor = rng.choice(anchors)
        element = rng.choice(elements)
        # occasional double bonds where both sides can afford them
        order = 2.0 if (ELEMENTS[element].valence >= 2
                        and free_valence(anchor) >= 2
                        and rng.random() < 0.12) else 1.0
        new = mol.add_atom(element)
        mol.add_bond(anchor, new, order)
        used_valence[anchor] = used_valence.get(anchor, 0.0) + order
        used_valence[new] = order

    adjacent = {frozenset((b.u, b.v)) for b in mol.bonds}
    for __ in range(n_rings):
        candidates = [i for i in range(mol.n_atoms) if free_valence(i) >= 1]
        rng.shuffle(candidates)
        closed = False
        for i, u in enumerate(candidates):
            for v in candidates[i + 1:]:
                if frozenset((u, v)) not in adjacent:
                    mol.add_bond(u, v, 1.0)
                    adjacent.add(frozenset((u, v)))
                    used_valence[u] = used_valence.get(u, 0.0) + 1.0
                    used_valence[v] = used_valence.get(v, 0.0) + 1.0
                    closed = True
                    break
            if closed:
                break
    return mol
