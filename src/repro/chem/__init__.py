"""Chemistry substrate (the molecule side of the paper's demos).

The paper's molecule scenarios (understanding, similarity search,
toxicity/solubility APIs) need actual molecules.  This package provides
a self-contained SMILES-lite toolkit: parser/writer, a
:class:`Molecule` graph type, additive descriptors (weight, logP, TPSA,
H-bond donors/acceptors), descriptor-based property models (documented
simulations of "chemistry software" predictions), and a searchable
:class:`MoleculeDatabase` seeded with a built-in library of common
compounds.
"""

from .elements import ELEMENTS, ElementInfo
from .smiles import parse_smiles, write_smiles
from .molecule import Atom, Bond, Molecule
from .descriptors import (
    descriptor_profile,
    h_bond_acceptors,
    h_bond_donors,
    heavy_atom_count,
    logp,
    molecular_formula,
    molecular_weight,
    ring_count,
    rotatable_bonds,
    tpsa,
)
from .properties import (
    PropertyPrediction,
    predict_solubility,
    predict_toxicity,
    structural_alerts,
)
from .canonical import canonical_ranks, canonical_smiles, perceive_aromaticity
from .database import BUILTIN_LIBRARY, MoleculeDatabase
from .random_gen import random_molecule

__all__ = [
    "ELEMENTS",
    "ElementInfo",
    "parse_smiles",
    "write_smiles",
    "Atom",
    "Bond",
    "Molecule",
    "descriptor_profile",
    "h_bond_acceptors",
    "h_bond_donors",
    "heavy_atom_count",
    "logp",
    "molecular_formula",
    "molecular_weight",
    "ring_count",
    "rotatable_bonds",
    "tpsa",
    "PropertyPrediction",
    "predict_solubility",
    "predict_toxicity",
    "structural_alerts",
    "BUILTIN_LIBRARY",
    "MoleculeDatabase",
    "random_molecule",
    "canonical_ranks",
    "canonical_smiles",
    "perceive_aromaticity",
]
