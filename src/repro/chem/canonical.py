"""Canonical atom ranking, canonical SMILES and aromaticity perception.

Canonicalization follows the classical Morgan scheme: atoms start from a
local invariant (element, degree, charge, hydrogen count, aromatic
flag), neighborhoods are refined iteratively until the partition
stabilizes, and remaining ties are broken deterministically (lowest
canonical candidate first) with re-refinement.  The canonical SMILES is
then written by a DFS that starts at the minimum-rank atom and visits
neighbors in rank order — so any two atom orderings of the same molecule
produce the same string.

Aromaticity perception upgrades Kekulé structures (alternating single/
double bonds, e.g. ``C1=CC=CC=C1``) to aromatic form using a simplified
Hückel rule on small rings.
"""

from __future__ import annotations

import hashlib

from ..errors import SmilesError
from ..sequencer.motifs import find_rings
from .molecule import Bond, Molecule
from .smiles import write_smiles


def _digest(*parts: object) -> str:
    text = "|".join(str(p) for p in parts)
    return hashlib.md5(text.encode("utf-8")).hexdigest()[:16]


def canonical_ranks(mol: Molecule) -> list[int]:
    """Canonical rank (0 = first) of each atom, invariant to input order."""
    n = mol.n_atoms
    if n == 0:
        return []
    neighbors = [sorted(i for i, __ in mol.neighbors(a))
                 for a in range(n)]
    bond_orders = {}
    for bond in mol.bonds:
        bond_orders[(bond.u, bond.v)] = bond.order
        bond_orders[(bond.v, bond.u)] = bond.order

    def initial_invariant(index: int) -> str:
        atom = mol.atoms[index]
        return _digest(atom.element, len(neighbors[index]), atom.charge,
                       mol.implicit_hydrogens(index), atom.aromatic)

    invariants = [initial_invariant(a) for a in range(n)]

    def refine(values: list[str]) -> list[str]:
        while True:
            refined = [
                _digest(values[a], sorted(
                    (values[b], bond_orders[(a, b)])
                    for b in neighbors[a]))
                for a in range(n)]
            if len(set(refined)) == len(set(values)):
                return refined
            values = refined

    invariants = refine(invariants)
    # tie breaking: repeatedly single out the smallest member of the
    # first non-singleton class (by current invariant, then by a stable
    # secondary refinement), then re-refine
    while len(set(invariants)) < n:
        classes: dict[str, list[int]] = {}
        for a, inv in enumerate(invariants):
            classes.setdefault(inv, []).append(a)
        target = min((inv for inv, members in classes.items()
                      if len(members) > 1))
        chosen = min(classes[target])
        invariants[chosen] = _digest(invariants[chosen], "tie-break")
        invariants = refine(invariants)
    order = sorted(range(n), key=lambda a: invariants[a])
    ranks = [0] * n
    for rank, a in enumerate(order):
        ranks[a] = rank
    return ranks


def renumber(mol: Molecule, ranks: list[int]) -> Molecule:
    """A copy of ``mol`` with atoms reordered by ``ranks``."""
    if len(ranks) != mol.n_atoms:
        raise SmilesError(mol.smiles, "rank list does not match atoms")
    position = sorted(range(mol.n_atoms), key=lambda a: ranks[a])
    new_index = {old: new for new, old in enumerate(position)}
    out = Molecule(name=mol.name, smiles=mol.smiles)
    for old in position:
        atom = mol.atoms[old]
        out.add_atom(atom.element, aromatic=atom.aromatic,
                     charge=atom.charge, explicit_h=atom.explicit_h)
    for bond in sorted(mol.bonds,
                       key=lambda b: tuple(sorted((new_index[b.u],
                                                   new_index[b.v])))):
        out.add_bond(new_index[bond.u], new_index[bond.v], bond.order)
    return out


def canonical_smiles(mol: Molecule) -> str:
    """Canonical SMILES: identical for any atom ordering of the molecule.

    Example::

        a = parse_smiles("OCC")
        b = parse_smiles("CCO")
        assert canonical_smiles(a) == canonical_smiles(b)
    """
    canon = renumber(mol, canonical_ranks(mol))
    return write_smiles(canon)


# ---------------------------------------------------------------------------
# aromaticity perception
# ---------------------------------------------------------------------------

#: Per-atom pi-electron contribution inside a candidate aromatic ring.
def _pi_electrons(mol: Molecule, index: int, ring: frozenset[int]) -> int | None:
    atom = mol.atoms[index]
    ring_bonds = [order for i, order in mol.neighbors(index) if i in ring]
    exo_double = any(order >= 2.0 for i, order in mol.neighbors(index)
                     if i not in ring)
    has_ring_double = any(order >= 1.5 for order in ring_bonds)
    if atom.element == "C":
        if has_ring_double:
            return 1
        if exo_double:
            return 0  # exocyclic C=O carbon contributes an empty orbital
        return None  # sp3 carbon: not aromatic
    if atom.element in ("N", "P"):
        return 1 if has_ring_double else 2  # pyridine-like vs pyrrole-like
    if atom.element in ("O", "S"):
        return None if has_ring_double else 2  # furan-like lone pair
    return None


def perceive_aromaticity(mol: Molecule) -> Molecule:
    """Return a copy with Hückel-aromatic rings marked aromatic.

    Candidate rings are 5- and 6-membered cycles; a ring is aromatic if
    every member can contribute to the pi system and the electron count
    is 4n+2.  Ring bonds of aromatic rings become order 1.5 and member
    atoms get ``aromatic=True`` — so Kekulé benzene ``C1=CC=CC=C1``
    canonicalizes identically to ``c1ccccc1``.
    """
    out = Molecule(name=mol.name, smiles=mol.smiles)
    for atom in mol.atoms:
        out.add_atom(atom.element, aromatic=atom.aromatic,
                     charge=atom.charge, explicit_h=atom.explicit_h)
    aromatic_bonds: set[frozenset[int]] = set()
    graph = mol.to_graph()
    for ring in find_rings(graph, max_size=6):
        if len(ring) not in (5, 6):
            continue
        electrons = 0
        ok = True
        for index in ring:
            contribution = _pi_electrons(mol, index, ring)
            if contribution is None:
                ok = False
                break
            electrons += contribution
        if not ok or electrons % 4 != 2:
            continue
        for index in ring:
            out.atoms[index].aromatic = True
        for bond in mol.bonds:
            if bond.u in ring and bond.v in ring:
                aromatic_bonds.add(frozenset((bond.u, bond.v)))
    for bond in mol.bonds:
        order = 1.5 if frozenset((bond.u, bond.v)) in aromatic_bonds \
            else bond.order
        out.add_bond(bond.u, bond.v, order)
    return out
