"""repro — a full offline reproduction of ChatGraph (ICDE 2024).

ChatGraph lets users interact with graphs through natural language: a
prompt (text + graph) is answered by retrieving relevant analysis APIs,
sequentializing the graph for a language model, generating an API chain,
and executing it under user confirmation with progress monitoring.

Quick start::

    from repro import ChatGraph
    from repro.graphs import social_network

    cg = ChatGraph.pretrained()
    print(cg.ask("Write a brief report for G",
                 graph=social_network(50, 3)).answer)

Package map (one subpackage per subsystem; see DESIGN.md):

- :mod:`repro.core` — the ChatGraph framework and the four scenarios
- :mod:`repro.graphs` / :mod:`repro.algorithms` — graph substrate
- :mod:`repro.embedding` / :mod:`repro.ann` — retrieval substrate (tau-MG)
- :mod:`repro.sequencer` — graph sequentializer
- :mod:`repro.apis` — the analysis API catalog, chains, executor
- :mod:`repro.llm` — the (simulated) graph-aware language model
- :mod:`repro.finetune` — API chain-oriented finetuning
- :mod:`repro.retrieval` — API retrieval module
- :mod:`repro.kb` — knowledge-graph inference (cleaning)
- :mod:`repro.chem` — molecule substrate
- :mod:`repro.serve` — concurrent service runtime (workers, admission
  control, caches, sessions, metrics)
- :mod:`repro.obs` — observability (hierarchical tracing, metrics
  registry, exporters, profiling hooks)
- :mod:`repro.store` — durable multi-graph catalog (append-only edit
  log, deterministic snapshots, incremental ANN index maintenance)
"""

from .config import (
    ChatGraphConfig,
    FinetuneConfig,
    LLMConfig,
    ObsConfig,
    RetrievalConfig,
    SequencerConfig,
    ServeConfig,
)
from .core.chatgraph import ChatGraph, ChatResponse
from .core.session import ChatSession
from .errors import ChatGraphError
from .serve.engine import ChatGraphServer, ServeRequest, ServeResponse
from .store.catalog import GraphCatalog

__version__ = "1.0.0"

__all__ = [
    "ChatGraph",
    "ChatGraphConfig",
    "ChatGraphServer",
    "ChatResponse",
    "ChatSession",
    "ChatGraphError",
    "ObsConfig",
    "RetrievalConfig",
    "SequencerConfig",
    "ServeConfig",
    "ServeRequest",
    "ServeResponse",
    "FinetuneConfig",
    "GraphCatalog",
    "LLMConfig",
    "__version__",
]
