"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ChatGraphError`
so that callers can catch a single type at the framework boundary.
"""

from __future__ import annotations


class ChatGraphError(Exception):
    """Base class for all errors raised by this library."""


class GraphError(ChatGraphError):
    """Invalid graph structure or graph operation."""


class NodeNotFoundError(GraphError):
    """A referenced node does not exist in the graph."""

    def __init__(self, node: object) -> None:
        super().__init__(f"node {node!r} not in graph")
        self.node = node


class EdgeNotFoundError(GraphError):
    """A referenced edge does not exist in the graph."""

    def __init__(self, u: object, v: object) -> None:
        super().__init__(f"edge ({u!r}, {v!r}) not in graph")
        self.u = u
        self.v = v


class GraphIOError(GraphError):
    """A graph could not be parsed or serialized."""


class EmbeddingError(ChatGraphError):
    """Text could not be embedded."""


class IndexError_(ChatGraphError):
    """ANN index construction or query failure."""


class SequencerError(ChatGraphError):
    """Graph sequentialization failure."""


class APIError(ChatGraphError):
    """API registry / catalog error."""


class UnknownAPIError(APIError):
    """A chain references an API name that is not registered."""

    def __init__(self, name: str) -> None:
        super().__init__(f"unknown API {name!r}")
        self.name = name


class ChainError(ChatGraphError):
    """An API chain is structurally invalid."""


class ChainExecutionError(ChatGraphError):
    """Executing an API chain failed at some step."""

    def __init__(self, step: str, cause: Exception) -> None:
        super().__init__(f"chain step {step!r} failed: {cause}")
        self.step = step
        self.cause = cause


class StepTimeoutError(ChatGraphError):
    """A chain step exceeded its :class:`StepPolicy` wall-clock timeout."""

    def __init__(self, api_name: str, timeout_seconds: float) -> None:
        super().__init__(
            f"API {api_name!r} did not finish within "
            f"{timeout_seconds:.3f}s")
        self.api_name = api_name
        self.timeout_seconds = timeout_seconds


class CircuitOpenError(ChatGraphError):
    """An API's circuit breaker is open; the call was not attempted."""

    def __init__(self, api_name: str, retry_after: float = 0.0) -> None:
        super().__init__(
            f"circuit breaker for API {api_name!r} is open; "
            f"retry in {retry_after:.3f}s")
        self.api_name = api_name
        self.retry_after = retry_after


class FaultInjectionError(ChatGraphError):
    """A deliberately injected fault (see :mod:`repro.testing.faults`)."""

    def __init__(self, api_name: str, call_index: int,
                 reason: str = "injected fault") -> None:
        super().__init__(f"{reason} in API {api_name!r} "
                         f"(call #{call_index})")
        self.api_name = api_name
        self.call_index = call_index


class ModelError(ChatGraphError):
    """Language-model training or decoding failure."""


class FinetuneError(ChatGraphError):
    """Finetuning dataset or training failure."""


class SmilesError(ChatGraphError):
    """A SMILES string could not be parsed."""

    def __init__(self, smiles: str, reason: str) -> None:
        super().__init__(f"cannot parse SMILES {smiles!r}: {reason}")
        self.smiles = smiles
        self.reason = reason


class KnowledgeBaseError(ChatGraphError):
    """Knowledge-graph store or inference failure."""


class SessionError(ChatGraphError):
    """Chat-session protocol violation (e.g. confirming with no pending chain)."""


class ServeError(ChatGraphError):
    """Service-runtime failure (see :mod:`repro.serve`)."""


class BackpressureError(ServeError):
    """The admission queue is full; retry after ``retry_after`` seconds."""

    def __init__(self, retry_after: float, depth: int) -> None:
        super().__init__(
            f"admission queue full ({depth} requests queued); "
            f"retry in {retry_after:.3f}s")
        self.retry_after = retry_after
        self.depth = depth


class RateLimitError(ServeError):
    """A client exceeded its token-bucket rate limit."""

    def __init__(self, client_id: str, retry_after: float) -> None:
        super().__init__(
            f"client {client_id!r} rate-limited; "
            f"retry in {retry_after:.3f}s")
        self.client_id = client_id
        self.retry_after = retry_after


class ConfigError(ChatGraphError):
    """Invalid configuration value."""


class StoreError(ChatGraphError):
    """Durable graph-store failure (see :mod:`repro.store`)."""


class StoreCorruptionError(StoreError):
    """An on-disk store file failed a framing or checksum check."""
