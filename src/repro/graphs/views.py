"""Derived subgraphs: induced subgraphs and ego networks."""

from __future__ import annotations

from collections import deque
from typing import Iterable

from ..errors import NodeNotFoundError
from .graph import DiGraph, Graph, Node


def induced_subgraph(graph: Graph, nodes: Iterable[Node]) -> Graph:
    """Return the subgraph induced by ``nodes`` (alias of ``graph.subgraph``)."""
    return graph.subgraph(nodes)


def ego_graph(graph: Graph, center: Node, radius: int = 1) -> Graph:
    """Return the subgraph within ``radius`` hops of ``center``.

    For directed graphs, hops follow successor arcs (out-edges).
    """
    if center not in graph:
        raise NodeNotFoundError(center)
    if radius < 0:
        raise ValueError("radius must be >= 0")
    reached = {center: 0}
    frontier = deque([center])
    step = (graph.successors if isinstance(graph, DiGraph)
            else graph.neighbors)
    while frontier:
        node = frontier.popleft()
        depth = reached[node]
        if depth == radius:
            continue
        for neighbor in step(node):
            if neighbor not in reached:
                reached[neighbor] = depth + 1
                frontier.append(neighbor)
    return graph.subgraph(reached)
