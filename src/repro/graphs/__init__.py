"""Property-graph substrate.

A small, self-contained graph library: :class:`Graph` (undirected) and
:class:`DiGraph` (directed) store node and edge attributes, and the
sibling modules provide views, I/O, generators and summary statistics.
Everything downstream of ChatGraph (algorithms, sequentializer, APIs)
operates on these types.
"""

from .graph import DiGraph, Graph
from .generators import (
    ba_graph,
    complete_graph,
    cycle_graph,
    er_graph,
    grid_graph,
    knowledge_graph,
    molecule_like_graph,
    path_graph,
    planted_partition_graph,
    social_network,
    star_graph,
)
from .io import (
    fingerprint,
    from_adjacency,
    from_dict,
    from_edgelist,
    parse_edgelist_text,
    read_edgelist,
    to_adjacency,
    to_dict,
    to_edgelist,
    write_edgelist,
)
from .graphml import read_graphml, write_graphml
from .properties import GraphSummary, degree_histogram, density, summarize
from .views import ego_graph, induced_subgraph

__all__ = [
    "Graph",
    "DiGraph",
    "ego_graph",
    "fingerprint",
    "induced_subgraph",
    "from_adjacency",
    "from_dict",
    "from_edgelist",
    "parse_edgelist_text",
    "read_edgelist",
    "to_adjacency",
    "to_dict",
    "to_edgelist",
    "write_edgelist",
    "read_graphml",
    "write_graphml",
    "GraphSummary",
    "degree_histogram",
    "density",
    "summarize",
    "ba_graph",
    "complete_graph",
    "cycle_graph",
    "er_graph",
    "grid_graph",
    "knowledge_graph",
    "molecule_like_graph",
    "path_graph",
    "planted_partition_graph",
    "social_network",
    "star_graph",
]
