"""Synthetic graph generators.

These stand in for the unnamed "real-world graphs" of the paper's demo:
social networks with planted communities, knowledge graphs with typed
relations, and molecule-like graphs with ring/chain motifs.  All
generators are deterministic given ``seed``.
"""

from __future__ import annotations

import itertools
import random
from typing import Sequence

from .graph import DiGraph, Graph

#: Node labels used by :func:`knowledge_graph`.
KG_ENTITY_TYPES = ("person", "organization", "city", "product")
#: Relation vocabulary used by :func:`knowledge_graph`.
KG_RELATIONS = ("works_at", "located_in", "founded", "produces",
                "born_in", "ceo_of")


def path_graph(n: int) -> Graph:
    """A path ``0 - 1 - ... - (n-1)``."""
    graph = Graph(name=f"path_{n}")
    graph.add_nodes(range(n))
    graph.add_edges((i, i + 1) for i in range(n - 1))
    return graph


def cycle_graph(n: int) -> Graph:
    """A cycle on ``n`` nodes (``n >= 3``)."""
    if n < 3:
        raise ValueError("cycle needs at least 3 nodes")
    graph = path_graph(n)
    graph.name = f"cycle_{n}"
    graph.add_edge(n - 1, 0)
    return graph


def complete_graph(n: int) -> Graph:
    """The complete graph ``K_n``."""
    graph = Graph(name=f"K{n}")
    graph.add_nodes(range(n))
    graph.add_edges(itertools.combinations(range(n), 2))
    return graph


def star_graph(n: int) -> Graph:
    """A star with center ``0`` and ``n`` leaves."""
    graph = Graph(name=f"star_{n}")
    graph.add_node(0)
    graph.add_edges((0, i) for i in range(1, n + 1))
    return graph


def grid_graph(rows: int, cols: int) -> Graph:
    """A ``rows x cols`` grid; nodes are ``(r, c)`` tuples."""
    graph = Graph(name=f"grid_{rows}x{cols}")
    for r in range(rows):
        for c in range(cols):
            graph.add_node((r, c))
            if r > 0:
                graph.add_edge((r - 1, c), (r, c))
            if c > 0:
                graph.add_edge((r, c - 1), (r, c))
    return graph


def er_graph(n: int, p: float, seed: int = 0) -> Graph:
    """Erdos-Renyi ``G(n, p)`` random graph."""
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must be in [0, 1]")
    rng = random.Random(seed)
    graph = Graph(name=f"er_{n}_{p}")
    graph.add_nodes(range(n))
    for u, v in itertools.combinations(range(n), 2):
        if rng.random() < p:
            graph.add_edge(u, v)
    return graph


def ba_graph(n: int, m: int, seed: int = 0) -> Graph:
    """Barabasi-Albert preferential attachment graph.

    Starts from a clique on ``m + 1`` nodes; each new node attaches to
    ``m`` existing nodes chosen proportionally to degree.
    """
    if m < 1 or n < m + 1:
        raise ValueError("need n >= m + 1 >= 2")
    rng = random.Random(seed)
    graph = complete_graph(m + 1)
    graph.name = f"ba_{n}_{m}"
    # repeated-nodes trick: sampling uniformly from this list is
    # equivalent to degree-proportional sampling.
    repeated: list[int] = []
    for u, v in graph.edges():
        repeated.extend((u, v))
    for new in range(m + 1, n):
        targets: set[int] = set()
        while len(targets) < m:
            targets.add(rng.choice(repeated))
        for t in targets:
            graph.add_edge(new, t)
            repeated.extend((new, t))
    return graph


def planted_partition_graph(communities: Sequence[int], p_in: float,
                            p_out: float, seed: int = 0) -> Graph:
    """Stochastic block model with the given community sizes.

    Every node gets a ground-truth ``community`` attribute.
    """
    for p in (p_in, p_out):
        if not 0.0 <= p <= 1.0:
            raise ValueError("probabilities must be in [0, 1]")
    rng = random.Random(seed)
    graph = Graph(name="planted_partition")
    node = 0
    membership: list[int] = []
    for cid, size in enumerate(communities):
        for _ in range(size):
            graph.add_node(node, community=cid)
            membership.append(cid)
            node += 1
    n = node
    for u, v in itertools.combinations(range(n), 2):
        p = p_in if membership[u] == membership[v] else p_out
        if rng.random() < p:
            graph.add_edge(u, v)
    return graph


def social_network(n: int = 60, n_communities: int = 3,
                   p_in: float = 0.25, p_out: float = 0.01,
                   seed: int = 0) -> Graph:
    """A social network with planted communities and person attributes.

    Nodes get ``kind="person"``, a ``name`` and their ground-truth
    ``community``; the graph gets ``kind="social"`` in its name-space by
    convention (type prediction uses structure, not this hint).
    """
    if n_communities < 1 or n < n_communities:
        raise ValueError("need n >= n_communities >= 1")
    base = n // n_communities
    sizes = [base] * n_communities
    sizes[-1] += n - base * n_communities
    graph = planted_partition_graph(sizes, p_in, p_out, seed=seed)
    graph.name = f"social_{n}"
    for node in graph.nodes():
        graph.set_node_attr(node, "kind", "person")
        graph.set_node_attr(node, "name", f"user_{node}")
    return graph


def knowledge_graph(n_entities: int = 40, n_facts: int = 120,
                    seed: int = 0) -> DiGraph:
    """A typed knowledge graph of entities and relation-labelled arcs.

    Relations follow a fixed type signature (e.g. ``works_at`` connects a
    person to an organization), which gives the cleaning scenario
    learnable regularities.  Each node has ``kind="entity"`` and an
    ``entity_type``; each arc has a ``relation`` label.
    """
    rng = random.Random(seed)
    graph = DiGraph(name=f"kg_{n_entities}")
    by_type: dict[str, list[str]] = {t: [] for t in KG_ENTITY_TYPES}
    for i in range(n_entities):
        etype = KG_ENTITY_TYPES[i % len(KG_ENTITY_TYPES)]
        node = f"{etype}_{i}"
        graph.add_node(node, kind="entity", entity_type=etype)
        by_type[etype].append(node)
    signatures = {
        "works_at": ("person", "organization"),
        "located_in": ("organization", "city"),
        "founded": ("person", "organization"),
        "produces": ("organization", "product"),
        "born_in": ("person", "city"),
        "ceo_of": ("person", "organization"),
    }
    added = 0
    attempts = 0
    while added < n_facts and attempts < n_facts * 20:
        attempts += 1
        relation = rng.choice(KG_RELATIONS)
        src_type, dst_type = signatures[relation]
        src = rng.choice(by_type[src_type])
        dst = rng.choice(by_type[dst_type])
        if src != dst and not graph.has_edge(src, dst):
            graph.add_edge(src, dst, relation=relation)
            added += 1
    return graph


def molecule_like_graph(n_rings: int = 2, chain_length: int = 3,
                        seed: int = 0) -> Graph:
    """A molecule-shaped graph: fused hexagonal rings plus a chain.

    Nodes carry an ``element`` attribute (mostly carbon with occasional
    heteroatoms) and ``kind="atom"``; edges carry a bond ``order``.
    This is a structural stand-in where a full parsed molecule
    (:mod:`repro.chem`) is not required.
    """
    rng = random.Random(seed)
    graph = Graph(name="molecule_like")
    node = 0

    def fresh(element: str) -> int:
        nonlocal node
        graph.add_node(node, kind="atom", element=element)
        node += 1
        return node - 1

    previous_ring: list[int] = []
    for _ in range(max(n_rings, 0)):
        ring = [fresh("C") for _ in range(6)]
        for i, atom in enumerate(ring):
            graph.add_edge(atom, ring[(i + 1) % 6], order=1)
        if previous_ring:
            graph.add_edge(previous_ring[3], ring[0], order=1)
        previous_ring = ring
    attach = previous_ring[2] if previous_ring else fresh("C")
    for i in range(chain_length):
        element = "O" if rng.random() < 0.2 else ("N" if rng.random() < 0.1
                                                  else "C")
        atom = fresh(element)
        graph.add_edge(attach, atom, order=1)
        attach = atom
    return graph
