"""Graph serialization: edge lists, adjacency mappings and JSON-able dicts.

These formats back the "upload a graph" slot of the chat session: users
paste an edge-list text or a JSON document, and the session parses it
into a :class:`~repro.graphs.graph.Graph`.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Iterable, Mapping

from ..errors import GraphIOError
from .graph import DiGraph, Graph, Node


def to_edgelist(graph: Graph) -> list[tuple[Node, Node]]:
    """Return the list of edges of ``graph``."""
    return list(graph.edges())


def from_edgelist(edges: Iterable[tuple[Node, Node]],
                  directed: bool = False) -> Graph:
    """Build a graph from ``(u, v)`` pairs."""
    graph: Graph = DiGraph() if directed else Graph()
    graph.add_edges(edges)
    return graph


def parse_edgelist_text(text: str, directed: bool = False) -> Graph:
    """Parse a whitespace-separated edge-list text.

    Each non-empty, non-comment (``#``) line is ``u v [key=value ...]``.
    Node tokens are kept as strings; attribute values are parsed as JSON
    scalars when possible, else kept as strings.
    """
    graph: Graph = DiGraph() if directed else Graph()
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        tokens = line.split()
        if len(tokens) == 1:
            graph.add_node(tokens[0])
            continue
        u, v, *rest = tokens
        graph.add_edge(u, v)
        # setters, not **kwargs: attribute names like "u" are legal
        for item in rest:
            key, sep, value = item.partition("=")
            if not sep:
                raise GraphIOError(
                    f"line {lineno}: expected key=value, got {item!r}")
            graph.set_edge_attr(u, v, key, _parse_scalar(value))
    return graph


def _parse_scalar(token: str) -> Any:
    try:
        return json.loads(token)
    except json.JSONDecodeError:
        return token


def read_edgelist(path: str | Path, directed: bool = False) -> Graph:
    """Read an edge-list file (see :func:`parse_edgelist_text`)."""
    with open(path, encoding="utf-8") as handle:
        return parse_edgelist_text(handle.read(), directed=directed)


def write_edgelist(graph: Graph, path: str | Path) -> None:
    """Write ``graph`` as an edge-list file with JSON-encoded attributes."""
    with open(path, "w", encoding="utf-8") as handle:
        for node in graph.nodes():
            if graph.degree(node) == 0:
                handle.write(f"{node}\n")
        for u, v in graph.edges():
            parts = [str(u), str(v)]
            for key, value in graph.edge_attrs(u, v).items():
                parts.append(f"{key}={_dump_scalar(value)}")
            handle.write(" ".join(parts) + "\n")


def _dump_scalar(value: Any) -> str:
    """JSON-encode an attribute value as one whitespace-free token.

    The edge-list grammar splits lines on whitespace, so any space in
    the encoded value would break the token apart.  In compact JSON,
    spaces can only occur inside string literals, where the ``\\u0020``
    escape is the same character — so the replacement below keeps the
    token whitespace-free while :func:`json.loads` restores the value
    exactly (tabs/newlines are already escaped by ``json.dumps``).
    """
    return json.dumps(value, separators=(",", ":")).replace(" ", "\\u0020")


def to_adjacency(graph: Graph) -> dict[Node, list[Node]]:
    """Return an adjacency mapping ``node -> sorted neighbor list``."""
    adjacency: dict[Node, list[Node]] = {}
    step = (graph.successors if isinstance(graph, DiGraph)
            else graph.neighbors)
    for node in graph.nodes():
        adjacency[node] = sorted(step(node), key=repr)
    return adjacency


def from_adjacency(adjacency: Mapping[Node, Iterable[Node]],
                   directed: bool = False) -> Graph:
    """Build a graph from an adjacency mapping."""
    graph: Graph = DiGraph() if directed else Graph()
    for node, neighbors in adjacency.items():
        graph.add_node(node)
        for neighbor in neighbors:
            graph.add_edge(node, neighbor)
    return graph


def to_dict(graph: Graph) -> dict[str, Any]:
    """Serialize ``graph`` to a JSON-able dict.

    The format is ``{"directed", "name", "nodes": [{"id", **attrs}],
    "edges": [{"source", "target", **attrs}]}``.
    """
    return {
        "directed": graph.directed,
        "name": graph.name,
        "nodes": [{"id": node, **graph.node_attrs(node)}
                  for node in graph.nodes()],
        "edges": [{"source": u, "target": v, **graph.edge_attrs(u, v)}
                  for u, v in graph.edges()],
    }


def fingerprint(graph: Graph) -> str:
    """Stable content hash of ``graph`` (hex digest).

    Two graphs with the same nodes, edges and attributes — regardless of
    insertion order — hash identically, which makes the digest usable as
    a cache key (see :mod:`repro.serve.cache`).
    """
    document = to_dict(graph)
    document["nodes"] = sorted(
        (json.dumps(node, sort_keys=True, default=repr)
         for node in document["nodes"]))
    document["edges"] = sorted(
        (json.dumps(edge, sort_keys=True, default=repr)
         for edge in document["edges"]))
    canonical = json.dumps(document, sort_keys=True, default=repr)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def from_dict(data: Mapping[str, Any]) -> Graph:
    """Deserialize the :func:`to_dict` format (raises on malformed input)."""
    try:
        directed = bool(data.get("directed", False))
        graph: Graph = DiGraph(name=data.get("name", "")) if directed \
            else Graph(name=data.get("name", ""))
        for entry in data.get("nodes", []):
            node = entry["id"]
            graph.add_node(node)
            for key, value in entry.items():
                if key != "id":
                    graph.set_node_attr(node, key, value)
        for entry in data.get("edges", []):
            u, v = entry["source"], entry["target"]
            graph.add_edge(u, v)
            for key, value in entry.items():
                if key not in ("source", "target"):
                    graph.set_edge_attr(u, v, key, value)
    except (KeyError, TypeError, AttributeError) as exc:
        raise GraphIOError(f"malformed graph document: {exc}") from exc
    return graph
