"""Core property-graph data structures.

:class:`Graph` is an undirected multigraph-free property graph: nodes are
hashable objects, and both nodes and edges carry attribute dictionaries.
:class:`DiGraph` is its directed counterpart with separate successor and
predecessor adjacency.  The representation is a dict-of-dicts adjacency,
so neighbor iteration and membership tests are O(1) amortized.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable, Iterator

from ..errors import EdgeNotFoundError, GraphError, NodeNotFoundError

Node = Hashable


class Graph:
    """An undirected graph with node and edge attributes.

    Example::

        g = Graph(name="triangle")
        g.add_edge("a", "b", weight=2.0)
        g.add_edge("b", "c")
        g.add_edge("c", "a")
        assert g.degree("a") == 2
    """

    directed: bool = False

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._nodes: dict[Node, dict[str, Any]] = {}
        self._adj: dict[Node, dict[Node, dict[str, Any]]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, node: Node, **attrs: Any) -> None:
        """Add ``node``; if it exists, merge ``attrs`` into its attributes."""
        if node is None:
            raise GraphError("None is not a valid node")
        if node not in self._nodes:
            self._nodes[node] = {}
            self._adj[node] = {}
        self._nodes[node].update(attrs)

    def add_nodes(self, nodes: Iterable[Node]) -> None:
        """Add every node in ``nodes`` (without attributes)."""
        for node in nodes:
            self.add_node(node)

    def add_edge(self, u: Node, v: Node, **attrs: Any) -> None:
        """Add edge ``(u, v)``, creating endpoints as needed.

        Re-adding an existing edge merges ``attrs`` into its attributes.
        Self-loops are allowed.
        """
        self.add_node(u)
        self.add_node(v)
        data = self._adj[u].get(v)
        if data is None:
            data = {}
            self._adj[u][v] = data
            self._adj[v][u] = data
        data.update(attrs)

    def add_edges(self, edges: Iterable[tuple[Node, Node]]) -> None:
        """Add every ``(u, v)`` pair in ``edges``."""
        for u, v in edges:
            self.add_edge(u, v)

    def remove_node(self, node: Node) -> None:
        """Remove ``node`` and all incident edges."""
        if node not in self._nodes:
            raise NodeNotFoundError(node)
        for neighbor in list(self._adj[node]):
            if neighbor != node:
                del self._adj[neighbor][node]
        del self._adj[node]
        del self._nodes[node]

    def remove_edge(self, u: Node, v: Node) -> None:
        """Remove edge ``(u, v)``; endpoints stay."""
        if u not in self._nodes or v not in self._adj[u]:
            raise EdgeNotFoundError(u, v)
        del self._adj[u][v]
        if u != v:
            del self._adj[v][u]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def has_node(self, node: Node) -> bool:
        return node in self._nodes

    def has_edge(self, u: Node, v: Node) -> bool:
        return u in self._adj and v in self._adj[u]

    def nodes(self) -> Iterator[Node]:
        """Iterate over nodes in insertion order."""
        return iter(self._nodes)

    def edges(self) -> Iterator[tuple[Node, Node]]:
        """Iterate over edges, each reported once as ``(u, v)``."""
        seen: set[tuple[Node, Node]] = set()
        for u, nbrs in self._adj.items():
            for v in nbrs:
                if (v, u) not in seen:
                    seen.add((u, v))
                    yield (u, v)

    def neighbors(self, node: Node) -> Iterator[Node]:
        """Iterate over the neighbors of ``node``."""
        if node not in self._adj:
            raise NodeNotFoundError(node)
        return iter(self._adj[node])

    def degree(self, node: Node) -> int:
        """Number of incident edges (self-loops count twice)."""
        if node not in self._adj:
            raise NodeNotFoundError(node)
        loops = 1 if node in self._adj[node] else 0
        return len(self._adj[node]) + loops

    def number_of_nodes(self) -> int:
        return len(self._nodes)

    def number_of_edges(self) -> int:
        total = sum(len(nbrs) for nbrs in self._adj.values())
        loops = sum(1 for u in self._adj if u in self._adj[u])
        return (total + loops) // 2

    # ------------------------------------------------------------------
    # attributes
    # ------------------------------------------------------------------
    def node_attrs(self, node: Node) -> dict[str, Any]:
        """Return the mutable attribute dict of ``node``."""
        if node not in self._nodes:
            raise NodeNotFoundError(node)
        return self._nodes[node]

    def edge_attrs(self, u: Node, v: Node) -> dict[str, Any]:
        """Return the mutable attribute dict of edge ``(u, v)``."""
        if not self.has_edge(u, v):
            raise EdgeNotFoundError(u, v)
        return self._adj[u][v]

    def set_node_attr(self, node: Node, key: str, value: Any) -> None:
        self.node_attrs(node)[key] = value

    def set_edge_attr(self, u: Node, v: Node, key: str, value: Any) -> None:
        self.edge_attrs(u, v)[key] = value

    def get_node_attr(self, node: Node, key: str, default: Any = None) -> Any:
        return self.node_attrs(node).get(key, default)

    def get_edge_attr(self, u: Node, v: Node, key: str,
                      default: Any = None) -> Any:
        return self.edge_attrs(u, v).get(key, default)

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def copy(self) -> "Graph":
        """Return a deep structural copy (attribute dicts are copied)."""
        clone = type(self)(name=self.name)
        for node, attrs in self._nodes.items():
            clone.add_node(node, **attrs)
        for u, v in self.edges():
            clone.add_edge(u, v, **self._adj[u][v])
        return clone

    def subgraph(self, nodes: Iterable[Node]) -> "Graph":
        """Return the induced subgraph on ``nodes`` (a copy)."""
        keep = set(nodes)
        missing = keep - set(self._nodes)
        if missing:
            raise NodeNotFoundError(next(iter(missing)))
        sub = type(self)(name=self.name)
        for node in keep:
            sub.add_node(node, **self._nodes[node])
        for u, v in self.edges():
            if u in keep and v in keep:
                sub.add_edge(u, v, **self._adj[u][v])
        return sub

    def to_directed(self) -> "DiGraph":
        """Return a directed copy with both arc directions for each edge."""
        digraph = DiGraph(name=self.name)
        for node, attrs in self._nodes.items():
            digraph.add_node(node, **attrs)
        for u, v in self.edges():
            attrs = self._adj[u][v]
            digraph.add_edge(u, v, **attrs)
            digraph.add_edge(v, u, **attrs)
        return digraph

    # ------------------------------------------------------------------
    # dunder protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: object) -> bool:
        return node in self._nodes

    def __iter__(self) -> Iterator[Node]:
        return iter(self._nodes)

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return (f"<{type(self).__name__}{label} with "
                f"{self.number_of_nodes()} nodes, "
                f"{self.number_of_edges()} edges>")

    def __eq__(self, other: object) -> bool:
        """Structural equality: same nodes, edges and attributes."""
        if not isinstance(other, Graph) or self.directed != other.directed:
            return NotImplemented
        if self._nodes != other._nodes:
            return False
        if set(self._frozen_edges()) != set(other._frozen_edges()):
            return False
        return all(self._adj[u][v] == other._adj[u][v]
                   for u, v in self.edges())

    def __hash__(self) -> int:  # pragma: no cover - mutable container
        raise TypeError("graphs are mutable and unhashable")

    def _frozen_edges(self) -> Iterator[tuple[Node, Node]]:
        for u, v in self.edges():
            yield (u, v) if repr(u) <= repr(v) else (v, u)


class DiGraph(Graph):
    """A directed graph with node and edge attributes.

    Edges are arcs ``u -> v``; :meth:`neighbors` iterates successors and
    :meth:`predecessors` iterates in-neighbors.
    """

    directed: bool = True

    def __init__(self, name: str = "") -> None:
        super().__init__(name=name)
        self._pred: dict[Node, dict[Node, dict[str, Any]]] = {}

    def add_node(self, node: Node, **attrs: Any) -> None:
        new = node not in self._nodes
        super().add_node(node, **attrs)
        if new:
            self._pred[node] = {}

    def add_edge(self, u: Node, v: Node, **attrs: Any) -> None:
        self.add_node(u)
        self.add_node(v)
        data = self._adj[u].get(v)
        if data is None:
            data = {}
            self._adj[u][v] = data
            self._pred[v][u] = data
        data.update(attrs)

    def remove_node(self, node: Node) -> None:
        if node not in self._nodes:
            raise NodeNotFoundError(node)
        for successor in list(self._adj[node]):
            del self._pred[successor][node]
        for predecessor in list(self._pred[node]):
            del self._adj[predecessor][node]
        del self._adj[node]
        del self._pred[node]
        del self._nodes[node]

    def remove_edge(self, u: Node, v: Node) -> None:
        if u not in self._nodes or v not in self._adj[u]:
            raise EdgeNotFoundError(u, v)
        del self._adj[u][v]
        del self._pred[v][u]

    def edges(self) -> Iterator[tuple[Node, Node]]:
        """Iterate over arcs ``(u, v)``."""
        for u, nbrs in self._adj.items():
            for v in nbrs:
                yield (u, v)

    def successors(self, node: Node) -> Iterator[Node]:
        """Iterate over out-neighbors of ``node``."""
        return super().neighbors(node)

    def predecessors(self, node: Node) -> Iterator[Node]:
        """Iterate over in-neighbors of ``node``."""
        if node not in self._pred:
            raise NodeNotFoundError(node)
        return iter(self._pred[node])

    def out_degree(self, node: Node) -> int:
        if node not in self._adj:
            raise NodeNotFoundError(node)
        return len(self._adj[node])

    def in_degree(self, node: Node) -> int:
        if node not in self._pred:
            raise NodeNotFoundError(node)
        return len(self._pred[node])

    def degree(self, node: Node) -> int:
        """Total degree (in + out)."""
        return self.in_degree(node) + self.out_degree(node)

    def number_of_edges(self) -> int:
        return sum(len(nbrs) for nbrs in self._adj.values())

    def to_undirected(self) -> Graph:
        """Collapse arc directions; attribute dicts of ``u->v`` win ties."""
        graph = Graph(name=self.name)
        for node, attrs in self._nodes.items():
            graph.add_node(node, **attrs)
        for u, v in self.edges():
            graph.add_edge(u, v, **self._adj[u][v])
        return graph

    def reverse(self) -> "DiGraph":
        """Return a copy with every arc reversed."""
        rev = DiGraph(name=self.name)
        for node, attrs in self._nodes.items():
            rev.add_node(node, **attrs)
        for u, v in self.edges():
            rev.add_edge(v, u, **self._adj[u][v])
        return rev

    def _frozen_edges(self) -> Iterator[tuple[Node, Node]]:
        return self.edges()
