"""Summary statistics for graphs (used by reports and type prediction)."""

from __future__ import annotations

from dataclasses import dataclass

from .graph import DiGraph, Graph


def density(graph: Graph) -> float:
    """Edge density in ``[0, 1]`` (0 for graphs with < 2 nodes)."""
    n = graph.number_of_nodes()
    if n < 2:
        return 0.0
    m = graph.number_of_edges()
    possible = n * (n - 1)
    if not graph.directed:
        possible //= 2
    return m / possible


def degree_histogram(graph: Graph) -> dict[int, int]:
    """Map ``degree -> number of nodes with that degree``."""
    histogram: dict[int, int] = {}
    for node in graph.nodes():
        d = graph.degree(node)
        histogram[d] = histogram.get(d, 0) + 1
    return histogram


@dataclass(frozen=True)
class GraphSummary:
    """Compact numeric profile of a graph."""

    n_nodes: int
    n_edges: int
    directed: bool
    density: float
    max_degree: int
    mean_degree: float
    n_isolated: int
    node_labels: tuple[str, ...]
    edge_labels: tuple[str, ...]

    def as_dict(self) -> dict[str, object]:
        return {
            "n_nodes": self.n_nodes,
            "n_edges": self.n_edges,
            "directed": self.directed,
            "density": self.density,
            "max_degree": self.max_degree,
            "mean_degree": self.mean_degree,
            "n_isolated": self.n_isolated,
            "node_labels": list(self.node_labels),
            "edge_labels": list(self.edge_labels),
        }


def summarize(graph: Graph) -> GraphSummary:
    """Compute a :class:`GraphSummary` for ``graph``."""
    degrees = [graph.degree(node) for node in graph.nodes()]
    node_keys: set[str] = set()
    for node in graph.nodes():
        node_keys.update(graph.node_attrs(node))
    edge_keys: set[str] = set()
    for u, v in graph.edges():
        edge_keys.update(graph.edge_attrs(u, v))
    return GraphSummary(
        n_nodes=graph.number_of_nodes(),
        n_edges=graph.number_of_edges(),
        directed=isinstance(graph, DiGraph) and graph.directed,
        density=density(graph),
        max_degree=max(degrees, default=0),
        mean_degree=(sum(degrees) / len(degrees)) if degrees else 0.0,
        n_isolated=sum(1 for d in degrees if d == 0),
        node_labels=tuple(sorted(node_keys)),
        edge_labels=tuple(sorted(edge_keys)),
    )
