"""GraphML-lite serialization (interoperability with graph tooling).

Writes/reads a strict subset of GraphML: one ``<graph>``, node/edge
elements with ``<data>`` children, and a key table typed ``string`` /
``int`` / ``double`` / ``boolean`` — plus a ``json`` extension type
carrying lists, dicts and ``None`` as JSON text, so every attribute
value the :mod:`repro.store` edit log accepts survives a GraphML round
trip.  A key used with conflicting value types across elements widens
to ``json``, which preserves each value's original type.
"""

from __future__ import annotations

import json
import xml.etree.ElementTree as ET
from pathlib import Path
from typing import Any

from ..errors import GraphIOError
from .graph import DiGraph, Graph

_NS = "http://graphml.graphdrawing.org/xmlns"

_PARSERS = {
    "string": str,
    "int": int,
    "long": int,
    "double": float,
    "float": float,
    "boolean": lambda text: text.strip().lower() == "true",
    "json": json.loads,
}


def _attr_type(value: Any) -> str:
    if isinstance(value, bool):
        return "boolean"
    if isinstance(value, str):
        return "string"
    if isinstance(value, int):
        return "int"
    if isinstance(value, float):
        return "double"
    if value is None or isinstance(value, (list, dict)):
        return "json"
    raise GraphIOError(
        f"GraphML supports JSON-encodable attributes only, got "
        f"{type(value)}")


def _register(keys: dict[tuple[str, str], str], domain: str, name: str,
              value: Any) -> None:
    """Record ``name``'s type; conflicting types widen to ``json``."""
    type_name = _attr_type(value)
    previous = keys.get((domain, name))
    if previous is not None and previous != type_name:
        type_name = "json"
    keys[(domain, name)] = type_name


def _encode(value: Any, type_name: str) -> str:
    """The ``<data>`` text for ``value`` under the key's final type."""
    if type_name == "json":
        return json.dumps(value, sort_keys=True)
    return str(value)


def write_graphml(graph: Graph, path: str | Path) -> None:
    """Serialize ``graph`` to a GraphML file."""
    root = ET.Element("graphml", xmlns=_NS)
    # collect attribute keys and their types
    keys: dict[tuple[str, str], str] = {}
    for node in graph.nodes():
        for name, value in graph.node_attrs(node).items():
            _register(keys, "node", name, value)
    for u, v in graph.edges():
        for name, value in graph.edge_attrs(u, v).items():
            _register(keys, "edge", name, value)
    key_ids: dict[tuple[str, str], str] = {}
    for i, ((domain, name), type_name) in enumerate(sorted(keys.items())):
        key_id = f"k{i}"
        key_ids[(domain, name)] = key_id
        ET.SubElement(root, "key", id=key_id,
                      attrib={"for": domain, "attr.name": name,
                              "attr.type": type_name})
    graph_el = ET.SubElement(
        root, "graph", id=graph.name or "G",
        edgedefault="directed" if graph.directed else "undirected")
    node_ids = {node: f"n{i}" for i, node in enumerate(graph.nodes())}
    for node in graph.nodes():
        node_el = ET.SubElement(graph_el, "node", id=node_ids[node])
        ET.SubElement(node_el, "data",
                      key="label").text = str(node)  # original id
        for name, value in graph.node_attrs(node).items():
            data = ET.SubElement(node_el, "data",
                                 key=key_ids[("node", name)])
            data.text = _encode(value, keys[("node", name)])
    for i, (u, v) in enumerate(graph.edges()):
        edge_el = ET.SubElement(graph_el, "edge", id=f"e{i}",
                                source=node_ids[u], target=node_ids[v])
        for name, value in graph.edge_attrs(u, v).items():
            data = ET.SubElement(edge_el, "data",
                                 key=key_ids[("edge", name)])
            data.text = _encode(value, keys[("edge", name)])
    ET.ElementTree(root).write(Path(path), encoding="unicode",
                               xml_declaration=True)


def read_graphml(path: str | Path) -> Graph:
    """Parse a GraphML file written by :func:`write_graphml`.

    Node ids are restored from the embedded ``label`` data elements when
    present, else the GraphML ids are used.
    """
    try:
        tree = ET.parse(Path(path))
    except ET.ParseError as exc:
        raise GraphIOError(f"invalid GraphML: {exc}") from exc
    root = tree.getroot()

    def tag(name: str) -> str:
        return f"{{{_NS}}}{name}" if root.tag.startswith("{") else name

    key_table: dict[str, tuple[str, Any]] = {}
    for key_el in root.findall(tag("key")):
        parser = _PARSERS.get(key_el.get("attr.type", "string"), str)
        key_table[key_el.get("id", "")] = (key_el.get("attr.name", ""),
                                           parser)
    graph_el = root.find(tag("graph"))
    if graph_el is None:
        raise GraphIOError("GraphML file has no <graph> element")
    directed = graph_el.get("edgedefault") == "directed"
    graph: Graph = DiGraph(name=graph_el.get("id", "")) if directed \
        else Graph(name=graph_el.get("id", ""))

    id_map: dict[str, Any] = {}
    for node_el in graph_el.findall(tag("node")):
        gid = node_el.get("id", "")
        attrs: dict[str, Any] = {}
        original: Any = gid
        for data in node_el.findall(tag("data")):
            key = data.get("key", "")
            if key == "label":
                original = data.text if data.text is not None else gid
                continue
            if key in key_table:
                name, parser = key_table[key]
                attrs[name] = parser(data.text or "")
        id_map[gid] = original
        graph.add_node(original)
        # setters, not **kwargs: attribute names like "node" are legal
        for name, value in attrs.items():
            graph.set_node_attr(original, name, value)
    for edge_el in graph_el.findall(tag("edge")):
        source = id_map.get(edge_el.get("source", ""))
        target = id_map.get(edge_el.get("target", ""))
        if source is None or target is None:
            raise GraphIOError("edge references unknown node")
        attrs = {}
        for data in edge_el.findall(tag("data")):
            key = data.get("key", "")
            if key in key_table:
                name, parser = key_table[key]
                attrs[name] = parser(data.text or "")
        graph.add_edge(source, target)
        for name, value in attrs.items():
            graph.set_edge_attr(source, target, name, value)
    return graph
